"""Restart-variance study (paper Sec. 5 observation).

"Due to the random nature of the iterative improvement scheme, multiple
trials are sometimes necessary to find the best result."  This bench
quantifies that on the EWF: mux-count distribution across seeds, the
expected best-of-k, and the restarts needed to be near-optimal with 90%
confidence — justifying the `restarts=3` default of `SalsaAllocator`.
"""

from conftest import FAST, publish

from repro.analysis import ExperimentTable
from repro.analysis.stats import seed_study
from repro.bench import elliptic_wave_filter
from repro.datapath.units import HardwareSpec
from repro.sched import schedule_graph
from repro.core import ImproveConfig


def test_restart_variance(benchmark, capsys):
    graph = elliptic_wave_filter()
    schedule = schedule_graph(graph, HardwareSpec.non_pipelined(), 19)
    config = ImproveConfig(max_trials=4 if FAST else 8,
                           moves_per_trial=250 if FAST else 600)
    seeds = range(6 if FAST else 12)

    table = ExperimentTable(
        name="Restart variance — EWF @ 19 csteps",
        headers=["allocator", "best", "mean", "worst",
                 "E[best-of-3]", "restarts for 90% best+1"])
    studies = []
    for traditional in (False, True):
        study = seed_study(graph, schedule, seeds=seeds,
                           traditional=traditional, config=config)
        studies.append(study)
        table.rows.append([
            "traditional" if traditional else "salsa",
            study.best, f"{study.mean:.1f}", study.worst,
            f"{study.expected_best_of(3):.1f}",
            study.restarts_for_near_best()])
    table.notes.append(
        "single-restart runs; the spread motivates the allocators' "
        "multi-restart default (paper: 'multiple trials are sometimes "
        "necessary')")
    publish(table, "restart_variance.txt", capsys)

    for study in studies:
        assert study.expected_best_of(3) <= study.mean + 1e-9

    benchmark.pedantic(
        lambda: seed_study(graph, schedule, seeds=range(2),
                           config=ImproveConfig(max_trials=2,
                                                moves_per_trial=150)).best,
        rounds=2, iterations=1)
