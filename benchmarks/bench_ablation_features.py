"""Ablation B — contribution of each extended-binding-model feature.

Starting from one shared traditional-model optimum, successively enables
value segments, pass-throughs and value splits (the three extensions of
Sec. 2) and reports the resulting mux counts: the column must be
non-increasing by construction, and any strict drop quantifies that
feature's contribution on the EWF.
"""

from conftest import FAST, publish

from repro.analysis import ablation_features


def test_ablation_features(benchmark, capsys):
    table = ablation_features(fast=FAST)
    publish(table, "ablation_features.txt", capsys)

    muxes = [row[1] for row in table.rows]
    assert muxes == sorted(muxes, reverse=True) or \
        all(m <= muxes[0] for m in muxes)
    assert muxes[-1] <= muxes[0]

    def fast_feature_column():
        return [row[1] for row in ablation_features(fast=True).rows]

    benchmark.pedantic(fast_feature_column, rounds=1, iterations=1)
