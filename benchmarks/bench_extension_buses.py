"""Future-work extension — bus-oriented interconnect (paper Sec. 7).

"Extensions to interconnection allocation should be investigated to
improve on the point-to-point model currently used."  This bench runs the
bus-extraction post-pass on SALSA allocations of the EWF and DCT and
tabulates wires vs buses and the two cost views.
"""

from conftest import FAST, publish

from repro.analysis import ExperimentTable
from repro.bench import discrete_cosine_transform, elliptic_wave_filter
from repro.datapath.buses import extract_buses
from repro.datapath.netlist import build_netlist
from repro.datapath.units import HardwareSpec
from repro.sched import schedule_graph
from repro.core import ImproveConfig, SalsaAllocator


def test_extension_buses(benchmark, capsys):
    config = ImproveConfig(max_trials=4 if FAST else 10,
                           moves_per_trial=250 if FAST else 600)
    table = ExperimentTable(
        name="Extension — bus-oriented interconnect after allocation",
        headers=["design", "p2p wires", "buses", "p2p eq 2-1",
                 "bus eq 2-1"])
    reports = []
    for graph, length in ((elliptic_wave_filter(), 17),
                          (elliptic_wave_filter(), 19),
                          (discrete_cosine_transform(), 10)):
        schedule = schedule_graph(graph, HardwareSpec.non_pipelined(),
                                  length)
        result = SalsaAllocator(seed=5, restarts=2,
                                config=config).allocate(graph,
                                                        schedule=schedule)
        netlist = build_netlist(result.binding)
        report = extract_buses(netlist)
        reports.append(report)
        table.rows.append([f"{graph.name}@{length}",
                           report.point_to_point_wires, report.bus_count,
                           report.point_to_point_eq21, report.bus_eq21])
    table.notes.append(
        "buses trade mux fan-in for shared wires: fewer physical lines, "
        "sometimes more selector hardware — the trade-off the paper "
        "defers to future work")
    publish(table, "extension_buses.txt", capsys)

    for report in reports:
        assert report.bus_count < report.point_to_point_wires

    netlist = build_netlist(
        SalsaAllocator(seed=1, restarts=1,
                       config=ImproveConfig(max_trials=2,
                                            moves_per_trial=100)).allocate(
            elliptic_wave_filter(),
            schedule=schedule_graph(elliptic_wave_filter(),
                                    HardwareSpec.non_pipelined(),
                                    19)).binding)
    benchmark.pedantic(lambda: extract_buses(netlist).bus_count,
                       rounds=5, iterations=1)
