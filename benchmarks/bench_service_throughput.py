"""Throughput and saturation of the allocation service under load.

Two measurements, one committed artifact:

* **sustained throughput, thread vs process workers** — the same
  concurrent EWF/DCT mutant mix (cache-exercising: roughly every third
  request repeats) driven against an in-process server in both worker
  modes, so the report shows what moving the search off the GIL buys on
  this box;
* **saturation / tail latency** — an offered-load sweep with
  cache-bypassing requests (``"cache": false``, fresh seed space per
  level) from an increasing number of concurrent clients, recording
  sustained allocations/sec plus client-side p50/p99/max latency per
  level.  Levels scale with ``REPRO_BENCH_FULL`` (hundreds of clients in
  full mode; a client is one blocking thread, so the limit is server
  capacity, not the loadgen).

Asserts the service-level objectives — zero dropped requests, zero
errors in every mode and at every load level, a visible cache hit-rate —
and writes the full JSON report to ``results/out/service_throughput.json``
(a curated copy is committed at ``results/service_throughput.json``).

Run standalone with ``python -m repro.service bench --saturation ...``.
"""

import json
import os

from conftest import FAST, RESULTS_DIR

from repro.service import run_saturation_bench, run_throughput_bench

CLIENTS = 4
REQUESTS_PER_CLIENT = 6
SERVER_WORKERS = 4

#: offered-load sweep levels (concurrent clients); full mode pushes into
#: the hundreds to map the post-knee tail, fast mode keeps CI quick
SATURATION_LEVELS = (2, 8, 32) if FAST else (2, 8, 32, 128, 256)
SATURATION_REQUESTS = 2


def _drive_mode(worker_mode):
    return run_throughput_bench(
        clients=CLIENTS, requests_per_client=REQUESTS_PER_CLIENT,
        fast=FAST, server_workers=SERVER_WORKERS, worker_mode=worker_mode)


def _check_outcome(report, label):
    outcome = report["outcome"]
    assert outcome["dropped"] == 0, f"{label}: requests dropped under load"
    assert outcome["errors"] == 0, f"{label}: requests errored under load"
    assert outcome["completed"] == CLIENTS * REQUESTS_PER_CLIENT
    assert outcome["cache_hits"] > 0, \
        f"{label}: the mutant pool must exercise the cache"
    assert report["server"]["cache_hit_rate"] is not None
    assert report["server"]["cache_hit_rate"] > 0


def test_service_throughput_and_saturation(benchmark, capsys):
    report = {}

    def drive():
        report.clear()
        report["thread_mode"] = _drive_mode("thread")
        report["process_mode"] = _drive_mode("process")
        report["saturation"] = run_saturation_bench(
            levels=SATURATION_LEVELS,
            requests_per_client=SATURATION_REQUESTS, fast=FAST,
            server_workers=SERVER_WORKERS, worker_mode="process")
        return report["process_mode"]["throughput"]["allocations_per_sec"]

    benchmark.pedantic(drive, rounds=1, iterations=1)

    _check_outcome(report["thread_mode"], "thread mode")
    _check_outcome(report["process_mode"], "process mode")
    for level in report["saturation"]["levels"]:
        label = f"saturation @{level['offered_clients']} clients"
        assert level["dropped"] == 0, f"{label}: requests dropped"
        assert level["errors"] == 0, f"{label}: requests errored"
        assert level["completed"] == level["total_requests"]
        assert level["latency_p99_s"] is not None

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "service_throughput.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with capsys.disabled():
        thread_rate = \
            report["thread_mode"]["throughput"]["allocations_per_sec"]
        process_rate = \
            report["process_mode"]["throughput"]["allocations_per_sec"]
        print(f"\nservice throughput: thread {thread_rate:.2f} alloc/s, "
              f"process {process_rate:.2f} alloc/s "
              f"(mode actually run: "
              f"{report['process_mode']['workload']['worker_mode']})")
        for level in report["saturation"]["levels"]:
            print(f"  {level['offered_clients']:4d} clients: "
                  f"{level['allocations_per_sec']:6.2f} alloc/s, "
                  f"p50 {level['latency_p50_s']:.3f}s, "
                  f"p99 {level['latency_p99_s']:.3f}s")
