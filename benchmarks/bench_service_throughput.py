"""Throughput of the allocation service under concurrent load.

Boots an in-process :class:`repro.service.ServerThread` and drives it with
N concurrent clients issuing EWF/DCT request mutants (the pool repeats
roughly every third request, so the run exercises both the search path and
the content-addressed cache).  Asserts the service-level objectives the
subsystem is built around — no dropped requests, no errors, at least four
concurrent jobs sustained, a visible cache hit-rate on ``/metricsz`` — and
writes the full JSON report to ``results/out/service_throughput.json``
(a curated copy is committed at ``results/service_throughput.json``).

Run standalone with ``python -m repro.service bench``.
"""

import json
import os

from conftest import FAST, RESULTS_DIR

from repro.service import run_throughput_bench

CLIENTS = 4
REQUESTS_PER_CLIENT = 6


def test_service_throughput(benchmark, capsys):
    report = {}

    def drive():
        report.clear()
        report.update(run_throughput_bench(
            clients=CLIENTS, requests_per_client=REQUESTS_PER_CLIENT,
            fast=FAST, server_workers=CLIENTS))
        return report["throughput"]["allocations_per_sec"]

    benchmark.pedantic(drive, rounds=1, iterations=1)

    outcome = report["outcome"]
    assert outcome["dropped"] == 0, "requests were dropped under load"
    assert outcome["errors"] == 0, "requests errored under load"
    assert outcome["completed"] == CLIENTS * REQUESTS_PER_CLIENT
    assert outcome["cache_hits"] > 0, "the mutant pool must exercise cache"
    assert report["workload"]["clients"] >= 4
    assert report["server"]["cache_hit_rate"] is not None
    assert report["server"]["cache_hit_rate"] > 0

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "service_throughput.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with capsys.disabled():
        print(f"\nservice throughput: "
              f"{report['throughput']['allocations_per_sec']:.2f} alloc/s, "
              f"{outcome['cache_hits']} cache hits / "
              f"{outcome['completed']} requests "
              f"(hit rate {report['server']['cache_hit_rate']:.2f})")
