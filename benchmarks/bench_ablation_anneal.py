"""Ablation A — iterative improvement vs simulated annealing (Sec. 4).

"Attempts to use annealing produced poor results and seldom converged on a
good solution."  At equal move budgets the bounded-uphill scheme should
end at an equal-or-lower cost; the benchmark times one annealing level vs
one improvement trial.
"""

from conftest import FAST, publish

from repro.analysis import ablation_anneal
from repro.bench import hal_diffeq
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched import schedule_graph
from repro.core import AnnealConfig, ImproveConfig, anneal, improve, \
    initial_allocation


def test_ablation_anneal(benchmark, capsys):
    table = ablation_anneal(fast=FAST)
    publish(table, "ablation_anneal.txt", capsys)

    by_name = {row[0]: row[1] for row in table.rows}
    assert by_name["iterative improvement"] <= \
        by_name["simulated annealing"] + 1  # allow one-mux noise

    graph = hal_diffeq()
    spec = HardwareSpec.non_pipelined()
    schedule = schedule_graph(graph, spec, 7)
    fus = spec.make_fus(schedule.min_fus())
    regs = make_registers(schedule.min_registers() + 1)

    def one_improvement_trial():
        binding = initial_allocation(schedule, fus, regs)
        improve(binding, ImproveConfig(max_trials=1, moves_per_trial=300,
                                       seed=1))
        return binding.cost().total

    benchmark.pedantic(one_improvement_trial, rounds=3, iterations=1)
