"""Table 2 — EWF allocations across schedules and register budgets.

Regenerates the paper's main result table: equivalent 2-1 multiplexer
counts for the elliptic wave filter at 17/19/21 control steps (pipelined
and non-pipelined multipliers) under varying register budgets, SALSA
extended model vs. the traditional binding model.  The benchmark timing
measures one representative SALSA allocation run (the unit the paper
reports CPU minutes for).
"""

from conftest import FAST, publish

from repro.analysis import ewf_table2
from repro.bench import elliptic_wave_filter
from repro.datapath.units import HardwareSpec
from repro.sched import schedule_graph
from repro.core import ImproveConfig, SalsaAllocator


def test_table2_ewf(benchmark, capsys):
    table = ewf_table2(fast=FAST, extra_registers=(0, 1) if FAST
                       else (0, 1, 2))
    publish(table, "table2_ewf.txt", capsys)

    # shape assertions: the extended model never loses, and wins somewhere
    salsa = [row[5] for row in table.rows]
    trad = [row[6] for row in table.rows]
    assert all(s <= t for s, t in zip(salsa, trad))
    assert any(s < t for s, t in zip(salsa, trad)), \
        "expected at least one strict SALSA win across Table 2"

    graph = elliptic_wave_filter()
    schedule = schedule_graph(graph, HardwareSpec.non_pipelined(), 19)
    config = ImproveConfig(max_trials=3, moves_per_trial=200)

    def representative_allocation():
        return SalsaAllocator(seed=1, restarts=1, config=config).allocate(
            graph, schedule=schedule).mux_count

    benchmark.pedantic(representative_allocation, rounds=2, iterations=1)
