"""Micro-benchmarks of the allocator's hot paths.

Not a paper table — these time the substrate operations that dominate the
iterative search (the paper reports 8–10 CPU minutes per EWF allocation on
a SPARCstation 1; these numbers document where our Python implementation
spends its time).
"""

import random

from repro.bench import elliptic_wave_filter
from repro.datapath.interconnect import ConnectionLedger, fu_in, reg_out
from repro.datapath.simulate import verify_binding
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched import list_schedule, schedule_graph
from repro.core import initial_allocation
from repro.core.moves import MoveSet, rollback

SPEC = HardwareSpec.non_pipelined()


def _binding():
    graph = elliptic_wave_filter()
    schedule = schedule_graph(graph, SPEC, 19)
    return initial_allocation(
        schedule, SPEC.make_fus(schedule.min_fus()),
        make_registers(schedule.min_registers() + 1))


def test_ledger_throughput(benchmark):
    """Add+remove of one connection use (the per-move cost unit)."""
    ledger = ConnectionLedger()
    src, snk = reg_out("R0"), fu_in("f", 0)

    def add_remove():
        ledger.add(src, snk)
        ledger.remove(src, snk)

    benchmark(add_remove)


def test_move_apply_rollback_throughput(benchmark):
    """One random move proposal + cost evaluation + rollback."""
    binding = _binding()
    rng = random.Random(0)
    moves = MoveSet().enabled_moves()
    fns = [fn for _n, fn, _w in moves]

    def one_move():
        fn = fns[rng.randrange(len(fns))]
        undos = fn(binding, rng)
        if undos is not None:
            binding.cost()
            rollback(undos)
            binding.flush()

    benchmark(one_move)


def test_list_scheduler_ewf(benchmark):
    graph = elliptic_wave_filter()
    benchmark.pedantic(lambda: list_schedule(graph, SPEC,
                                             {"adder": 2, "mult": 2},
                                             target_length=19).length,
                       rounds=10, iterations=1)


def test_initial_allocation_ewf(benchmark):
    benchmark.pedantic(lambda: _binding().cost().mux_count,
                       rounds=5, iterations=1)


def test_simulation_verification_ewf(benchmark):
    binding = _binding()
    benchmark.pedantic(lambda: verify_binding(binding, iterations=3),
                       rounds=5, iterations=1)
