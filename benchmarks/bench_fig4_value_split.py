"""Figure 4 — value-split cost mechanics.

Rebuilds the figure's datapath (one value feeding operators on two FUs)
and asserts that storing a copy in a second register removes exactly one
equivalent 2-1 multiplexer, as the paper argues.
"""

from conftest import publish

from repro.analysis import figure4_experiment, value_split_demo


def test_fig4_value_split(benchmark, capsys):
    table = figure4_experiment()
    publish(table, "fig4_value_split.txt", capsys)

    single = table.rows[0][1]
    split = table.rows[1][1]
    assert single - split == 1

    demo = benchmark.pedantic(value_split_demo, rounds=5, iterations=1)
    assert demo["split_wires"] <= demo["single_wires"]
