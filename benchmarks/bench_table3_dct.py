"""Table 3 — DCT allocations for four schedules.

Regenerates the paper's larger-example table on the 48-op discrete cosine
transform (25 add / 7 sub / 16 mul); benchmark timing measures one
representative allocation of the DCT ("execution times ranged ... CPU
minutes", paper Sec. 5 — ours are seconds).
"""

from conftest import FAST, publish

from repro.analysis import dct_table3
from repro.bench import discrete_cosine_transform
from repro.datapath.units import HardwareSpec
from repro.sched import schedule_graph
from repro.core import ImproveConfig, SalsaAllocator


def test_table3_dct(benchmark, capsys):
    table = dct_table3(fast=FAST)
    publish(table, "table3_dct.txt", capsys)

    salsa = [row[5] for row in table.rows]
    trad = [row[6] for row in table.rows]
    assert all(s <= t for s, t in zip(salsa, trad))
    assert len(table.rows) == 4  # the paper reports four schedules

    graph = discrete_cosine_transform()
    schedule = schedule_graph(graph, HardwareSpec.non_pipelined(), 10)
    config = ImproveConfig(max_trials=3, moves_per_trial=200)

    def representative_allocation():
        return SalsaAllocator(seed=1, restarts=1, config=config).allocate(
            graph, schedule=schedule).mux_count

    benchmark.pedantic(representative_allocation, rounds=2, iterations=1)
