"""Hot-path performance harness: moves/sec and µs-per-phase.

The paper's allocator re-evaluates the full cost after *every* move
(Sec. 4), so moves/second is the number the whole reproduction stands on.
This harness measures the randomized-improvement inner loop (polish off,
so nothing but propose/evaluate/rollback is timed) on the paper's two
evaluation workloads at fixed seeds and emits ``BENCH_hotpath.json`` at
the repository root:

* ``pre_change`` — the measurement recorded once on the code *before* the
  incremental ``total_cost()`` fast path landed (kept verbatim so the
  speedup claim stays auditable);
* ``current`` — the full-budget measurement of the checked-out code;
* ``smoke`` — a small fixed budget re-measured by the CI perf-smoke job,
  which fails when the runner's moves/sec drops more than
  ``REPRO_PERF_TOLERANCE`` (default 30%) below the committed value;
* ``phases`` — mean µs per propose/evaluate/rollback/restore phase,
  sampled with ``time.perf_counter_ns`` hooks inside ``improve``
  (``ImproveConfig.profile_every``).

Usage::

    python benchmarks/bench_hotpath.py               # refresh current+smoke
    python benchmarks/bench_hotpath.py --pre-change  # record the baseline
    python benchmarks/bench_hotpath.py --check       # CI perf-smoke gate

Run as a pytest benchmark (``pytest benchmarks/bench_hotpath.py``) it
times the representative EWF smoke budget.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import discrete_cosine_transform, elliptic_wave_filter
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.core import ImproveConfig, improve
from repro.core.initial import initial_allocation

SPEC = HardwareSpec.non_pipelined()

JSON_PATH = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_hotpath.json")

#: fixed-seed workloads; the full budget is what BENCH_hotpath.json
#: records, the smoke budget is what CI re-measures on every push
WORKLOADS: Dict[str, Dict[str, int]] = {
    "ewf": {"length": 19, "extra_regs": 1, "seed": 1},
    "dct": {"length": 10, "extra_regs": 1, "seed": 1},
}
FULL_BUDGET = {"max_trials": 6, "moves_per_trial": 1500}
SMOKE_BUDGET = {"max_trials": 2, "moves_per_trial": 400}

DEFAULT_TOLERANCE = 0.30
#: restore-µs regressions gate at committed × this factor — a µs-scale
#: timing is proportionally noisier than whole-run throughput, so the
#: ceiling is generous; it still catches an accidental fall back to the
#: snapshot-copy restore path (an order of magnitude, not a factor)
RESTORE_GATE_FACTOR = 3.0


def build_binding(name: str):
    params = WORKLOADS[name]
    graph = elliptic_wave_filter() if name == "ewf" \
        else discrete_cosine_transform()
    schedule = schedule_graph(graph, SPEC, params["length"])
    return initial_allocation(
        schedule, SPEC.make_fus(schedule.min_fus()),
        make_registers(schedule.min_registers() + params["extra_regs"]))


def _make_config(name: str, budget: Dict[str, int],
                 profile_every: int = 0) -> ImproveConfig:
    config = ImproveConfig(max_trials=budget["max_trials"],
                           moves_per_trial=budget["moves_per_trial"],
                           seed=WORKLOADS[name]["seed"],
                           polish_trials=False)
    # the profiling knob only exists once the fast-path PR has landed;
    # stay runnable on the pre-change code so the baseline is measurable
    if profile_every and "profile_every" in ImproveConfig.__dataclass_fields__:
        config.profile_every = profile_every
    return config


def measure(name: str, budget: Dict[str, int]) -> Dict[str, Any]:
    """One timed improvement run; moves/sec is attempts over wall-clock."""
    binding = build_binding(name)
    config = _make_config(name, budget)
    started = time.perf_counter()
    stats = improve(binding, config)
    seconds = time.perf_counter() - started
    return {
        "moves_attempted": stats.moves_attempted,
        "seconds": round(seconds, 4),
        "moves_per_sec": round(stats.moves_attempted / seconds, 1),
        "final_cost_total": stats.final_cost.total,
        "trials_run": stats.trials_run,
        "budget": dict(budget),
    }


def _steady_restore_us(binding, pairs, rounds: int = 7) -> Optional[float]:
    """Median-of-rounds mean restore µs over the captured state pairs.

    Each captured pair is (state the search had drifted to, state it
    restored to); the replay alternates between them so every timed
    restore crosses a realistic diff, and the median over several rounds
    discards scheduler/cache outliers.
    """
    if not pairs:
        return None
    restore = type(binding).restore_state
    round_means = []
    for _ in range(rounds):
        total = 0
        for drifted, target in pairs:
            restore(binding, drifted)
            tick = time.perf_counter_ns()
            restore(binding, target)
            total += time.perf_counter_ns() - tick
        round_means.append(total / len(pairs))
    round_means.sort()
    return round(round_means[len(round_means) // 2] / 1000.0, 3)


def measure_phases(name: str, budget: Dict[str, int],
                   profile_every: int = 4) -> Dict[str, float]:
    """Mean µs per phase of the search hot loop.

    ``propose``/``evaluate``/``rollback`` come straight from the
    ``perf_counter_ns`` sampling hooks in improve
    (``ImproveConfig.profile_every``): they fire thousands of times per
    run, so the in-run means are stable.  ``restore`` does not — it runs
    once per trial, cold, and the two or three in-run samples are
    dominated by cache-refill noise.  It is therefore measured as a
    steady-state replay instead: the run's actual (drifted, target)
    restore pairs are captured and re-restored in a timing loop
    (:func:`_steady_restore_us`), which reports what a restore costs with
    the same real diffs at hot-loop cadence.
    """
    binding = build_binding(name)
    config = _make_config(name, budget, profile_every=profile_every)
    pairs = []
    restore = type(binding).restore_state
    clone = type(binding).clone_state

    def recording_restore(state):
        pairs.append((clone(binding), state))
        restore(binding, state)

    binding.restore_state = recording_restore
    try:
        stats = improve(binding, config)
    finally:
        del binding.restore_state
    phase_ns = getattr(stats, "phase_ns", {})
    phase_samples = getattr(stats, "phase_samples", {})
    out = {phase: round(phase_ns[phase] / phase_samples[phase] / 1000.0, 3)
           for phase in sorted(phase_ns)
           if phase_samples.get(phase) and phase != "restore"}
    restore_us = _steady_restore_us(binding, pairs)
    if restore_us is not None:
        out["restore"] = restore_us
    return out


def measure_all(budget: Dict[str, int],
                phases: bool = False) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for name in WORKLOADS:
        out[name] = measure(name, budget)
        if phases:
            out[name]["phase_us"] = measure_phases(name, budget)
    out["python"] = platform.python_version()
    return out


def load_report(path: str = JSON_PATH) -> Dict[str, Any]:
    if os.path.exists(path):
        with open(path) as fh:
            return json.load(fh)
    return {}


def write_report(report: Dict[str, Any], path: str = JSON_PATH) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def refresh(path: str = JSON_PATH, pre_change: bool = False) -> None:
    report = load_report(path)
    current = measure_all(FULL_BUDGET, phases=not pre_change)
    if pre_change:
        report["pre_change"] = current
    else:
        report["current"] = current
        report["smoke"] = measure_all(SMOKE_BUDGET, phases=True)
        report.setdefault("pre_change", current)
        report["speedup"] = {
            name: round(report["current"][name]["moves_per_sec"] /
                        report["pre_change"][name]["moves_per_sec"], 2)
            for name in WORKLOADS}
        restore_ratio = {}
        for name in WORKLOADS:
            old = report["pre_change"][name].get("phase_us", {}) \
                .get("restore")
            new = report["current"][name].get("phase_us", {}).get("restore")
            if old and new:
                restore_ratio[name] = round(old / new, 2)
        if restore_ratio:
            report["restore_speedup"] = restore_ratio
    write_report(report, path)
    print(json.dumps(report, indent=2, sort_keys=True))


def check(path: str = JSON_PATH,
          tolerance: Optional[float] = None) -> int:
    """CI perf-smoke gate: re-measure the smoke budget and compare."""
    if tolerance is None:
        tolerance = float(os.environ.get("REPRO_PERF_TOLERANCE",
                                         DEFAULT_TOLERANCE))
    committed = load_report(path).get("smoke")
    if not committed:
        print(f"perf-smoke: no committed smoke baseline in {path}",
              file=sys.stderr)
        return 1
    gate_factor = float(os.environ.get("REPRO_RESTORE_GATE_FACTOR",
                                       RESTORE_GATE_FACTOR))
    failed = False
    for name in WORKLOADS:
        measured = measure(name, SMOKE_BUDGET)
        baseline = committed[name]["moves_per_sec"]
        floor = baseline * (1.0 - tolerance)
        status = "ok" if measured["moves_per_sec"] >= floor else "REGRESSION"
        failed = failed or status != "ok"
        print(f"perf-smoke {name}: {measured['moves_per_sec']:.0f} moves/s "
              f"(committed {baseline:.0f}, floor {floor:.0f}, "
              f"tolerance {tolerance:.0%}) -> {status}")
        restore_baseline = committed[name].get("phase_us", {}) \
            .get("restore")
        if not restore_baseline:
            continue
        restore_us = measure_phases(name, SMOKE_BUDGET).get("restore")
        if restore_us is None:
            continue
        ceiling = restore_baseline * gate_factor
        status = "ok" if restore_us <= ceiling else "REGRESSION"
        failed = failed or status != "ok"
        print(f"perf-smoke {name}: restore {restore_us:.1f} us "
              f"(committed {restore_baseline:.1f}, ceiling {ceiling:.1f}, "
              f"factor {gate_factor:g}) -> {status}")
    return 1 if failed else 0


def test_hotpath_smoke(benchmark):
    """pytest-benchmark entry: one representative EWF smoke run."""
    result = benchmark.pedantic(
        lambda: measure("ewf", SMOKE_BUDGET), rounds=1, iterations=1)
    assert result["moves_attempted"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=JSON_PATH,
                        help="report path (default: repo-root "
                             "BENCH_hotpath.json)")
    parser.add_argument("--pre-change", action="store_true",
                        help="record the measurement into the pre_change "
                             "slot (run once, before the fast path)")
    parser.add_argument("--check", action="store_true",
                        help="CI gate: re-measure the smoke budget and "
                             "fail on a >tolerance moves/sec regression")
    parser.add_argument("--tolerance", type=float, default=None,
                        help=f"regression tolerance for --check "
                             f"(default {DEFAULT_TOLERANCE})")
    args = parser.parse_args(argv)
    if args.check:
        return check(args.json, args.tolerance)
    refresh(args.json, pre_change=args.pre_change)
    return 0


if __name__ == "__main__":
    sys.exit(main())
