"""Figure 3 — pass-through vs direct transfer cost mechanics.

Rebuilds the figure's exact datapath situation and asserts the claimed
saving (one equivalent 2-1 multiplexer); the benchmark times the
construction + both cost evaluations + simulation-based verification.
"""

from conftest import publish

from repro.analysis import figure3_experiment, passthrough_demo


def test_fig3_passthrough(benchmark, capsys):
    table = figure3_experiment()
    publish(table, "fig3_passthrough.txt", capsys)

    direct_mux = table.rows[0][1]
    pt_mux = table.rows[1][1]
    assert direct_mux - pt_mux == 1

    demo = benchmark.pedantic(passthrough_demo, rounds=5, iterations=1)
    assert demo["pt_wires"] < demo["direct_wires"]
