"""Shared helpers for the benchmark harness.

Every table and figure of the paper's evaluation has one module here; each
regenerates its table (printed live and saved under ``results/out/``) and
benchmarks a representative slice of the computation with
pytest-benchmark.

Set ``REPRO_BENCH_FULL=1`` for full search budgets (several minutes);
the default "fast" mode reproduces the same shapes in well under a minute
per table.
"""

import os

import pytest

# per-run regenerated outputs land in the untracked results/out/ so local
# bench runs never dirty the curated golden files committed under results/
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results", "out")

#: fast mode unless the user asks for the full-budget run
FAST = os.environ.get("REPRO_BENCH_FULL", "") != "1"


def publish(table, filename, capsys):
    """Print a reproduced table live and persist it under results/out/."""
    text = table.render()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, filename), "w") as fh:
        fh.write(text + "\n")
    with capsys.disabled():
        print("\n" + text)


@pytest.fixture(scope="session")
def fast_mode():
    return FAST
