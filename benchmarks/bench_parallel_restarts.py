"""Parallel restart engine: speedup and result-equivalence vs. serial.

The restarts of `SalsaAllocator` are independent searches, so fanning them
out over processes must change *nothing* but wall-clock time.  This bench
verifies both halves of that contract on the EWF:

* equivalence — best cost and winning binding state are bit-identical for
  ``workers=1`` and ``workers=4``;
* speedup — wall-clock improves with workers (asserted at >= 2x for 4
  workers when the machine actually has >= 4 CPUs; on smaller boxes the
  ratio is still reported).

It also exports the full search telemetry of the serial run as JSON
(``results/out/parallel_restarts_stats.json``) and checks the telemetry
invariant that per-move accept + rollback counters partition the applied
moves.
"""

import json
import os
import time

from conftest import FAST, RESULTS_DIR, publish

from repro.analysis import ExperimentTable
from repro.analysis.stats import telemetry_report
from repro.bench import elliptic_wave_filter
from repro.datapath.units import HardwareSpec
from repro.io import stats_to_json
from repro.sched import schedule_graph
from repro.core import ImproveConfig, SalsaAllocator


def _wall(allocator, graph, schedule, workers):
    started = time.perf_counter()
    result = allocator.allocate(graph, schedule=schedule, workers=workers)
    return result, time.perf_counter() - started


def test_parallel_restarts(benchmark, capsys):
    graph = elliptic_wave_filter()
    schedule = schedule_graph(graph, HardwareSpec.non_pipelined(), 19)
    restarts = 4 if FAST else 8
    config = ImproveConfig(max_trials=3 if FAST else 8,
                           moves_per_trial=200 if FAST else 600)
    allocator = SalsaAllocator(seed=7, restarts=restarts, config=config)

    serial, serial_seconds = _wall(allocator, graph, schedule, workers=1)
    rows = [["1", f"{serial_seconds:.2f}", "1.00",
             f"{serial.cost.total:.2f}", "reference"]]
    for workers in (2, 4):
        result, seconds = _wall(allocator, graph, schedule, workers)
        identical = (result.cost == serial.cost
                     and result.best_restart == serial.best_restart
                     and result.binding.clone_state()
                     == serial.binding.clone_state())
        assert identical, f"workers={workers} diverged from serial"
        rows.append([str(workers), f"{seconds:.2f}",
                     f"{serial_seconds / seconds:.2f}",
                     f"{result.cost.total:.2f}", "bit-identical"])
        if workers == 4 and (os.cpu_count() or 1) >= 4:
            assert serial_seconds / seconds >= 2.0, \
                f"expected >= 2x speedup at 4 workers, got " \
                f"{serial_seconds / seconds:.2f}x"

    table = ExperimentTable(
        name=f"Parallel restarts — EWF @ 19 csteps, {restarts} restarts",
        headers=["workers", "seconds", "speedup", "best cost", "result"])
    table.rows = rows
    table.notes.append(
        f"host has {os.cpu_count() or 1} CPU(s); the >= 2x assertion at 4 "
        "workers only applies on >= 4-CPU machines")
    publish(table, "parallel_restarts.txt", capsys)

    # search telemetry export + invariant check
    for stats in serial.stats:
        accepts = sum(c.accepts for c in stats.per_move.values())
        rollbacks = sum(c.rollbacks for c in stats.per_move.values())
        assert accepts + rollbacks == stats.moves_applied
    os.makedirs(RESULTS_DIR, exist_ok=True)
    stats_path = os.path.join(RESULTS_DIR, "parallel_restarts_stats.json")
    with open(stats_path, "w") as fh:
        fh.write(stats_to_json(serial.stats))
    report_path = os.path.join(RESULTS_DIR, "parallel_restarts_report.json")
    with open(report_path, "w") as fh:
        json.dump(telemetry_report(serial.stats), fh, indent=2,
                  sort_keys=True)

    benchmark.pedantic(
        lambda: SalsaAllocator(
            seed=7, restarts=2,
            config=ImproveConfig(max_trials=2,
                                 moves_per_trial=150)).allocate(
            graph, schedule=schedule, workers=2).cost.total,
        rounds=2, iterations=1)
