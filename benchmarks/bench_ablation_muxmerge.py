"""Ablation C — the multiplexer-merging post-pass (Sec. 4).

"After allocation improvement, the number of multiplexers can be reduced
by merging together compatible multiplexers."  Reports physical mux
instances and equivalent 2-1 counts before/after merging on EWF
allocations; the benchmark times the merge itself.
"""

from conftest import FAST, publish

from repro.analysis import ablation_muxmerge
from repro.bench import elliptic_wave_filter
from repro.datapath.muxmerge import merge_muxes
from repro.datapath.netlist import build_netlist
from repro.datapath.units import HardwareSpec
from repro.sched import schedule_graph
from repro.core import ImproveConfig, SalsaAllocator


def test_ablation_muxmerge(benchmark, capsys):
    table = ablation_muxmerge(fast=FAST)
    publish(table, "ablation_muxmerge.txt", capsys)

    for row in table.rows:
        _csteps, before_inst, after_inst, before_eq, after_eq = row
        assert after_inst <= before_inst
        assert after_eq <= before_eq

    graph = elliptic_wave_filter()
    schedule = schedule_graph(graph, HardwareSpec.non_pipelined(), 19)
    result = SalsaAllocator(
        seed=2, restarts=1,
        config=ImproveConfig(max_trials=3, moves_per_trial=200)).allocate(
        graph, schedule=schedule)
    netlist = build_netlist(result.binding)

    benchmark(lambda: merge_muxes(netlist).after_instances)
