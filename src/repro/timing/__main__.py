"""``python -m repro.timing`` — timing CLI.

Two subcommands back the timing CI lanes:

``sta``
    Allocate the paper benchmarks (EWF, DCT) deterministically and print
    each binding's static-timing picture.  ``--check`` gates the analyzed
    clock period, worst mux depth and critical step against the committed
    golden (``results/timing_sta.json``) with zero tolerance — the
    analyzer is pure arithmetic over a deterministic netlist, so any
    drift is a real behaviour change.  ``--write-golden`` refreshes the
    file after an intentional one.

``roundtrip``
    Run the RTL round-trip verifier (CDFG interpreter vs cycle-accurate
    netlist simulation, plus Verilog lint) over every zoo family and exit
    nonzero on any mismatch.  This is the nightly differential lane.

Examples::

    python -m repro.timing sta
    python -m repro.timing sta --check            # CI gate
    python -m repro.timing sta --write-golden
    python -m repro.timing roundtrip --seed 7
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

#: committed golden for the ``sta --check`` gate
STA_GOLDEN_PATH = os.path.join("results", "timing_sta.json")

#: benchmark name -> repro.bench builder attribute
_BENCHES = ("ewf", "dct")

#: per-bench fields pinned exactly by the golden (the full report is
#: stored for inspection; these are the gated invariants)
_GATED_FIELDS = ("clock_period_ns", "critical_step", "mux_depth_max",
                 "mux_depth_total")


def _bench_binding(name: str):
    """Allocate one paper benchmark exactly as the sta golden records it."""
    from repro.bench import discrete_cosine_transform, elliptic_wave_filter
    from repro.bench.runner import FAST_BUDGET
    from repro.core import SalsaAllocator
    from repro.datapath.units import HardwareSpec
    from repro.sched.asap import asap_length
    from repro.sched.explore import schedule_graph

    graph = {"ewf": elliptic_wave_filter,
             "dct": discrete_cosine_transform}[name]()
    spec = HardwareSpec.non_pipelined()
    length = asap_length(graph, spec)
    schedule = schedule_graph(graph, spec, length=length, method="list",
                              label=name)
    allocator = SalsaAllocator(seed=0, restarts=2, config=FAST_BUDGET)
    result = allocator.allocate(graph, schedule=schedule, spec=spec,
                                registers=schedule.min_registers())
    return result.binding


def _sta_document() -> Dict[str, Any]:
    from repro.timing.sta import analyze_binding
    benches: Dict[str, Any] = {}
    for name in _BENCHES:
        report = analyze_binding(_bench_binding(name))
        benches[name] = report.to_dict()
    return {"type": "timing_sta", "benches": benches}


def _print_sta(document: Dict[str, Any]) -> None:
    for name in sorted(document["benches"]):
        report = document["benches"][name]
        print(f"{name}: clock {report['clock_period_ns']:.3f} ns at step "
              f"{report['critical_step']}, mux depth max "
              f"{report['mux_depth_max']} (total "
              f"{report['mux_depth_total']})")
        print(f"  critical path: {' -> '.join(report['critical_path'])}")


def _cmd_sta(args: argparse.Namespace) -> int:
    document = _sta_document()
    _print_sta(document)
    if args.json:
        _write(document, args.json)
        print(f"wrote {args.json}")
    if args.write_golden:
        _write(document, args.golden)
        print(f"refreshed golden file {args.golden}")
        return 0
    if args.check:
        try:
            with open(args.golden, "r", encoding="utf-8") as handle:
                golden = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"cannot load golden file: {exc}", file=sys.stderr)
            return 2
        if golden.get("type") != "timing_sta":
            print(f"{args.golden} is not a timing_sta document",
                  file=sys.stderr)
            return 2
        problems: List[str] = []
        for name, want in sorted(golden.get("benches", {}).items()):
            got = document["benches"].get(name)
            if got is None:
                problems.append(f"{name}: missing from this run")
                continue
            for fieldname in _GATED_FIELDS:
                if got.get(fieldname) != want.get(fieldname):
                    problems.append(
                        f"{name}: {fieldname} = {got.get(fieldname)!r}, "
                        f"golden {want.get(fieldname)!r} (exact)")
        if problems:
            print(f"\n--check FAILED ({len(problems)} problem(s)):",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"\n--check OK: {len(golden.get('benches', {}))} bench(es) "
              f"match {args.golden}")
    return 0


def _cmd_roundtrip(args: argparse.Namespace) -> int:
    from repro.timing.rtlcheck import roundtrip_zoo
    families = None
    if args.families:
        families = [token.strip() for token in args.families.split(",")
                    if token.strip()]
    reports = roundtrip_zoo(seed=args.seed, iterations=args.iterations,
                            restarts=args.restarts, families=families)
    failures = 0
    for report in reports:
        print(report)
        if not report.ok:
            failures += 1
    if args.json:
        _write({"type": "timing_roundtrip", "seed": args.seed,
                "reports": [r.to_dict() for r in reports]}, args.json)
        print(f"wrote {args.json}")
    if failures:
        print(f"\nroundtrip FAILED: {failures} of {len(reports)} "
              f"scenario(s) diverged", file=sys.stderr)
        return 1
    print(f"\nroundtrip OK: {len(reports)} scenario(s) cycle-accurate")
    return 0


def _write(document: Dict[str, Any], path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.timing",
        description="static timing analysis and RTL round-trip lanes")
    sub = parser.add_subparsers(dest="command", required=True)

    sta = sub.add_parser("sta", help="analyze the paper benchmarks")
    sta.add_argument("--json", default="",
                     help="write the full reports to this path")
    sta.add_argument("--check", action="store_true",
                     help="gate against the committed golden file")
    sta.add_argument("--golden", default=STA_GOLDEN_PATH,
                     help=f"golden file path (default {STA_GOLDEN_PATH})")
    sta.add_argument("--write-golden", action="store_true",
                     help="refresh the golden file from this run")

    roundtrip = sub.add_parser(
        "roundtrip", help="RTL round-trip verification over the zoo")
    roundtrip.add_argument("--seed", type=int, default=0)
    roundtrip.add_argument("--iterations", type=int, default=4,
                           help="simulated loop iterations per scenario")
    roundtrip.add_argument("--restarts", type=int, default=2,
                           help="allocator restarts per scenario")
    roundtrip.add_argument("--families", default="",
                           help="comma-separated zoo families "
                                "(default: all)")
    roundtrip.add_argument("--json", default="",
                           help="write the reports to this path")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "sta":
        return _cmd_sta(args)
    return _cmd_roundtrip(args)


if __name__ == "__main__":
    sys.exit(main())
