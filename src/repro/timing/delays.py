"""Per-unit delay library for the static timing analyzer.

All delays are nanoseconds in an abstract normalized technology: an adder
is the 1.0 ns reference, a combinational multiplier ~3x that, and the
interconnect terms (mux levels, fanout) are small fractions — the ratios,
not the absolute values, are what steer a latency-weighted allocation.

A :class:`DelaySpec` is keyed by **operation kind** (the ``kind`` field of
every :class:`~repro.datapath.netlist.IssueEntry`), not by FU instance:
the same ALU pays the ``add`` path delay in a step where it adds and the
``cmp`` path delay in a step where it compares, which is exactly the
per-step cone the analyzer levelizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from repro.errors import DatapathError

#: Combinational delay per operation kind (ns).  Covers every kind in
#: :data:`repro.cdfg.interp.OP_SEMANTICS`; unknown kinds fall back to
#: :attr:`DelaySpec.default_op_delay`.
DEFAULT_OP_DELAYS: Mapping[str, float] = {
    "add": 1.0,
    "sub": 1.0,
    "mul": 3.2,
    "div": 3.6,
    "and": 0.4,
    "or": 0.4,
    "xor": 0.5,
    "shl": 0.6,
    "shr": 0.6,
    "cmp": 0.9,
    "neg": 0.5,
    "not": 0.3,
    "pass": 0.05,
}


@dataclass(frozen=True)
class DelaySpec:
    """Delay parameters of one target technology.

    ``op_delays``
        operation kind -> combinational delay through the executing FU.
    ``register_clk_q`` / ``register_setup``
        register clock-to-Q and setup time; every reg->reg cone pays both.
    ``mux_level``
        delay of one 2-1 mux level; a sink with fanin *k* pays
        ``ceil(log2(k))`` levels.
    ``wire_fanout``
        per-wire fanout penalty: a source driving *k* distinct sinks adds
        ``(k - 1) * wire_fanout`` to every path leaving it.
    """

    op_delays: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_OP_DELAYS))
    default_op_delay: float = 1.0
    register_clk_q: float = 0.15
    register_setup: float = 0.1
    mux_level: float = 0.2
    wire_fanout: float = 0.02

    def __post_init__(self) -> None:
        scalars = {
            "default_op_delay": self.default_op_delay,
            "register_clk_q": self.register_clk_q,
            "register_setup": self.register_setup,
            "mux_level": self.mux_level,
            "wire_fanout": self.wire_fanout,
        }
        for name, value in scalars.items():
            _require_delay(name, value)
        for kind, value in self.op_delays.items():
            _require_delay(f"op_delays[{kind!r}]", value)

    def op_delay(self, kind: str) -> float:
        """Combinational delay of one *kind* execution (ns)."""
        return self.op_delays.get(kind, self.default_op_delay)


def _require_delay(name: str, value: Any) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or not math.isfinite(value) or value < 0:
        raise DatapathError(
            f"delay spec: {name} must be a finite non-negative number, "
            f"got {value!r}")


#: The library default used everywhere a :class:`DelaySpec` is optional.
DEFAULT_DELAYS = DelaySpec()


def delay_spec_to_dict(spec: DelaySpec) -> Dict[str, Any]:
    """Plain-dict form (canonical: op kinds sort under ``canonical_dumps``)."""
    return {
        "op_delays": {kind: float(delay)
                      for kind, delay in spec.op_delays.items()},
        "default_op_delay": float(spec.default_op_delay),
        "register_clk_q": float(spec.register_clk_q),
        "register_setup": float(spec.register_setup),
        "mux_level": float(spec.mux_level),
        "wire_fanout": float(spec.wire_fanout),
    }


def delay_spec_from_dict(data: Mapping[str, Any]) -> DelaySpec:
    """Inverse of :func:`delay_spec_to_dict`; missing fields take defaults."""
    if not isinstance(data, Mapping):
        raise DatapathError(f"delay spec: expected a mapping, got {data!r}")
    known = {"op_delays", "default_op_delay", "register_clk_q",
             "register_setup", "mux_level", "wire_fanout"}
    unknown = sorted(set(data) - known)
    if unknown:
        raise DatapathError(f"delay spec: unknown fields {unknown}")
    kwargs: Dict[str, Any] = dict(data)
    if "op_delays" in kwargs:
        op_delays = kwargs["op_delays"]
        if not isinstance(op_delays, Mapping):
            raise DatapathError(
                f"delay spec: op_delays must be a mapping, got {op_delays!r}")
        kwargs["op_delays"] = dict(op_delays)
    return DelaySpec(**kwargs)


__all__ = [
    "DEFAULT_DELAYS", "DEFAULT_OP_DELAYS", "DelaySpec",
    "delay_spec_from_dict", "delay_spec_to_dict",
]
