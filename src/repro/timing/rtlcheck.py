"""RTL round-trip verification: interpreter stimuli vs datapath netlist.

The differential lane the nightly fuzzer runs per scenario-zoo family:

1. build and allocate a zoo scenario (same deterministic seeding as the
   bench sweep),
2. generate random-but-reproducible stimuli and run them through the CDFG
   interpreter (:mod:`repro.cdfg.interp`) — the golden model,
3. drive :class:`repro.datapath.simulate.DatapathSimulator` on the
   emitted netlist with the same stimuli,
4. diff every sampled output cycle-accurately (per iteration, per value),
5. emit the Verilog for the datapath *and* the controller and reject
   structural nonsense (empty modules, negative port ranges).

Unlike :func:`repro.datapath.simulate.verify_binding`, which raises on
the first mismatch, the round trip collects **all** mismatches into a
:class:`RoundTripReport` so a nightly failure names every diverging
output at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import DatapathError
from repro.cdfg.interp import run_iterations
from repro.datapath.controller import controller_to_verilog, extract_control
from repro.datapath.netlist import build_netlist
from repro.datapath.rtl import netlist_to_verilog
from repro.datapath.simulate import DatapathSimulator
from repro.rng import make_rng


@dataclass
class RoundTripReport:
    """Outcome of one interpreter-vs-datapath differential run."""

    name: str
    family: str
    iterations: int
    cycles: int
    outputs_checked: int
    max_abs_err: float
    mismatches: List[Dict[str, Any]] = field(default_factory=list)
    rtl_problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.rtl_problems

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": self.family,
            "iterations": self.iterations,
            "cycles": self.cycles,
            "outputs_checked": self.outputs_checked,
            "max_abs_err": self.max_abs_err,
            "mismatches": list(self.mismatches),
            "rtl_problems": list(self.rtl_problems),
            "ok": self.ok,
        }

    def __str__(self) -> str:
        status = "ok" if self.ok else (
            f"{len(self.mismatches)} mismatches, "
            f"{len(self.rtl_problems)} rtl problems")
        return (f"roundtrip({self.name}: {self.outputs_checked} samples "
                f"over {self.cycles} cycles, max_err={self.max_abs_err:g}, "
                f"{status})")


def _rtl_problems(netlist) -> List[str]:
    """Structural sanity of the emitted Verilog (datapath + controller)."""
    problems: List[str] = []
    datapath = netlist_to_verilog(netlist)
    table = extract_control(netlist)
    controller = controller_to_verilog(table)
    for label, text in (("datapath", datapath), ("controller", controller)):
        if "module" not in text or "endmodule" not in text:
            problems.append(f"{label}: not a Verilog module")
        if "[-1:0]" in text:
            problems.append(f"{label}: negative port range emitted")
    return problems


def roundtrip_binding(binding, name: str = "", family: str = "",
                      iterations: int = 4, seed: Any = 0,
                      tol: float = 1e-9,
                      emit_rtl: bool = True) -> RoundTripReport:
    """Diff the netlist simulation against the interpreter, cycle by cycle.

    Stimuli follow the :func:`repro.datapath.simulate.verify_binding`
    conventions exactly (same rounding, same extra trailing iteration for
    cyclic graphs) so the two verifiers agree on what "pass" means.
    """
    graph = binding.graph
    rng = make_rng(seed)
    if not graph.cyclic:
        iterations = 1
    sim_iterations = iterations + (1 if graph.cyclic else 0)
    streams = {vname: [round(rng.uniform(-4.0, 4.0), 3)
                       for _ in range(sim_iterations)]
               for vname in graph.inputs}
    state = {vname: round(rng.uniform(-4.0, 4.0), 3)
             for vname in graph.loop_values}

    expected = run_iterations(graph, streams, state, iterations)
    netlist = build_netlist(binding)
    trace = DatapathSimulator(netlist).run(streams, state, sim_iterations)

    report = RoundTripReport(
        name=name or graph.name, family=family,
        iterations=iterations, cycles=sim_iterations * netlist.length,
        outputs_checked=0, max_abs_err=0.0)
    for iteration in range(iterations):
        for vname in graph.outputs:
            want = expected[iteration][vname]
            got = trace.outputs[iteration].get(vname)
            report.outputs_checked += 1
            if got is None:
                report.mismatches.append(
                    {"output": vname, "iteration": iteration,
                     "expected": want, "actual": None})
                continue
            err = abs(got - want)
            if err > report.max_abs_err:
                report.max_abs_err = err
            if err > tol * max(1.0, abs(want)):
                report.mismatches.append(
                    {"output": vname, "iteration": iteration,
                     "expected": want, "actual": got})
    if emit_rtl:
        report.rtl_problems = _rtl_problems(netlist)
    return report


def _allocate_scenario(scenario, budget=None, restarts: int = 2,
                       method: str = "list") -> Tuple[Any, Any]:
    """The bench sweep's deterministic pipeline, returning the binding."""
    # deferred: repro.bench imports back into timing for the --timing sweep
    from repro.bench.runner import FAST_BUDGET
    from repro.core import SalsaAllocator
    from repro.rng import SeedStream
    from repro.sched.asap import asap_length
    from repro.sched.explore import schedule_graph

    graph = scenario.build()
    spec = scenario.spec()
    definition = scenario.definition
    length = asap_length(graph, spec) + definition.length_slack
    schedule = schedule_graph(graph, spec, length=length, method=method,
                              label=scenario.name)
    registers = schedule.min_registers() + definition.extra_registers
    allocator = SalsaAllocator(
        seed=SeedStream(scenario.seed).child(definition.fid, 0xB),
        restarts=restarts, config=budget or FAST_BUDGET)
    result = allocator.allocate(graph, schedule=schedule, spec=spec,
                                registers=registers)
    return graph, result.binding


def roundtrip_family(family: str, seed: int = 0, iterations: int = 4,
                     budget=None, restarts: int = 2) -> RoundTripReport:
    """Allocate one zoo family's canonical scenario and round-trip it."""
    from repro.bench.zoo import default_suite

    for scenario in default_suite(seed):
        if scenario.family == family:
            _graph, binding = _allocate_scenario(
                scenario, budget=budget, restarts=restarts)
            return roundtrip_binding(binding, name=scenario.name,
                                     family=family, iterations=iterations,
                                     seed=seed)
    raise DatapathError(f"unknown zoo family {family!r}")


def roundtrip_zoo(seed: int = 0, iterations: int = 4, budget=None,
                  restarts: int = 2,
                  families: Optional[List[str]] = None) \
        -> List[RoundTripReport]:
    """Round-trip every zoo family (or *families*); deterministic order."""
    from repro.bench.zoo import default_suite

    reports: List[RoundTripReport] = []
    for scenario in default_suite(seed):
        if families is not None and scenario.family not in families:
            continue
        _graph, binding = _allocate_scenario(scenario, budget=budget,
                                             restarts=restarts)
        reports.append(roundtrip_binding(
            binding, name=scenario.name, family=scenario.family,
            iterations=iterations, seed=seed))
    return reports


__all__ = ["RoundTripReport", "roundtrip_binding", "roundtrip_family",
           "roundtrip_zoo"]
