"""Delay-aware timing layer over the allocated datapath.

The paper's cost model (Sec. 4) counts FUs, registers, muxes and wires but
says nothing about delay, so a "cheaper" binding can silently lengthen the
clock period with deep mux trees.  This package closes that gap:

``delays``
    Per-unit delay library (:class:`~repro.timing.delays.DelaySpec`) with a
    canonical JSON round-trip through :mod:`repro.io`.
``sta``
    A pure, deterministic static timing analyzer over the emitted
    :class:`~repro.datapath.netlist.Netlist` — per-control-step critical
    paths, the overall ``clock_period_ns``, and the worst path as a named
    pin list.
``rtlcheck``
    Round-trip verification: stimuli from the CDFG interpreter drive the
    datapath simulator on the netlist and outputs are diffed
    cycle-accurately, per scenario-zoo family.

The allocator side lives in the core: :class:`repro.datapath.cost.CostWeights`
grew a ``latency`` weight priced against the ledger's O(1) incremental
mux-depth total (Σ over sinks of ceil(log2(fanin))).
"""

from repro.timing.delays import (DEFAULT_DELAYS, DEFAULT_OP_DELAYS, DelaySpec,
                                 delay_spec_from_dict, delay_spec_to_dict)
from repro.timing.sta import (StepTiming, TimingReport, analyze_binding,
                              analyze_netlist, netlist_mux_depth)
from repro.timing.rtlcheck import (RoundTripReport, roundtrip_binding,
                                   roundtrip_family, roundtrip_zoo)

__all__ = [
    "DEFAULT_DELAYS", "DEFAULT_OP_DELAYS", "DelaySpec", "RoundTripReport",
    "StepTiming", "TimingReport", "analyze_binding", "analyze_netlist",
    "delay_spec_from_dict", "delay_spec_to_dict", "netlist_mux_depth",
    "roundtrip_binding", "roundtrip_family", "roundtrip_zoo",
]
