"""Static timing analysis over an emitted datapath netlist.

The allocated datapath is a classic FSMD: every control step activates one
combinational cone — register outputs, through the mux tree in front of
each FU input, through the FU, through the mux tree in front of each
register input, into the register — and all register writes commit on the
same clock edge.  The analyzer levelizes those cones **per control step**
(the step decides which sources each mux selects, so the same physical
mux contributes to different paths in different steps), finds each step's
critical path, and reports the overall ``clock_period_ns`` — the slowest
step is the clock the whole schedule must run at.

Levelization invariant: within one step every arrival is computed from
already-final arrivals — register/input-port origins are constants
(clk->Q / 0), FU outputs depend only on origins, register/output-port
endpoints depend only on FU outputs and origins.  There is no
combinational feedback: a cone is reg -> mux tree -> FU -> mux tree -> reg
with at most one FU traversal (pass-through transfers included).

Multi-cycle operations are modeled as evenly pipelined: an operation
spanning *n* steps contributes ``delay / n`` of combinational logic per
step, bracketed by internal pipeline latches (``fu.p1`` ... ``fu.p{n-1}``
in the path pins), matching the staged FU model of
:mod:`repro.datapath.rtl`.

Everything here is pure and deterministic: same netlist + same
:class:`~repro.timing.delays.DelaySpec` -> bit-identical report,
regardless of dict iteration order or platform.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.errors import DatapathError
from repro.datapath.netlist import IssueEntry, Netlist, build_netlist
from repro.timing.delays import DEFAULT_DELAYS, DelaySpec

#: (arrival ns, named pin list) — compared as a tuple, so ties break on the
#: lexicographically largest path and the result never depends on
#: iteration order
_Arrival = Tuple[float, Tuple[str, ...]]


def ceil_log2(n: int) -> int:
    """``ceil(log2(n))`` for n >= 1 (0 for n <= 1): mux-tree levels."""
    return (n - 1).bit_length() if n > 1 else 0


def netlist_mux_depth(netlist: Netlist) -> int:
    """Total mux-tree levels of the netlist: Σ_mux ceil(log2(#sources)).

    This is the from-netlist oracle for the ledger's incremental
    ``mux_depth`` counter — the sanitizer asserts bit-identity between the
    two (:mod:`repro.verify.sanitizer`).
    """
    return sum(ceil_log2(len(mux.sources)) for mux in netlist.muxes)


@dataclass(frozen=True)
class StepTiming:
    """Critical path of one control step."""

    step: int
    delay_ns: float
    path: Tuple[str, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {"step": self.step, "delay_ns": round(self.delay_ns, 6),
                "path": list(self.path)}


@dataclass(frozen=True)
class TimingReport:
    """Full static timing picture of one netlist."""

    clock_period_ns: float
    critical_step: int
    critical_path: Tuple[str, ...]
    steps: Tuple[StepTiming, ...]
    mux_depth_total: int
    mux_depth_max: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clock_period_ns": round(self.clock_period_ns, 6),
            "critical_step": self.critical_step,
            "critical_path": list(self.critical_path),
            "mux_depth_total": self.mux_depth_total,
            "mux_depth_max": self.mux_depth_max,
            "steps": [entry.to_dict() for entry in self.steps],
        }

    def __str__(self) -> str:
        return (f"timing(clock={self.clock_period_ns:.3f}ns @ step "
                f"{self.critical_step}, depth_max={self.mux_depth_max}, "
                f"path={' -> '.join(self.critical_path)})")


def analyze_binding(binding, delays: DelaySpec = DEFAULT_DELAYS) \
        -> TimingReport:
    """Build the netlist of a complete binding and analyze it."""
    return analyze_netlist(build_netlist(binding), delays)


def analyze_netlist(netlist: Netlist,
                    delays: DelaySpec = DEFAULT_DELAYS) -> TimingReport:
    """Levelize every control step's combinational cone and time it."""
    length = netlist.length
    if length <= 0:
        raise DatapathError(f"netlist {netlist.name!r} has no control steps")

    depth: Dict[Tuple, int] = {
        mux.sink: ceil_log2(len(mux.sources)) for mux in netlist.muxes}
    fanout = Counter(src for (src, _sink) in netlist.connections)
    clk_q = delays.register_clk_q
    setup = delays.register_setup

    def leave(src: Tuple) -> float:
        count = fanout.get(src, 0)
        return delays.wire_fanout * (count - 1) if count > 1 else 0.0

    def enter(sink: Tuple) -> float:
        return depth.get(sink, 0) * delays.mux_level

    def mux_pins(sink: Tuple, pin: str) -> Tuple[str, ...]:
        levels = depth.get(sink, 0)
        return (f"mux{levels}({pin})",) if levels else ()

    # every step at least holds register contents across the edge
    candidates: List[List[_Arrival]] = [
        [(clk_q + setup, ("hold",))] for _ in range(length)]

    op_issue: Dict[str, IssueEntry] = {
        issue.op: issue for issue in netlist.issues}
    #: (completion step, fu) -> arrival at the FU output pin
    out_arrival: Dict[Tuple[int, str], _Arrival] = {}

    def operand_cone(issue: IssueEntry) -> _Arrival:
        best: _Arrival = (0.0, ())
        for src, port in zip(issue.operand_srcs, issue.ports):
            sink = ("fu_in", issue.fu, port)
            pin = f"{issue.fu}.in{port}"
            if src[0] == "reg":
                arrival = (clk_q + leave(("reg_out", src[1])) + enter(sink),
                           (f"{src[1]}.q",) + mux_pins(sink, pin) + (pin,))
            else:  # constants are inlined in the FU expression: no mux
                arrival = (0.0, (f"const:{src[1]}", pin))
            if arrival > best:
                best = arrival
        return best

    for issue in netlist.issues:
        span = issue.end_step - issue.step + 1
        if span < 1:
            raise DatapathError(
                f"issue {issue.op!r} ends before it starts "
                f"({issue.step}..{issue.end_step})")
        stage = delays.op_delay(issue.kind) / span
        start = issue.step % length
        in_arr, in_path = operand_cone(issue)
        if span == 1:
            key = (start, issue.fu)
            arrival = (in_arr + stage, in_path + (f"{issue.fu}.out",))
            if arrival > out_arrival.get(key, (-1.0, ())):
                out_arrival[key] = arrival
            continue
        # issue step: operand cone into the first internal pipeline latch
        candidates[start].append(
            (in_arr + stage + setup, in_path + (f"{issue.fu}.p1",)))
        # interior steps: latch-to-latch through one pipeline stage
        for offset in range(1, span - 1):
            step = (issue.step + offset) % length
            candidates[step].append(
                (clk_q + stage + setup,
                 (f"{issue.fu}.p{offset}", f"{issue.fu}.p{offset + 1}")))
        # completion step: last latch drives the FU output
        key = (issue.end_step % length, issue.fu)
        arrival = (clk_q + stage,
                   (f"{issue.fu}.p{span - 1}", f"{issue.fu}.out"))
        if arrival > out_arrival.get(key, (-1.0, ())):
            out_arrival[key] = arrival

    def fu_output(step: int, op_name: str) -> Tuple[str, _Arrival]:
        issue = op_issue.get(op_name)
        if issue is None:
            raise DatapathError(f"no issue entry for operation {op_name!r}")
        arrival = out_arrival.get((step, issue.fu))
        if arrival is None:
            raise DatapathError(
                f"operation {op_name!r} does not complete at step {step}")
        return issue.fu, arrival

    for write in netlist.writes:
        step = write.step % length
        sink = ("reg_in", write.reg)
        pin = f"{write.reg}.d"
        src = write.source
        if src[0] == "op_result":
            fu, (arr, path) = fu_output(step, src[1])
            arr += leave(("fu_out", fu)) + enter(sink)
        elif src[0] == "reg":
            arr = clk_q + leave(("reg_out", src[1])) + enter(sink)
            path = (f"{src[1]}.q",)
        elif src[0] == "pt":
            src_reg, fu, port = src[1], src[2], src[3]
            port_sink = ("fu_in", fu, port)
            port_pin = f"{fu}.in{port}"
            arr = (clk_q + leave(("reg_out", src_reg)) + enter(port_sink) +
                   delays.op_delay("pass") + leave(("fu_out", fu)) +
                   enter(sink))
            path = ((f"{src_reg}.q",) + mux_pins(port_sink, port_pin) +
                    (port_pin, f"{fu}.out"))
        elif src[0] == "in_port":
            arr = leave(("in_port", src[1])) + enter(sink)
            path = (f"in:{src[1]}",)
        else:
            raise DatapathError(f"unknown write source {src!r}")
        candidates[step].append(
            (arr + setup, path + mux_pins(sink, pin) + (pin,)))

    for out in netlist.outs:
        step = out.step % length
        sink = ("out_port", out.value)
        pin = f"out:{out.value}"
        if out.source[0] == "reg":
            arr = clk_q + leave(("reg_out", out.source[1])) + enter(sink)
            path = (f"{out.source[1]}.q",)
        elif out.source[0] == "op_result":
            fu, (arr, path) = fu_output(step, out.source[1])
            arr += leave(("fu_out", fu)) + enter(sink)
        else:
            raise DatapathError(f"unknown output source {out.source!r}")
        candidates[step].append(
            (arr + setup, path + mux_pins(sink, pin) + (pin,)))

    steps: List[StepTiming] = []
    worst: _Arrival = (-1.0, ())
    critical_step = 0
    for index in range(length):
        delay, path = max(candidates[index])
        steps.append(StepTiming(step=index, delay_ns=delay, path=path))
        if (delay, path) > worst:
            worst = (delay, path)
            critical_step = index
    return TimingReport(
        clock_period_ns=worst[0],
        critical_step=critical_step,
        critical_path=worst[1],
        steps=tuple(steps),
        mux_depth_total=netlist_mux_depth(netlist),
        mux_depth_max=max(depth.values(), default=0),
    )


__all__ = [
    "StepTiming", "TimingReport", "analyze_binding", "analyze_netlist",
    "ceil_log2", "netlist_mux_depth",
]
