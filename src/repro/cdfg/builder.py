"""Fluent construction API for CDFGs.

Example
-------
>>> from repro.cdfg.builder import CDFGBuilder
>>> b = CDFGBuilder("toy", cyclic=False)
>>> b.input("x")
>>> b.input("y")
>>> b.op("a1", "add", ["x", "y"], "s")
>>> b.op("m1", "mul", ["s", 0.5], "p")
>>> b.output("p")
>>> g = b.build()
>>> len(g)
2
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.errors import CDFGError
from repro.cdfg.graph import CDFG
from repro.cdfg.nodes import Operand, Operation, Value, as_operand


class CDFGBuilder:
    """Incrementally assemble a :class:`~repro.cdfg.graph.CDFG`.

    Values referenced by operations are declared implicitly; primary inputs,
    primary outputs and loop-carried values are declared explicitly with
    :meth:`input`, :meth:`output` and :meth:`loop_value`.
    """

    def __init__(self, name: str, cyclic: bool = False) -> None:
        self.name = name
        self.cyclic = cyclic
        self._ops: List[Operation] = []
        self._inputs: Dict[str, int] = {}
        self._outputs: List[str] = []
        self._loop_values: List[str] = []
        self._op_names: set = set()

    # -- declarations -------------------------------------------------------

    def input(self, name: str, arrival_step: int = 0) -> "CDFGBuilder":
        """Declare a primary-input value arriving at *arrival_step*."""
        if name in self._inputs:
            raise CDFGError(f"input {name!r} declared twice")
        self._inputs[name] = arrival_step
        return self

    def output(self, name: str) -> "CDFGBuilder":
        """Mark *name* as a primary output."""
        if name in self._outputs:
            raise CDFGError(f"output {name!r} declared twice")
        self._outputs.append(name)
        return self

    def loop_value(self, name: str) -> "CDFGBuilder":
        """Mark *name* as loop-carried (written in iteration *i*, read in *i+1*)."""
        if name in self._loop_values:
            raise CDFGError(f"loop value {name!r} declared twice")
        self._loop_values.append(name)
        return self

    def op(self, name: str, kind: str,
           operands: Sequence[Union[str, float, int, Operand]],
           result: Optional[str]) -> "CDFGBuilder":
        """Add an operation producing *result* from *operands*."""
        if name in self._op_names:
            raise CDFGError(f"operation {name!r} declared twice")
        self._op_names.add(name)
        self._ops.append(
            Operation(name, kind, tuple(as_operand(o) for o in operands),
                      result))
        return self

    # convenience wrappers used heavily by the benchmark CDFGs -----------------

    def add(self, name: str, a, b, result: str) -> "CDFGBuilder":
        return self.op(name, "add", [a, b], result)

    def sub(self, name: str, a, b, result: str) -> "CDFGBuilder":
        return self.op(name, "sub", [a, b], result)

    def mul(self, name: str, a, b, result: str) -> "CDFGBuilder":
        return self.op(name, "mul", [a, b], result)

    # -- assembly ----------------------------------------------------------------

    def build(self) -> CDFG:
        """Materialize the CDFG, declaring every referenced value."""
        value_names = set(self._inputs)
        for op in self._ops:
            if op.result is not None:
                value_names.add(op.result)
            for _, ref in op.value_operands():
                value_names.add(ref.name)
        loop_set = set(self._loop_values)
        out_set = set(self._outputs)

        for name in out_set | loop_set:
            if name not in value_names:
                raise CDFGError(
                    f"declared value {name!r} never produced or consumed")
        if loop_set and not self.cyclic:
            raise CDFGError(
                f"CDFG {self.name!r} has loop-carried values but is not "
                f"marked cyclic")

        values = []
        for name in sorted(value_names):
            is_input = name in self._inputs
            values.append(Value(
                name,
                producer=None,
                is_input=is_input,
                is_output=name in out_set,
                loop_carried=name in loop_set,
                arrival_step=self._inputs.get(name, 0),
            ))
        return CDFG(self.name, self._ops, values, cyclic=self.cyclic)
