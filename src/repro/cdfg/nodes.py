"""CDFG node types: operations, values, operands, and operator kinds.

The control/data flow graph (CDFG) of the paper specifies *operators* that
manipulate data, *values* that require storage, and *data transfers* (edges)
that move information between them (Sec. 1).  This module defines the node
objects; the graph container lives in :mod:`repro.cdfg.graph`.

Operands of an operation are either :class:`ValueRef` (a named value that
needs storage) or :class:`Const` (an immediate constant).  Following the
paper's evaluation setup, constants do **not** contribute to interconnect or
register cost ("constants for multiplication were not considered to
contribute to the cost of the allocation", Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.errors import CDFGError

# ---------------------------------------------------------------------------
# Operator kinds
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OpKind:
    """Static description of an operator kind.

    Attributes
    ----------
    name:
        Kind identifier, e.g. ``"add"``.
    arity:
        Number of operands.
    commutative:
        Whether the two operands may be swapped without changing the result
        (enables the paper's *Operand Reverse* move F3).
    """

    name: str
    arity: int
    commutative: bool


#: Registry of built-in operator kinds.  ``pass`` is the "No-Op" performed
#: by a slack node bound to a functional unit (Sec. 2).
OP_KINDS: Dict[str, OpKind] = {
    "add": OpKind("add", 2, True),
    "sub": OpKind("sub", 2, False),
    "mul": OpKind("mul", 2, True),
    "div": OpKind("div", 2, False),
    "and": OpKind("and", 2, True),
    "or": OpKind("or", 2, True),
    "xor": OpKind("xor", 2, True),
    "shl": OpKind("shl", 2, False),
    "shr": OpKind("shr", 2, False),
    "cmp": OpKind("cmp", 2, False),
    "neg": OpKind("neg", 1, False),
    "not": OpKind("not", 1, False),
    "pass": OpKind("pass", 1, False),
}


def op_kind(name: str) -> OpKind:
    """Look up an operator kind by name, raising :class:`CDFGError` if unknown."""
    try:
        return OP_KINDS[name]
    except KeyError:
        raise CDFGError(f"unknown operator kind {name!r}") from None


def register_op_kind(kind: OpKind) -> None:
    """Register a custom operator kind (idempotent for identical entries)."""
    existing = OP_KINDS.get(kind.name)
    if existing is not None and existing != kind:
        raise CDFGError(f"operator kind {kind.name!r} already registered "
                        f"with different attributes")
    OP_KINDS[kind.name] = kind


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ValueRef:
    """Reference to a named value used as an operand."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """An immediate constant operand (cost-free in the paper's model)."""

    value: float
    label: Optional[str] = None

    def __str__(self) -> str:
        return self.label if self.label is not None else f"#{self.value:g}"


Operand = Union[ValueRef, Const]


def as_operand(spec: Union[str, float, int, Operand]) -> Operand:
    """Coerce a user-facing operand spec into an :class:`Operand`.

    Strings name values; ints/floats become constants; operand objects pass
    through unchanged.
    """
    if isinstance(spec, (ValueRef, Const)):
        return spec
    if isinstance(spec, str):
        return ValueRef(spec)
    if isinstance(spec, bool):
        raise CDFGError("bool is not a valid operand")
    if isinstance(spec, (int, float)):
        return Const(float(spec))
    raise CDFGError(f"cannot interpret operand spec {spec!r}")


# ---------------------------------------------------------------------------
# Operations and values
# ---------------------------------------------------------------------------


@dataclass
class Operation:
    """A CDFG operator node.

    Attributes
    ----------
    name:
        Unique operation identifier.
    kind:
        Operator kind name (key into :data:`OP_KINDS`).
    operands:
        Tuple of operands, length equal to the kind's arity.
    result:
        Name of the value this operation produces, or ``None`` for
        operations whose result is unused (not normally allowed; the
        validator rejects it).
    """

    name: str
    kind: str
    operands: Tuple[Operand, ...]
    result: Optional[str]

    def __post_init__(self) -> None:
        kind = op_kind(self.kind)
        self.operands = tuple(as_operand(o) for o in self.operands)
        if len(self.operands) != kind.arity:
            raise CDFGError(
                f"operation {self.name!r} of kind {self.kind!r} expects "
                f"{kind.arity} operands, got {len(self.operands)}")

    @property
    def commutative(self) -> bool:
        return op_kind(self.kind).commutative

    @property
    def arity(self) -> int:
        return op_kind(self.kind).arity

    def value_operands(self) -> Tuple[Tuple[int, ValueRef], ...]:
        """Return ``(port, ValueRef)`` pairs for non-constant operands."""
        return tuple((i, o) for i, o in enumerate(self.operands)
                     if isinstance(o, ValueRef))

    def reads(self, value_name: str) -> bool:
        """True if any operand references *value_name*."""
        return any(o.name == value_name for _, o in self.value_operands())

    def __str__(self) -> str:
        args = ", ".join(str(o) for o in self.operands)
        return f"{self.result} = {self.kind}({args})  [{self.name}]"


@dataclass
class Value:
    """A CDFG value node: a datum that requires storage.

    A value is produced either by an operation (``producer`` set) or arrives
    on a primary input port (``producer is None``).  ``loop_carried`` marks
    values written in one loop iteration and read in the next (e.g. the
    state variables of the elliptic wave filter); their lifetimes wrap
    around the cyclic schedule.
    """

    name: str
    producer: Optional[str] = None
    is_input: bool = False
    is_output: bool = False
    loop_carried: bool = False
    arrival_step: int = 0
    consumers: Tuple[Tuple[str, int], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Producer wiring is completed by CDFG._wire(); the only invariant
        # enforced at construction is that inputs are never op-produced.
        if self.is_input and self.producer is not None:
            raise CDFGError(
                f"value {self.name!r} cannot be both a primary input and "
                f"produced by operation {self.producer!r}")

    def __str__(self) -> str:
        tags = []
        if self.is_input:
            tags.append("in")
        if self.is_output:
            tags.append("out")
        if self.loop_carried:
            tags.append("loop")
        suffix = f" <{','.join(tags)}>" if tags else ""
        return f"{self.name}{suffix}"
