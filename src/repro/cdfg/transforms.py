"""CDFG transformations: explicit slack-node insertion (paper Sec. 2).

The SALSA model breaks each value's lifetime into one-control-step segments
joined by *slack nodes* — "No-op" operators that pass their input value
unmodified (paper Fig. 2).  :func:`insert_slack_nodes` materializes this as
an ordinary CDFG: every multi-step value ``v`` becomes a chain

    ``v = v@t0 --S--> v@t1 --S--> v@t2 ...``

with one ``pass`` operation per step boundary, and every consumer rewired
to the segment live at its own control step.

The iterative allocator in :mod:`repro.core` works on an implicit segment
table instead (cheaper to mutate), but this explicit form is what the paper
draws, and round-tripping through it is a strong consistency check used by
the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.errors import CDFGError
from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import LifetimeTable
from repro.cdfg.nodes import Const, Operation, Value, ValueRef


def segment_name(value: str, step: int) -> str:
    """Canonical name of the segment of *value* live at *step* (``v@t``)."""
    return f"{value}@{step}"


@dataclass
class SlackExpansion:
    """Result of :func:`insert_slack_nodes`."""

    graph: CDFG
    #: start step of every operation in the expanded graph (original ops
    #: keep their steps; slack op at boundary t->t' starts at step t)
    start_steps: Dict[str, int]
    #: (value, step) -> segment value name in the expanded graph
    segment_of: Dict[Tuple[str, int], str]
    #: number of slack operations inserted
    slack_count: int


def insert_slack_nodes(graph: CDFG, lifetimes: LifetimeTable,
                       start_steps: Mapping[str, int]) -> SlackExpansion:
    """Expand *graph* into its slack-node (segmented) form.

    *lifetimes* must have been computed for *graph* under *start_steps*.
    Segments are only materialized for steps after the birth step; the birth
    segment keeps the original value name so producer wiring is unchanged.
    """
    new_ops = []
    new_values = []
    seg_of: Dict[Tuple[str, int], str] = {}
    new_starts: Dict[str, int] = dict(start_steps)
    slack_count = 0

    for name, val in graph.values.items():
        interval = lifetimes.interval(name)
        seg_of[(name, interval.birth)] = name
        # In the expanded graph, a segment is loop-carried iff it is written
        # in iteration i and read in iteration i+1.  For the birth segment
        # of a loop value that happens exactly when the producer finishes at
        # the last step, i.e. the (unwrapped) birth wrapped to step 0; later
        # wrap boundaries are handled below.
        birth_wraps = val.loop_carried and interval.birth == 0
        new_values.append(Value(name, producer=None, is_input=val.is_input,
                                is_output=val.is_output,
                                loop_carried=birth_wraps,
                                arrival_step=val.arrival_step))
        prev_seg = name
        for idx in range(1, interval.length):
            step = interval.steps[idx]
            prev_step = interval.steps[idx - 1]
            seg = segment_name(name, step)
            seg_of[(name, step)] = seg
            slack = f"S_{name}_{step}"
            new_ops.append(Operation(slack, "pass", (ValueRef(prev_seg),), seg))
            new_starts[slack] = prev_step
            # a segment whose boundary wraps the iteration is produced in
            # iteration i and read in iteration i+1, i.e. loop-carried in
            # the expanded graph (keeps the dependence graph acyclic)
            wraps_here = step < prev_step
            new_values.append(Value(seg, producer=None, is_input=False,
                                    is_output=False, loop_carried=wraps_here))
            prev_seg = seg
            slack_count += 1

    for op in graph.ops.values():
        step = start_steps[op.name]
        operands = []
        for port, operand in enumerate(op.operands):
            if isinstance(operand, Const):
                operands.append(operand)
                continue
            key = (operand.name, step)
            if key not in seg_of:
                raise CDFGError(
                    f"slack expansion: {op.name!r} reads {operand.name!r} at "
                    f"step {step} where it is not live")
            operands.append(ValueRef(seg_of[key]))
        new_ops.append(Operation(op.name, op.kind, tuple(operands), op.result))

    expanded = CDFG(f"{graph.name}+slack", new_ops, new_values,
                    cyclic=graph.cyclic)
    return SlackExpansion(expanded, new_starts, seg_of, slack_count)
