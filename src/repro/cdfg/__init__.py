"""CDFG substrate: graphs, nodes, lifetimes, slack expansion, interpreter."""

from repro.cdfg.nodes import (Const, OpKind, Operation, Operand, Value,
                              ValueRef, OP_KINDS, op_kind, register_op_kind,
                              as_operand)
from repro.cdfg.graph import CDFG
from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.lifetimes import LifetimeTable, LiveInterval
from repro.cdfg.transforms import (SlackExpansion, insert_slack_nodes,
                                   segment_name)
from repro.cdfg.validate import validate_cdfg, validation_report
from repro.cdfg.interp import evaluate_once, run_iterations, OP_SEMANTICS
from repro.cdfg.dot import cdfg_to_dot

__all__ = [
    "CDFG", "CDFGBuilder", "Const", "LifetimeTable", "LiveInterval",
    "OpKind", "Operation", "Operand", "OP_KINDS", "OP_SEMANTICS",
    "SlackExpansion", "Value", "ValueRef", "as_operand", "cdfg_to_dot",
    "evaluate_once", "insert_slack_nodes", "op_kind", "register_op_kind",
    "run_iterations", "segment_name", "validate_cdfg", "validation_report",
]
