"""Reference interpreter for CDFGs.

Evaluates a CDFG as ordinary arithmetic on Python floats.  This gives the
golden model against which :mod:`repro.datapath.simulate` checks allocated
datapaths: whatever binding the allocator produced, executing the datapath
cycle-by-cycle must compute exactly what the interpreter computes.

For cyclic CDFGs (loop bodies) the interpreter runs one iteration at a time,
threading loop-carried values from iteration to iteration.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import CDFGError
from repro.cdfg.graph import CDFG
from repro.cdfg.nodes import Const, Operation, ValueRef

#: Semantics of each built-in operator kind.
OP_SEMANTICS: Dict[str, Callable[..., float]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    "and": lambda a, b: float(int(a) & int(b)),
    "or": lambda a, b: float(int(a) | int(b)),
    "xor": lambda a, b: float(int(a) ^ int(b)),
    "shl": lambda a, b: float(int(a) << int(b)),
    "shr": lambda a, b: float(int(a) >> int(b)),
    "cmp": lambda a, b: float(a > b) - float(a < b),
    "neg": lambda a: -a,
    "not": lambda a: float(~int(a)),
    "pass": lambda a: a,
}


def evaluate_once(graph: CDFG, env: Mapping[str, float]) -> Dict[str, float]:
    """Evaluate one iteration of *graph*.

    *env* must supply every primary input and (for cyclic graphs) every
    loop-carried value's previous-iteration content.  Returns a dict with
    **all** value names bound to their computed contents (loop-carried names
    map to this iteration's newly produced contents).
    """
    result: Dict[str, float] = {}
    for name in graph.inputs:
        if name not in env:
            raise CDFGError(f"interpreter: missing input {name!r}")
        result[name] = float(env[name])

    prev_loop: Dict[str, float] = {}
    for name in graph.loop_values:
        if name not in env:
            raise CDFGError(
                f"interpreter: missing previous-iteration value {name!r}")
        prev_loop[name] = float(env[name])

    def operand_value(op: Operation, port: int) -> float:
        operand = op.operands[port]
        if isinstance(operand, Const):
            return operand.value
        assert isinstance(operand, ValueRef)
        val = graph.value(operand.name)
        if val.loop_carried:
            return prev_loop[operand.name]
        if operand.name not in result:
            raise CDFGError(
                f"interpreter: {op.name!r} reads {operand.name!r} before "
                f"it is produced")
        return result[operand.name]

    for op_name in graph.topo_order():
        op = graph.ops[op_name]
        fn = OP_SEMANTICS.get(op.kind)
        if fn is None:
            raise CDFGError(f"interpreter: no semantics for kind {op.kind!r}")
        args = [operand_value(op, i) for i in range(op.arity)]
        value = fn(*args)
        if op.result is not None:
            result[op.result] = value
    return result


def run_iterations(graph: CDFG, input_streams: Mapping[str, Sequence[float]],
                   initial_state: Mapping[str, float],
                   iterations: int) -> List[Dict[str, float]]:
    """Run a cyclic CDFG for several iterations.

    *input_streams* maps each primary input to a per-iteration sequence;
    *initial_state* supplies iteration-0 contents for loop-carried values.
    Returns the per-iteration environment dicts from :func:`evaluate_once`.
    """
    state = {name: float(initial_state.get(name, 0.0))
             for name in graph.loop_values}
    trace: List[Dict[str, float]] = []
    for it in range(iterations):
        env: Dict[str, float] = dict(state)
        for name in graph.inputs:
            stream = input_streams.get(name)
            if stream is None or it >= len(stream):
                raise CDFGError(
                    f"interpreter: input stream for {name!r} too short "
                    f"(iteration {it})")
            env[name] = float(stream[it])
        out = evaluate_once(graph, env)
        trace.append(out)
        state = {name: out[name] for name in graph.loop_values}
    return trace
