"""Value lifetime analysis under a schedule.

Timing conventions (see DESIGN.md Sec. 3):

* control steps ``0 .. L-1``; cyclic schedules wrap ``L-1 -> 0``;
* an operation starting at step ``t`` with delay ``d`` produces its result
  at the **end** of step ``t + d - 1``; the value is stored (live) from step
  ``t + d`` onwards;
* a consumer scheduled at step ``s`` reads its operands **during** step
  ``s``, so the value must be live at step ``s``;
* a primary input with arrival step ``a`` is live from step ``a``;
* a primary output keeps its value live at least through its birth step
  (the output port samples the holding register then);
* loop-carried values are produced in iteration *i* and read in iteration
  *i+1*: their live interval wraps the iteration boundary.  Analysis
  requires ``last_read < birth`` (mod L) so only one iteration's copy is
  live at a time; schedulers enforce this with anti-dependence edges.

A :class:`LiveInterval` is the (possibly wrapping) ordered tuple of steps at
which a value is live; one step = one **segment** in the SALSA model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ScheduleError
from repro.cdfg.graph import CDFG


@dataclass(frozen=True)
class LiveInterval:
    """Ordered live steps of one value (wrapping allowed for cyclic graphs)."""

    value: str
    steps: Tuple[int, ...]
    wraps: bool

    @property
    def birth(self) -> int:
        return self.steps[0]

    @property
    def death(self) -> int:
        return self.steps[-1]

    @property
    def length(self) -> int:
        return len(self.steps)

    def covers(self, step: int) -> bool:
        return step in self.steps

    def successor_step(self, step: int) -> Optional[int]:
        """The live step following *step*, or ``None`` at end of life."""
        idx = self.steps.index(step)
        if idx + 1 < len(self.steps):
            return self.steps[idx + 1]
        return None

    def predecessor_step(self, step: int) -> Optional[int]:
        """The live step preceding *step*, or ``None`` at birth."""
        idx = self.steps.index(step)
        if idx > 0:
            return self.steps[idx - 1]
        return None


class LifetimeTable:
    """Live intervals for every value of a scheduled CDFG."""

    def __init__(self, graph: CDFG, start_steps: Mapping[str, int],
                 delays: Mapping[str, int], length: int) -> None:
        self.graph = graph
        self.length = length
        self.intervals: Dict[str, LiveInterval] = {}
        self._compute(start_steps, delays)

    # -- construction -------------------------------------------------------

    def _end_step(self, op_name: str, start_steps: Mapping[str, int],
                  delays: Mapping[str, int]) -> int:
        op = self.graph.ops[op_name]
        if op_name not in start_steps:
            raise ScheduleError(f"operation {op_name!r} is unscheduled")
        return start_steps[op_name] + delays[op.kind] - 1

    def _compute(self, start_steps: Mapping[str, int],
                 delays: Mapping[str, int]) -> None:
        length = self.length
        for name, val in self.graph.values.items():
            # birth step (unwrapped: may equal `length` for values produced
            # at the very end of the schedule)
            if val.is_input:
                birth = val.arrival_step
                if not 0 <= birth < length:
                    raise ScheduleError(
                        f"input {name!r} arrives at step {birth}, outside "
                        f"schedule of length {length}")
            else:
                if val.producer is None:
                    raise ScheduleError(
                        f"value {name!r} has no producer and no arrival step")
                end = self._end_step(val.producer, start_steps, delays)
                birth = end + 1
                if birth > length:
                    raise ScheduleError(
                        f"value {name!r} born at step {birth}, past schedule "
                        f"length {length}")

            # read steps within one iteration
            reads: List[int] = []
            for op_name, _port in val.consumers:
                if op_name not in start_steps:
                    raise ScheduleError(f"operation {op_name!r} is unscheduled")
                reads.append(start_steps[op_name])

            if val.loop_carried:
                interval = self._loop_interval(name, birth, reads, val.is_output)
            else:
                interval = self._straight_interval(name, birth, reads,
                                                   val.is_output)
            self.intervals[name] = interval

    def _straight_interval(self, name: str, birth: int, reads: List[int],
                           is_output: bool) -> LiveInterval:
        if birth == self.length:
            # produced at the very end of the schedule: only legal for pure
            # outputs, which are captured directly off the FU output port
            if reads:
                raise ScheduleError(
                    f"value {name!r} born at step {birth} (end of schedule) "
                    f"but has consumers scheduled at {sorted(reads)}")
            if not is_output:
                raise ScheduleError(
                    f"non-output value {name!r} born past the last step")
            return LiveInterval(name, (birth,), wraps=False)
        if reads and min(reads) < birth:
            raise ScheduleError(
                f"value {name!r} read at step {min(reads)} before its birth "
                f"at step {birth}")
        last = max(reads) if reads else birth
        steps = tuple(range(birth, last + 1))
        return LiveInterval(name, steps, wraps=False)

    def _loop_interval(self, name: str, birth: int, reads: List[int],
                       is_output: bool) -> LiveInterval:
        """Cyclic interval for a loop-carried value.

        All reads happen in the *next* iteration.  To keep a single live
        copy per iteration, every read position must come strictly before
        the (unwrapped) birth: ``read < birth``.  Schedulers guarantee this
        with anti-dependence edges (consumer before producer).
        """
        length = self.length
        for read in reads:
            if read >= birth:
                raise ScheduleError(
                    f"loop value {name!r}: read at step {read} of the next "
                    f"iteration overlaps its rebirth at step {birth}; two "
                    f"iterations' copies would be live at once")
        start = birth % length
        spans = [(read - start) % length for read in reads]
        if is_output:
            spans.append(0)  # the output port samples during the birth step
        best_span = max(spans) if spans else 0
        steps = tuple((start + k) % length for k in range(best_span + 1))
        wraps = any(steps[i + 1] < steps[i] for i in range(len(steps) - 1))
        return LiveInterval(name, steps, wraps=wraps)

    # -- queries ------------------------------------------------------------------

    def interval(self, value_name: str) -> LiveInterval:
        return self.intervals[value_name]

    def live_at(self, step: int) -> List[str]:
        """Names of all values live at *step*, sorted."""
        return sorted(name for name, iv in self.intervals.items()
                      if iv.covers(step))

    def register_demand(self) -> List[int]:
        """Number of live values at each step ``0 .. L-1``."""
        demand = [0] * self.length
        for iv in self.intervals.values():
            for step in iv.steps:
                if 0 <= step < self.length:
                    demand[step] += 1
        return demand

    def min_registers(self) -> int:
        """Lower bound on registers: the maximum simultaneous live count."""
        demand = self.register_demand()
        return max(demand) if demand else 0

    def transfers_possible(self) -> int:
        """Total number of segment boundaries (potential move points)."""
        return sum(max(0, iv.length - 1) for iv in self.intervals.values())
