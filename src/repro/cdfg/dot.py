"""Graphviz DOT export for CDFGs and schedules.

Pure text generation — no Graphviz dependency.  Operation nodes are drawn
as boxes (double boxes for multi-cycle kinds), values as ellipses, slack
nodes (kind ``"pass"``) as small diamonds, matching the visual language of
the paper's Figures 1, 2 and 5.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cdfg.graph import CDFG
from repro.cdfg.nodes import Const

_KIND_GLYPH = {
    "add": "+",
    "sub": "−",
    "mul": "×",
    "div": "÷",
    "pass": "S",
}


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def cdfg_to_dot(graph: CDFG, schedule: Optional[Mapping[str, int]] = None,
                show_values: bool = True) -> str:
    """Render *graph* as a DOT digraph.

    When *schedule* (op name -> start step) is given, operations are grouped
    into per-control-step ranks, mimicking published scheduled-CDFG figures.
    """
    lines = [f"digraph {_quote(graph.name)} {{",
             "  rankdir=TB;",
             "  node [fontname=Helvetica];"]

    for op in graph.ops.values():
        glyph = _KIND_GLYPH.get(op.kind, op.kind)
        label = f"{op.name}\\n{glyph}"
        shape = "diamond" if op.kind == "pass" else "box"
        lines.append(f"  {_quote(op.name)} [label={_quote(label)} "
                     f"shape={shape}];")

    if show_values:
        for val in graph.values.values():
            style = []
            if val.is_input:
                style.append("style=filled fillcolor=lightblue")
            elif val.is_output:
                style.append("style=filled fillcolor=lightyellow")
            elif val.loop_carried:
                style.append("style=filled fillcolor=lightgrey")
            attr = (" " + " ".join(style)) if style else ""
            lines.append(f"  {_quote('v_' + val.name)} "
                         f"[label={_quote(val.name)} shape=ellipse{attr}];")

    for op in graph.ops.values():
        for port, operand in enumerate(op.operands):
            if isinstance(operand, Const):
                continue
            src = f"v_{operand.name}" if show_values else None
            if show_values:
                lines.append(f"  {_quote(src)} -> {_quote(op.name)} "
                             f"[label={_quote(str(port))} fontsize=8];")
            else:
                producer = graph.value(operand.name).producer
                if producer is not None:
                    lines.append(f"  {_quote(producer)} -> {_quote(op.name)};")
        if show_values and op.result is not None:
            lines.append(f"  {_quote(op.name)} -> {_quote('v_' + op.result)};")

    if schedule is not None:
        by_step: dict = {}
        for op_name, step in schedule.items():
            by_step.setdefault(step, []).append(op_name)
        for step in sorted(by_step):
            members = " ".join(_quote(n) for n in sorted(by_step[step]))
            lines.append(f"  {{ rank=same; {members} }}")

    lines.append("}")
    return "\n".join(lines)
