"""The control/data flow graph container.

A :class:`CDFG` holds operations and values and answers the structural
queries every later stage (scheduling, segmentation, binding) needs:
producers, consumers, operation dependence, topological order, and critical
path under a delay model.

Loop bodies (like the elliptic wave filter) are marked ``cyclic=True``:
their schedules repeat every ``length`` control steps and loop-carried
values wrap around the iteration boundary.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import CDFGError
from repro.cdfg.nodes import Const, Operand, Operation, Value, ValueRef


class CDFG:
    """A scheduled-or-unscheduled control/data flow graph.

    Use :class:`repro.cdfg.builder.CDFGBuilder` to construct instances; the
    raw constructor expects fully-formed node dictionaries and performs
    consistency wiring (value consumer lists) itself.
    """

    def __init__(self, name: str, operations: Iterable[Operation],
                 values: Iterable[Value], cyclic: bool = False) -> None:
        self.name = name
        self.cyclic = cyclic
        self.ops: Dict[str, Operation] = {}
        self.values: Dict[str, Value] = {}

        for op in operations:
            if op.name in self.ops:
                raise CDFGError(f"duplicate operation name {op.name!r}")
            self.ops[op.name] = op
        for val in values:
            if val.name in self.values:
                raise CDFGError(f"duplicate value name {val.name!r}")
            self.values[val.name] = val

        self._wire()

    # -- construction helpers ------------------------------------------------

    def _wire(self) -> None:
        """Recompute producer/consumer cross references from operations."""
        consumers: Dict[str, List[Tuple[str, int]]] = {v: [] for v in self.values}
        for op in self.ops.values():
            if op.result is not None:
                if op.result not in self.values:
                    raise CDFGError(
                        f"operation {op.name!r} produces undeclared value "
                        f"{op.result!r}")
                val = self.values[op.result]
                if val.is_input:
                    raise CDFGError(
                        f"operation {op.name!r} writes primary input "
                        f"{op.result!r}")
                if val.producer is not None and val.producer != op.name:
                    raise CDFGError(
                        f"value {op.result!r} produced by both "
                        f"{val.producer!r} and {op.name!r}")
                val.producer = op.name
            for port, ref in op.value_operands():
                if ref.name not in self.values:
                    raise CDFGError(
                        f"operation {op.name!r} reads undeclared value "
                        f"{ref.name!r}")
                consumers[ref.name].append((op.name, port))
        for vname, cons in consumers.items():
            self.values[vname].consumers = tuple(sorted(cons))

    # -- basic queries ---------------------------------------------------------

    @property
    def inputs(self) -> List[str]:
        """Names of primary-input values, in name order."""
        return sorted(v for v, val in self.values.items() if val.is_input)

    @property
    def outputs(self) -> List[str]:
        """Names of primary-output values, in name order."""
        return sorted(v for v, val in self.values.items() if val.is_output)

    @property
    def loop_values(self) -> List[str]:
        """Names of loop-carried values, in name order."""
        return sorted(v for v, val in self.values.items() if val.loop_carried)

    def op(self, name: str) -> Operation:
        try:
            return self.ops[name]
        except KeyError:
            raise CDFGError(f"no operation named {name!r}") from None

    def value(self, name: str) -> Value:
        try:
            return self.values[name]
        except KeyError:
            raise CDFGError(f"no value named {name!r}") from None

    def producer_of(self, value_name: str) -> Optional[Operation]:
        """The operation producing *value_name*, or ``None`` for inputs."""
        producer = self.value(value_name).producer
        return self.ops[producer] if producer is not None else None

    def consumers_of(self, value_name: str) -> Tuple[Tuple[str, int], ...]:
        """``(op_name, port)`` pairs reading *value_name*."""
        return self.value(value_name).consumers

    def op_predecessors(self, op_name: str) -> List[str]:
        """Operations whose results feed *op_name* **within one iteration**.

        Loop-carried operands come from the previous iteration, so they do
        not create an intra-iteration dependence edge.
        """
        preds = []
        for _, ref in self.op(op_name).value_operands():
            val = self.values[ref.name]
            if val.loop_carried or val.producer is None:
                continue
            preds.append(val.producer)
        return preds

    def op_successors(self, op_name: str) -> List[str]:
        """Operations consuming this op's result within one iteration."""
        op = self.op(op_name)
        if op.result is None:
            return []
        val = self.values[op.result]
        if val.loop_carried:
            return []
        return [c for c, _ in val.consumers]

    def op_count_by_kind(self) -> Counter:
        """Histogram of operation kinds, e.g. ``{'add': 26, 'mul': 8}``."""
        return Counter(op.kind for op in self.ops.values())

    # -- graph algorithms -------------------------------------------------------

    def topo_order(self) -> List[str]:
        """Topological order of operations over intra-iteration edges.

        Raises :class:`CDFGError` if the intra-iteration dependence graph has
        a cycle (which would make the CDFG unschedulable).
        """
        indeg = {name: 0 for name in self.ops}
        for name in self.ops:
            for _ in self.op_predecessors(name):
                indeg[name] += 1
        ready = deque(sorted(n for n, d in indeg.items() if d == 0))
        order: List[str] = []
        while ready:
            node = ready.popleft()
            order.append(node)
            # a successor may consume the same value on both ports (x*x), so
            # decrement by the number of dependence edges node -> succ
            for succ in sorted(set(self.op_successors(node))):
                dup = sum(1 for p in self.op_predecessors(succ) if p == node)
                indeg[succ] -= dup
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.ops):
            stuck = sorted(n for n, d in indeg.items() if d > 0)
            raise CDFGError(
                f"CDFG {self.name!r} has a combinational cycle involving "
                f"{stuck[:5]}")
        return order

    def critical_path(self, delays: Mapping[str, int]) -> int:
        """Length (in control steps) of the longest dependence chain.

        *delays* maps operator kind to its delay in control steps; the
        returned length is the minimum feasible schedule latency with
        unlimited resources.
        """
        finish: Dict[str, int] = {}
        for name in self.topo_order():
            op = self.ops[name]
            delay = self._delay_of(op, delays)
            start = 0
            for pred in self.op_predecessors(name):
                start = max(start, finish[pred])
            finish[name] = start + delay
        return max(finish.values(), default=0)

    def _delay_of(self, op: Operation, delays: Mapping[str, int]) -> int:
        try:
            delay = delays[op.kind]
        except KeyError:
            raise CDFGError(
                f"no delay specified for operator kind {op.kind!r}") from None
        if delay < 1:
            raise CDFGError(f"delay for {op.kind!r} must be >= 1, got {delay}")
        return delay

    # -- misc --------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "CDFG":
        """Deep-enough copy: fresh node objects sharing no mutable state."""
        ops = [Operation(o.name, o.kind, o.operands, o.result)
               for o in self.ops.values()]
        vals = [Value(v.name, producer=v.producer, is_input=v.is_input,
                      is_output=v.is_output, loop_carried=v.loop_carried,
                      arrival_step=v.arrival_step)
                for v in self.values.values()]
        return CDFG(name or self.name, ops, vals, cyclic=self.cyclic)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops.values())

    def __repr__(self) -> str:
        kinds = dict(self.op_count_by_kind())
        return (f"CDFG({self.name!r}, ops={len(self.ops)}, "
                f"values={len(self.values)}, kinds={kinds}, "
                f"cyclic={self.cyclic})")

    def summary(self) -> str:
        """Human-readable multi-line summary used by examples."""
        lines = [f"CDFG {self.name}: {len(self.ops)} operations, "
                 f"{len(self.values)} values"
                 f" ({'cyclic loop body' if self.cyclic else 'acyclic'})"]
        for kind, count in sorted(self.op_count_by_kind().items()):
            lines.append(f"  {kind:>5}: {count}")
        lines.append(f"  inputs : {', '.join(self.inputs) or '-'}")
        lines.append(f"  outputs: {', '.join(self.outputs) or '-'}")
        if self.loop_values:
            lines.append(f"  loop-carried: {', '.join(self.loop_values)}")
        return "\n".join(lines)
