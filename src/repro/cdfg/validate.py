"""Structural validation of CDFGs.

:func:`validate_cdfg` checks every invariant later stages rely on and raises
:class:`~repro.errors.CDFGError` with a precise message on the first
violation.  :func:`validation_report` collects all violations instead, which
the test-suite and examples use for nicer diagnostics.
"""

from __future__ import annotations

from typing import List

from repro.errors import CDFGError
from repro.cdfg.graph import CDFG


def validation_report(graph: CDFG) -> List[str]:
    """Return a list of human-readable problems (empty when valid)."""
    problems: List[str] = []

    for name, val in graph.values.items():
        produced = val.producer is not None
        if not produced and not val.is_input and not val.loop_carried:
            problems.append(
                f"value {name!r} is never produced and is not a primary input")
        if not val.consumers and not val.is_output:
            problems.append(
                f"value {name!r} is never consumed and is not a primary output")
        if val.is_input and val.loop_carried:
            problems.append(
                f"value {name!r} is both a primary input and loop-carried")
        if val.loop_carried and not graph.cyclic:
            problems.append(
                f"loop-carried value {name!r} in non-cyclic CDFG")

    for name, op in graph.ops.items():
        if op.result is None:
            problems.append(f"operation {name!r} produces no value")
        for _, ref in op.value_operands():
            if ref.name not in graph.values:
                problems.append(
                    f"operation {name!r} reads undeclared value {ref.name!r}")

    # dependence acyclicity over intra-iteration edges
    try:
        graph.topo_order()
    except CDFGError as exc:
        problems.append(str(exc))

    return problems


def validate_cdfg(graph: CDFG) -> None:
    """Raise :class:`CDFGError` when *graph* violates any structural invariant."""
    problems = validation_report(graph)
    if problems:
        raise CDFGError(
            f"CDFG {graph.name!r} failed validation "
            f"({len(problems)} problem(s)):\n  " + "\n  ".join(problems))
