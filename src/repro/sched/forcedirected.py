"""Force-directed (distribution-balancing) time-constrained scheduling.

A Paulin/Knight-style scheduler used when a schedule should *balance*
concurrency across control steps (lower FU peaks and usually lower register
pressure) instead of packing greedily like the list scheduler.

This implementation uses the quadratic-energy formulation: every
unscheduled operation spreads unit probability uniformly over its feasible
window; the *energy* of a distribution graph is the sum of squared
per-step demands, and operations are fixed one at a time (least-mobility
first) to the step that minimizes total energy after constraint
propagation.  Minimizing Σ d(s)² with fixed Σ d(s) is exactly the
"flatten the distribution graphs" objective of force-directed scheduling.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ScheduleError
from repro.cdfg.graph import CDFG
from repro.datapath.units import HardwareSpec
from repro.sched.asap import alap_schedule, asap_schedule, asap_length
from repro.sched.schedule import (Schedule, anti_predecessors,
                                  data_predecessors)


class _Windows:
    """Feasible [lo, hi] start windows with forward/backward propagation."""

    def __init__(self, graph: CDFG, spec: HardwareSpec, length: int) -> None:
        self.graph = graph
        self.delays = spec.delays()
        self.length = length
        asap = asap_schedule(graph, spec)
        alap = alap_schedule(graph, spec, length)
        self.lo = dict(asap)
        self.hi = dict(alap)

    def fix(self, op_name: str, step: int) -> None:
        if not self.lo[op_name] <= step <= self.hi[op_name]:
            raise ScheduleError(
                f"FDS: cannot fix {op_name!r} at {step}, window "
                f"[{self.lo[op_name]}, {self.hi[op_name]}]")
        self.lo[op_name] = self.hi[op_name] = step
        self.propagate()

    def propagate(self) -> None:
        graph, delays = self.graph, self.delays
        order = graph.topo_order()
        for _round in range(len(order) + 2):
            changed = False
            for name in order:
                kind = graph.ops[name].kind
                lo = self.lo[name]
                for pred in data_predecessors(graph, name):
                    lo = max(lo, self.lo[pred] + delays[graph.ops[pred].kind])
                for anti in anti_predecessors(graph, name):
                    lo = max(lo, self.lo[anti])
                if lo > self.lo[name]:
                    self.lo[name] = lo
                    changed = True
            for name in reversed(order):
                kind = graph.ops[name].kind
                hi = self.hi[name]
                for succ in graph.op_successors(name):
                    hi = min(hi, self.hi[succ] - delays[kind])
                for _, ref in graph.ops[name].value_operands():
                    val = graph.values[ref.name]
                    if val.loop_carried and val.producer not in (None, name):
                        hi = min(hi, self.hi[val.producer])
                if hi < self.hi[name]:
                    self.hi[name] = hi
                    changed = True
            if not changed:
                break
        for name in order:
            if self.lo[name] > self.hi[name]:
                raise ScheduleError(
                    f"FDS: window of {name!r} collapsed "
                    f"([{self.lo[name]}, {self.hi[name]}])")


def _occupied(step: int, delay: int, pipelined: bool) -> Tuple[int, ...]:
    return (step,) if pipelined else tuple(range(step, step + delay))


def force_directed_schedule(graph: CDFG, spec: HardwareSpec, length: int,
                            label: str = "") -> Schedule:
    """Time-constrained scheduling of *graph* into exactly *length* steps."""
    if length < asap_length(graph, spec):
        raise ScheduleError(
            f"FDS: target length {length} below critical path "
            f"{asap_length(graph, spec)}")
    windows = _Windows(graph, spec, length)
    delays = spec.delays()
    fixed: Dict[str, int] = {}

    def distribution() -> Dict[str, List[float]]:
        dist = {name: [0.0] * length for name in spec.fu_types}
        for op_name, op in graph.ops.items():
            fu_type = spec.type_for_kind(op.kind)
            lo, hi = windows.lo[op_name], windows.hi[op_name]
            weight = 1.0 / (hi - lo + 1)
            for start in range(lo, hi + 1):
                for s in _occupied(start, fu_type.delay, fu_type.pipelined):
                    dist[fu_type.name][s] += weight
        return dist

    def energy(dist: Dict[str, List[float]]) -> float:
        return sum(d * d for per_type in dist.values() for d in per_type)

    while len(fixed) < len(graph.ops):
        # choose the unscheduled op with the tightest window (ties by name)
        pending = sorted(
            (name for name in graph.ops if name not in fixed),
            key=lambda n: (windows.hi[n] - windows.lo[n], n))
        op_name = pending[0]
        lo, hi = windows.lo[op_name], windows.hi[op_name]
        if lo == hi:
            fixed[op_name] = lo
            windows.fix(op_name, lo)
            continue
        best_step, best_energy = None, None
        for step in range(lo, hi + 1):
            trial = _snapshot(windows)
            try:
                windows.fix(op_name, step)
            except ScheduleError:
                _restore(windows, trial)
                continue
            e = energy(distribution())
            _restore(windows, trial)
            if best_energy is None or e < best_energy:
                best_step, best_energy = step, e
        if best_step is None:
            raise ScheduleError(
                f"FDS: no feasible step for {op_name!r} in [{lo}, {hi}]")
        windows.fix(op_name, best_step)
        fixed[op_name] = best_step

    return Schedule(graph, spec, length, fixed,
                    label=label or f"{graph.name}@fds{length}")


def _snapshot(windows: _Windows) -> Tuple[Dict[str, int], Dict[str, int]]:
    return dict(windows.lo), dict(windows.hi)


def _restore(windows: _Windows,
             snap: Tuple[Dict[str, int], Dict[str, int]]) -> None:
    windows.lo, windows.hi = dict(snap[0]), dict(snap[1])
