"""Scheduling substrate: ASAP/ALAP, list, force-directed, exploration."""

from repro.datapath.units import (ADDER, ALU, FU, FUType, HardwareSpec,
                                  MULTIPLIER, PIPELINED_MULTIPLIER, Register,
                                  make_registers)
from repro.sched.schedule import (Schedule, anti_predecessors,
                                  data_predecessors)
from repro.sched.asap import (alap_schedule, asap_length, asap_schedule,
                              mobility)
from repro.sched.list_scheduler import list_schedule
from repro.sched.forcedirected import force_directed_schedule
from repro.sched.bnb import branch_and_bound_schedule
from repro.sched.explore import (lower_bounds, minimal_fu_counts,
                                 schedule_graph)

__all__ = [
    "ADDER", "ALU", "FU", "FUType", "HardwareSpec", "MULTIPLIER",
    "PIPELINED_MULTIPLIER", "Register", "Schedule", "alap_schedule",
    "anti_predecessors", "asap_length", "asap_schedule",
    "branch_and_bound_schedule",
    "data_predecessors", "force_directed_schedule", "list_schedule",
    "lower_bounds", "make_registers", "minimal_fu_counts", "mobility",
    "schedule_graph",
]
