"""Resource-constrained list scheduling.

The stand-in for the SALSA scheduler [16] the paper pairs its allocator
with: a classic priority-list scheduler that honours multi-cycle and
pipelined functional units and the loop anti-dependence rule (producers of
loop-carried values never start before their next-iteration consumers).

Priority is *urgency* (ALAP start ascending, i.e. least slack first), which
for the benchmark CDFGs reproduces the canonical minimum-resource schedules
(e.g. EWF in 17 steps on 3 adders / 3 multipliers).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ScheduleError
from repro.cdfg.graph import CDFG
from repro.datapath.units import HardwareSpec
from repro.sched.asap import alap_schedule, asap_length
from repro.sched.schedule import (Schedule, anti_predecessors,
                                  data_predecessors)


def list_schedule(graph: CDFG, spec: HardwareSpec,
                  fu_counts: Mapping[str, int],
                  target_length: Optional[int] = None,
                  label: str = "") -> Schedule:
    """Schedule *graph* on at most ``fu_counts[type]`` units of each type.

    When *target_length* is given the result is padded/validated to exactly
    that many control steps (raising :class:`ScheduleError` if the resources
    cannot meet it); otherwise the makespan becomes the schedule length.
    """
    delays = spec.delays()
    for op in graph.ops.values():
        type_name = spec.type_for_kind(op.kind).name
        if fu_counts.get(type_name, 0) < 1:
            raise ScheduleError(
                f"no {type_name!r} units provided but operation "
                f"{op.name!r} ({op.kind}) needs one")

    horizon = target_length if target_length is not None else \
        2 * max(asap_length(graph, spec), 1) + len(graph.ops)
    priority = alap_schedule(graph, spec,
                             max(horizon, asap_length(graph, spec)))

    max_delay = max(delays.values())
    max_steps = horizon + len(graph.ops) * max_delay
    busy: Dict[str, List[int]] = {
        name: [0] * (max_steps + max_delay + 2) for name in spec.fu_types}
    start: Dict[str, int] = {}
    unscheduled = set(graph.ops)
    step = 0

    def ready_at(op_name: str, when: int) -> bool:
        for pred in data_predecessors(graph, op_name):
            if pred in unscheduled:
                return False
            if when <= start[pred] + delays[graph.ops[pred].kind] - 1:
                return False
        for anti in anti_predecessors(graph, op_name):
            if anti in unscheduled:
                return False
        return True

    while unscheduled:
        if step > max_steps:
            raise ScheduleError(
                f"list scheduler on {graph.name!r} exceeded {max_steps} "
                f"steps; resources {dict(fu_counts)} look infeasible")
        # anti-dependence edges allow a loop-value producer to start in the
        # *same* step as its last consumer, so an op can become ready midway
        # through filling a step: iterate to a fixed point within the step
        progress = True
        while progress:
            progress = False
            candidates = sorted(
                (name for name in unscheduled if ready_at(name, step)),
                key=lambda n: (priority[n], n))
            for op_name in candidates:
                op = graph.ops[op_name]
                fu_type = spec.type_for_kind(op.kind)
                limit = fu_counts[fu_type.name]
                occupied = ((step,) if fu_type.pipelined
                            else tuple(range(step, step + fu_type.delay)))
                if any(busy[fu_type.name][s] >= limit for s in occupied):
                    continue
                for s in occupied:
                    busy[fu_type.name][s] += 1
                start[op_name] = step
                unscheduled.discard(op_name)
                progress = True
        step += 1

    makespan = max(start[name] + delays[graph.ops[name].kind]
                   for name in graph.ops)
    length = target_length if target_length is not None else makespan
    if makespan > length:
        raise ScheduleError(
            f"list scheduler needed {makespan} steps for {graph.name!r}, "
            f"exceeding target {length} with resources {dict(fu_counts)}")
    return Schedule(graph, spec, length, start,
                    label=label or f"{graph.name}@{length}")
