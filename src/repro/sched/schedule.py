"""The :class:`Schedule` object: op start steps + derived analyses.

A schedule fixes the minimum number of functional units and registers
(paper Sec. 1); those minima are exposed here (:meth:`Schedule.min_fus`,
:meth:`Schedule.min_registers`) and drive the experiment parameterization
of Tables 2 and 3.

Loop bodies use *non-overlapped* cyclic schedules: each iteration occupies
steps ``0 .. length-1``, operations never straddle the iteration boundary,
and only value lifetimes wrap (handled by
:class:`repro.cdfg.lifetimes.LifetimeTable`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ScheduleError
from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import LifetimeTable
from repro.datapath.units import FUType, HardwareSpec


def data_predecessors(graph: CDFG, op_name: str) -> List[str]:
    """Intra-iteration data predecessors (must *finish* before we start)."""
    return graph.op_predecessors(op_name)


def anti_predecessors(graph: CDFG, op_name: str) -> List[str]:
    """Anti-dependence predecessors (must *start* no later than we start).

    The producer of a loop-carried value must not overwrite it before every
    next-iteration consumer has read it.  We enforce the conservative form
    ``producer_start >= consumer_start`` which guarantees
    ``read_step < birth_step`` for every delay >= 1.
    """
    op = graph.ops[op_name]
    if op.result is None:
        return []
    val = graph.values[op.result]
    if not val.loop_carried:
        return []
    return sorted({consumer for consumer, _ in val.consumers
                   if consumer != op_name})


class Schedule:
    """An assignment of start control steps to every operation."""

    def __init__(self, graph: CDFG, spec: HardwareSpec, length: int,
                 start: Mapping[str, int], label: str = "") -> None:
        self.graph = graph
        self.spec = spec
        self.length = length
        self.start: Dict[str, int] = dict(start)
        self.label = label or f"{graph.name}@{length}"
        self._lifetimes: Optional[LifetimeTable] = None
        self.validate()

    # -- basic queries ------------------------------------------------------

    @property
    def delays(self) -> Dict[str, int]:
        return self.spec.delays()

    def delay_of(self, op_name: str) -> int:
        return self.delays[self.graph.ops[op_name].kind]

    def end(self, op_name: str) -> int:
        """Last step the operation is executing (result at end of it)."""
        return self.start[op_name] + self.delay_of(op_name) - 1

    def busy_steps(self, op_name: str) -> Tuple[int, ...]:
        """Steps on which the op occupies its FU (issue slot if pipelined)."""
        op = self.graph.ops[op_name]
        fu_type = self.spec.type_for_kind(op.kind)
        if fu_type.pipelined:
            return (self.start[op_name],)
        return tuple(range(self.start[op_name], self.end(op_name) + 1))

    # -- derived analyses ---------------------------------------------------------

    @property
    def lifetimes(self) -> LifetimeTable:
        if self._lifetimes is None:
            self._lifetimes = LifetimeTable(self.graph, self.start,
                                            self.delays, self.length)
        return self._lifetimes

    def min_registers(self) -> int:
        return self.lifetimes.min_registers()

    def fu_demand(self) -> Dict[str, List[int]]:
        """Per-type, per-step count of busy units."""
        demand = {name: [0] * self.length for name in self.spec.fu_types}
        for op_name, op in self.graph.ops.items():
            type_name = self.spec.type_for_kind(op.kind).name
            for step in self.busy_steps(op_name):
                demand[type_name][step] += 1
        return demand

    def min_fus(self) -> Dict[str, int]:
        """Minimum FU count per type implied by this schedule."""
        return {name: (max(steps) if steps else 0)
                for name, steps in self.fu_demand().items()}

    def ops_at(self, step: int) -> List[str]:
        """Ops busy at *step*, sorted by name."""
        return sorted(op for op in self.graph.ops
                      if step in self.busy_steps(op))

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ScheduleError` on any violated constraint."""
        graph, length = self.graph, self.length
        if length < 1:
            raise ScheduleError("schedule length must be >= 1")
        for op_name in graph.ops:
            if op_name not in self.start:
                raise ScheduleError(f"operation {op_name!r} unscheduled")
            start = self.start[op_name]
            end = start + self.delay_of(op_name) - 1
            if start < 0 or end >= length:
                raise ScheduleError(
                    f"operation {op_name!r} at steps [{start}, {end}] "
                    f"outside schedule of length {length}")
        for op_name in graph.ops:
            for pred in data_predecessors(graph, op_name):
                if self.start[op_name] <= self.end(pred):
                    raise ScheduleError(
                        f"{op_name!r} starts at {self.start[op_name]} before "
                        f"its data predecessor {pred!r} finishes at "
                        f"{self.end(pred)}")
            for anti in anti_predecessors(graph, op_name):
                if self.start[op_name] < self.start[anti]:
                    raise ScheduleError(
                        f"loop producer {op_name!r} starts at "
                        f"{self.start[op_name]}, before next-iteration "
                        f"consumer {anti!r} at {self.start[anti]}")
        # building lifetimes performs the remaining read-before-birth checks
        LifetimeTable(graph, self.start, self.delays, length)

    # -- presentation -------------------------------------------------------------

    def table(self) -> str:
        """ASCII Gantt-style table of the schedule (used by examples)."""
        lines = [f"Schedule {self.label}: {self.length} control steps, "
                 f"min FUs {self.min_fus()}, min registers "
                 f"{self.min_registers()}"]
        for step in range(self.length):
            ops = []
            for op_name in self.ops_at(step):
                mark = "*" if self.start[op_name] == step else "."
                ops.append(f"{op_name}{mark}")
            live = len(self.lifetimes.live_at(step))
            lines.append(f"  s{step:>2}: {' '.join(ops):<60} |live {live}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Schedule({self.label!r}, length={self.length}, "
                f"ops={len(self.start)})")
