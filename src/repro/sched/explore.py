"""Latency/resource exploration: minimum FU counts for a target latency.

Scheduling "fixes the minimum number of functional units and registers"
(paper Sec. 1); this module finds those minima.  The search enumerates FU
count vectors in order of increasing total area and returns the first one
the list scheduler proves feasible — exact for the monotone feasibility
predicate list scheduling provides in practice on these benchmark sizes.
"""

from __future__ import annotations

import heapq
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ScheduleError
from repro.cdfg.graph import CDFG
from repro.datapath.units import HardwareSpec
from repro.sched.asap import asap_length
from repro.sched.forcedirected import force_directed_schedule
from repro.sched.list_scheduler import list_schedule
from repro.sched.schedule import Schedule


def _occupancy(graph: CDFG, spec: HardwareSpec) -> Dict[str, int]:
    """Total busy-steps demanded of each FU type over one iteration."""
    occupancy = {name: 0 for name in spec.fu_types}
    for op in graph.ops.values():
        fu_type = spec.type_for_kind(op.kind)
        occupancy[fu_type.name] += 1 if fu_type.pipelined else fu_type.delay
    return occupancy


def lower_bounds(graph: CDFG, spec: HardwareSpec,
                 length: int) -> Dict[str, int]:
    """Utilization lower bound: ceil(total busy steps / length) per type."""
    occupancy = _occupancy(graph, spec)
    return {name: max((occ + length - 1) // length, 1 if occ else 0)
            for name, occ in occupancy.items()}


def minimal_fu_counts(graph: CDFG, spec: HardwareSpec,
                      length: int) -> Dict[str, int]:
    """Smallest-area FU count vector for which list scheduling meets *length*.

    Explores count vectors best-first by total area starting from the
    utilization lower bounds; each expansion bumps one type by one unit.
    """
    if length < asap_length(graph, spec):
        raise ScheduleError(
            f"target length {length} below critical path "
            f"{asap_length(graph, spec)} of {graph.name!r}")
    base = lower_bounds(graph, spec, length)
    type_names = sorted(base)
    caps = {name: max(base[name], _occupancy(graph, spec)[name], 1)
            for name in type_names}

    def area(counts: Mapping[str, int]) -> float:
        return sum(spec.type_named(n).area * c for n, c in counts.items())

    start = tuple(base[n] for n in type_names)
    heap: list = [(area(base), start)]
    seen = {start}
    while heap:
        _, vector = heapq.heappop(heap)
        counts = dict(zip(type_names, vector))
        try:
            list_schedule(graph, spec, counts, target_length=length)
            return counts
        except ScheduleError:
            pass
        for index, name in enumerate(type_names):
            if vector[index] >= caps[name]:
                continue
            bumped = vector[:index] + (vector[index] + 1,) + vector[index + 1:]
            if bumped not in seen:
                seen.add(bumped)
                bumped_counts = dict(zip(type_names, bumped))
                heapq.heappush(heap, (area(bumped_counts), bumped))
    raise ScheduleError(
        f"no feasible FU allocation meets length {length} for {graph.name!r}")


def schedule_graph(graph: CDFG, spec: HardwareSpec,
                   length: Optional[int] = None,
                   fu_counts: Optional[Mapping[str, int]] = None,
                   method: str = "list",
                   label: str = "") -> Schedule:
    """One-stop scheduling entry point.

    * *length* ``None`` ⇒ critical-path length (fastest schedule).
    * *fu_counts* ``None`` ⇒ minimal counts found by :func:`minimal_fu_counts`.
    * *method* ``"list"`` (resource-constrained list scheduling) or
      ``"fds"`` (force-directed; balances concurrency, same FU minima are
      verified afterwards).
    """
    if length is None:
        length = asap_length(graph, spec)
    if method not in ("list", "fds"):
        raise ScheduleError(f"unknown scheduling method {method!r}")
    if method == "fds":
        return force_directed_schedule(graph, spec, length, label=label)
    counts = dict(fu_counts) if fu_counts is not None else \
        minimal_fu_counts(graph, spec, length)
    return list_schedule(graph, spec, counts, target_length=length,
                         label=label)
