"""ASAP / ALAP scheduling and mobility (slack) analysis.

These unconstrained schedules bound every operation's feasible start-step
window; the window width is the operation's *mobility*, which the paper's
slack nodes represent explicitly on control edges (Sec. 2) and which the
list and force-directed schedulers use as priority.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.errors import ScheduleError
from repro.cdfg.graph import CDFG
from repro.datapath.units import HardwareSpec
from repro.sched.schedule import anti_predecessors, data_predecessors


def asap_schedule(graph: CDFG, spec: HardwareSpec) -> Dict[str, int]:
    """Earliest feasible start step for every operation (unlimited FUs)."""
    delays = spec.delays()
    start: Dict[str, int] = {}
    for op_name in graph.topo_order():
        earliest = 0
        for pred in data_predecessors(graph, op_name):
            earliest = max(earliest,
                           start[pred] + delays[graph.ops[pred].kind])
        start[op_name] = earliest
    # anti-dependence edges (loop producers after consumers) are resolved by
    # fixed-point iteration: consumer starts only ever move producers later
    changed = True
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > len(graph.ops) + 2:
            raise ScheduleError(
                f"ASAP: anti-dependence constraints do not converge on "
                f"{graph.name!r}")
        for op_name in graph.topo_order():
            lo = start[op_name]
            for anti in anti_predecessors(graph, op_name):
                lo = max(lo, start[anti])
            for pred in data_predecessors(graph, op_name):
                lo = max(lo, start[pred] + delays[graph.ops[pred].kind])
            if lo != start[op_name]:
                start[op_name] = lo
                changed = True
    return start


def asap_length(graph: CDFG, spec: HardwareSpec) -> int:
    """Minimum schedule length (critical path) with unlimited resources."""
    delays = spec.delays()
    start = asap_schedule(graph, spec)
    return max(start[name] + delays[graph.ops[name].kind]
               for name in graph.ops) if graph.ops else 0


def alap_schedule(graph: CDFG, spec: HardwareSpec,
                  length: int) -> Dict[str, int]:
    """Latest feasible start steps for a schedule of *length* steps."""
    delays = spec.delays()
    if length < asap_length(graph, spec):
        raise ScheduleError(
            f"ALAP: length {length} below critical path "
            f"{asap_length(graph, spec)} for {graph.name!r}")
    start: Dict[str, int] = {}
    order = graph.topo_order()
    for op_name in reversed(order):
        op = graph.ops[op_name]
        latest = length - delays[op.kind]
        for succ in graph.op_successors(op_name):
            latest = min(latest, start[succ] - delays[op.kind])
        start[op_name] = latest
    # anti-dependence: a loop-value consumer must start no later than the
    # value's producer; consumers only ever move earlier, so fixed-point
    changed = True
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > len(graph.ops) + 2:
            raise ScheduleError(
                f"ALAP: anti-dependence constraints do not converge on "
                f"{graph.name!r}")
        for op_name in reversed(order):
            op = graph.ops[op_name]
            hi = start[op_name]
            for succ in graph.op_successors(op_name):
                hi = min(hi, start[succ] - delays[op.kind])
            # if this op consumes a loop value, it must start <= producer
            for _, ref in op.value_operands():
                val = graph.values[ref.name]
                if val.loop_carried and val.producer is not None \
                        and val.producer != op_name:
                    hi = min(hi, start[val.producer])
            if hi < start[op_name]:
                start[op_name] = hi
                changed = True
    for op_name, step in start.items():
        if step < 0:
            raise ScheduleError(
                f"ALAP: operation {op_name!r} cannot meet length {length}")
    return start


def mobility(graph: CDFG, spec: HardwareSpec,
             length: int) -> Dict[str, int]:
    """Per-op slack: ALAP start − ASAP start (0 ⇒ on the critical path)."""
    asap = asap_schedule(graph, spec)
    alap = alap_schedule(graph, spec, length)
    result = {}
    for op_name in graph.ops:
        slack = alap[op_name] - asap[op_name]
        if slack < 0:
            raise ScheduleError(
                f"negative mobility for {op_name!r}: ASAP {asap[op_name]}, "
                f"ALAP {alap[op_name]}")
        result[op_name] = slack
    return result
