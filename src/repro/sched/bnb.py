"""Exact resource-constrained scheduling by branch and bound.

For small CDFGs this finds the provably minimum-latency schedule under
given FU counts, which the test-suite uses to certify the list scheduler's
quality (the paper relies on its scheduler fixing the FU/register minima;
here we verify our stand-in does not silently waste latency on small
kernels).

Search: operations are placed in a topological-order DFS, each at its
earliest feasible step first; the bound is the classic
``current makespan ∨ (start lower bounds of unplaced ops)`` plus a
per-type utilization bound on the remaining busy-steps.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ScheduleError
from repro.cdfg.graph import CDFG
from repro.datapath.units import HardwareSpec
from repro.sched.asap import asap_schedule
from repro.sched.schedule import (Schedule, anti_predecessors,
                                  data_predecessors)

#: guard against accidental use on large graphs
MAX_OPS = 24


def _combined_topo(graph: CDFG) -> List[str]:
    """Topological order over data edges plus loop anti-dependences."""
    preds = {name: set(data_predecessors(graph, name)) |
             set(anti_predecessors(graph, name))
             for name in graph.ops}
    order: List[str] = []
    ready = sorted(n for n, p in preds.items() if not p)
    placed = set()
    while ready:
        node = ready.pop(0)
        order.append(node)
        placed.add(node)
        newly = sorted(n for n, p in preds.items()
                       if n not in placed and n not in ready
                       and p <= placed)
        ready = sorted(set(ready) | set(newly))
    if len(order) != len(graph.ops):
        raise ScheduleError(
            f"combined dependence graph of {graph.name!r} has a cycle")
    return order


def branch_and_bound_schedule(graph: CDFG, spec: HardwareSpec,
                              fu_counts: Mapping[str, int],
                              upper_length: Optional[int] = None,
                              max_nodes: int = 2_000_000) -> Schedule:
    """Minimum-latency schedule of *graph* under *fu_counts*, provably.

    Raises :class:`ScheduleError` when the instance is too large, no
    feasible schedule exists within *upper_length*, or the node budget is
    exhausted (which would make optimality claims unsound).
    """
    if len(graph.ops) > MAX_OPS:
        raise ScheduleError(
            f"branch-and-bound limited to {MAX_OPS} operations "
            f"({len(graph.ops)} given); use the list scheduler")
    delays = spec.delays()
    asap = asap_schedule(graph, spec)
    # place ops in an order where every data AND anti-dependence
    # predecessor comes first, so earliest_start() sees all constraints
    order = _combined_topo(graph)

    # initial upper bound from the greedy list scheduler
    from repro.sched.list_scheduler import list_schedule
    try:
        greedy = list_schedule(graph, spec, fu_counts)
        best_length = greedy.length
        best_start: Optional[Dict[str, int]] = dict(greedy.start)
    except ScheduleError:
        best_length = None
        best_start = None
    if upper_length is not None:
        if best_length is None or upper_length < best_length:
            best_length = upper_length + 1  # exclusive bound
            best_start = None

    occupancy = {tname: {} for tname in spec.fu_types}
    placed: Dict[str, int] = {}
    remaining_busy = {tname: 0 for tname in spec.fu_types}
    for op in graph.ops.values():
        fu_type = spec.type_for_kind(op.kind)
        remaining_busy[fu_type.name] += 1 if fu_type.pipelined \
            else fu_type.delay

    nodes = [0]

    def earliest_start(op_name: str) -> int:
        lo = asap[op_name]
        for pred in data_predecessors(graph, op_name):
            lo = max(lo, placed[pred] + delays[graph.ops[pred].kind])
        for anti in anti_predecessors(graph, op_name):
            if anti in placed:
                lo = max(lo, placed[anti])
        return lo

    def lower_bound(current_end: int) -> int:
        bound = current_end
        for tname, busy in remaining_busy.items():
            count = fu_counts.get(tname, 0)
            if busy and count:
                bound = max(bound, (busy + count - 1) // count)
        return bound

    def dfs(index: int, current_end: int) -> None:
        nonlocal best_length, best_start
        nodes[0] += 1
        if nodes[0] > max_nodes:
            raise ScheduleError(
                f"branch-and-bound node budget {max_nodes} exhausted")
        if best_length is not None and \
                lower_bound(current_end) >= best_length:
            return
        if index == len(order):
            if best_length is None or current_end < best_length:
                best_length = current_end
                best_start = dict(placed)
            return
        op_name = order[index]
        op = graph.ops[op_name]
        fu_type = spec.type_for_kind(op.kind)
        tname = fu_type.name
        count = fu_counts.get(tname, 0)
        if count < 1:
            return
        lo = earliest_start(op_name)
        hi = (best_length - delays[op.kind]) if best_length is not None \
            else lo + len(order) * max(delays.values())
        occupy = 1 if fu_type.pipelined else fu_type.delay
        for start in range(lo, hi + 1):
            steps = (start,) if fu_type.pipelined else \
                tuple(range(start, start + fu_type.delay))
            if any(occupancy[tname].get(s, 0) >= count for s in steps):
                continue
            for s in steps:
                occupancy[tname][s] = occupancy[tname].get(s, 0) + 1
            placed[op_name] = start
            remaining_busy[tname] -= occupy
            dfs(index + 1, max(current_end, start + delays[op.kind]))
            remaining_busy[tname] += occupy
            del placed[op_name]
            for s in steps:
                occupancy[tname][s] -= 1

    dfs(0, 0)
    if best_start is None:
        raise ScheduleError(
            f"no feasible schedule within length bound for {graph.name!r}")
    return Schedule(graph, spec, best_length, best_start,
                    label=f"{graph.name}@bnb{best_length}")
