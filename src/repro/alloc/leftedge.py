"""Left-edge register allocation (the classic traditional-model baseline).

Kurdahi/Parker-style left-edge packing for linear lifetimes, plus a greedy
circular-arc variant for cyclic (loop-body) lifetimes.  Both assign each
value to exactly one register for its whole lifetime — the monolithic
binding the paper's extended model generalizes.

Note the theory gap the extended model exploits: for *linear* intervals,
left-edge always succeeds with ``max overlap`` registers; for *cyclic*
intervals (circular arcs) the chromatic number can exceed the maximum
overlap, so the traditional model sometimes needs an extra register where
segment-level binding does not (see ``tests/alloc/test_leftedge.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AllocationError
from repro.cdfg.lifetimes import LiveInterval
from repro.sched.schedule import Schedule


def left_edge(schedule: Schedule,
              register_names: Optional[Sequence[str]] = None) \
        -> Dict[str, str]:
    """Monolithic value -> register assignment by left-edge packing.

    Returns ``{value: register}``.  Raises :class:`AllocationError` when
    *register_names* is given and too small.  Port-captured values (born
    past the last step) are skipped — they never occupy a register.
    """
    lifetimes = schedule.lifetimes
    length = schedule.length
    linear: List[LiveInterval] = []
    wrapped: List[LiveInterval] = []
    for name in sorted(schedule.graph.values):
        interval = lifetimes.interval(name)
        if interval.birth >= length:
            continue
        (wrapped if interval.wraps else linear).append(interval)

    assignment: Dict[str, str] = {}
    occupancy: List[set] = []  # per register, the set of occupied steps

    def fits(reg_idx: int, steps: Tuple[int, ...]) -> bool:
        return not occupancy[reg_idx].intersection(steps)

    def place(interval: LiveInterval) -> None:
        for reg_idx in range(len(occupancy)):
            if fits(reg_idx, interval.steps):
                occupancy[reg_idx].update(interval.steps)
                assignment[interval.value] = reg_idx
                return
        occupancy.append(set(interval.steps))
        assignment[interval.value] = len(occupancy) - 1

    # circular arcs first (they are the hardest to place), longest first;
    # then classic left-edge order (sorted by birth) for linear intervals
    for interval in sorted(wrapped, key=lambda iv: (-iv.length, iv.value)):
        place(interval)
    for interval in sorted(linear, key=lambda iv: (iv.birth, iv.death,
                                                   iv.value)):
        place(interval)

    n_regs = len(occupancy)
    if register_names is None:
        register_names = [f"R{i}" for i in range(n_regs)]
    if n_regs > len(register_names):
        raise AllocationError(
            f"left-edge needs {n_regs} registers, only "
            f"{len(register_names)} provided (max overlap is "
            f"{lifetimes.min_registers()}; cyclic lifetimes can force more)")
    return {value: register_names[idx] for value, idx in assignment.items()}


def left_edge_register_count(schedule: Schedule) -> int:
    """Number of registers the left-edge allocator uses on *schedule*."""
    assignment = left_edge(schedule)
    return len(set(assignment.values()))
