"""Baseline allocators (traditional binding model) and legality checking."""

from repro.alloc.checker import assert_legal, check_binding
from repro.alloc.leftedge import left_edge, left_edge_register_count
from repro.alloc.clique import clique_partition_registers
from repro.alloc.bipartite import bipartite_fu_binding
from repro.alloc.constructive import constructive_allocation

__all__ = [
    "assert_legal", "bipartite_fu_binding", "check_binding",
    "clique_partition_registers", "constructive_allocation", "left_edge",
    "left_edge_register_count",
]
