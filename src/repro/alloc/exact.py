"""Exact (exhaustive) allocation for tiny instances.

The paper notes that exact approaches (bipartite matching [13], integer
programming [14]) "can find optimal or near-optimal allocations for this
binding model".  This module provides a brute-force optimal allocator for
the *traditional* binding model on tiny CDFGs — small enough to enumerate
every (operation -> FU, value -> register, operand-swap) combination — and
is used by the test-suite to certify that the iterative-improvement
allocator actually reaches the optimum where the optimum is computable.

Complexity is ``O(F^ops * R^values * 2^commutative)``; callers should stay
below ~6 operations / ~6 stored values (the guard raises otherwise).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AllocationError
from repro.datapath.cost import CostWeights
from repro.datapath.units import FU, Register
from repro.sched.schedule import Schedule
from repro.core.binding import Binding
from repro.core.initial import wire_reads

#: search-size guard
MAX_ASSIGNMENTS = 3_000_000


def exact_traditional_allocation(schedule: Schedule, fus: Sequence[FU],
                                 registers: Sequence[Register],
                                 weights: CostWeights = CostWeights(),
                                 optimize_swaps: bool = True) -> Binding:
    """Return a provably cost-optimal traditional-model binding."""
    graph = schedule.graph
    lifetimes = schedule.lifetimes
    ops = sorted(graph.ops)
    stored = [v for v in sorted(graph.values)
              if lifetimes.interval(v).birth < schedule.length]
    swappable = [o for o in ops if graph.ops[o].commutative
                 and graph.ops[o].arity == 2] if optimize_swaps else []

    fu_options: List[List[str]] = []
    for op_name in ops:
        kind = graph.ops[op_name].kind
        options = [f.name for f in fus if f.fu_type.supports(kind)]
        if not options:
            raise AllocationError(f"no FU can execute {op_name!r}")
        fu_options.append(options)

    size = 1
    for options in fu_options:
        size *= len(options)
    size *= len(registers) ** len(stored)
    size *= 2 ** len(swappable)
    if size > MAX_ASSIGNMENTS:
        raise AllocationError(
            f"exact search space {size} exceeds {MAX_ASSIGNMENTS}; "
            f"use the iterative allocator")

    reg_names = [r.name for r in registers]
    best_cost: Optional[float] = None
    best_choice = None

    binding = Binding(schedule, fus, registers, weights=weights)
    for fu_choice in itertools.product(*fu_options):
        # FU conflict pre-check (cheap)
        busy = {}
        ok = True
        for op_name, fu_name in zip(ops, fu_choice):
            for step in schedule.busy_steps(op_name):
                if busy.setdefault((fu_name, step), op_name) != op_name:
                    ok = False
                    break
            if not ok:
                break
        if not ok:
            continue
        for reg_choice in itertools.product(reg_names, repeat=len(stored)):
            # register conflict pre-check
            occupied = {}
            ok = True
            for value, reg in zip(stored, reg_choice):
                for step in lifetimes.interval(value).steps:
                    if occupied.setdefault((reg, step), value) != value:
                        ok = False
                        break
                if not ok:
                    break
            if not ok:
                continue
            for swap_bits in itertools.product(
                    (False, True), repeat=len(swappable)):
                cost = _evaluate(binding, ops, fu_choice, stored,
                                 reg_choice, swappable, swap_bits)
                if best_cost is None or cost < best_cost - 1e-12:
                    best_cost = cost
                    best_choice = (fu_choice, reg_choice, swap_bits)

    if best_choice is None:
        raise AllocationError("no legal traditional binding exists")
    fu_choice, reg_choice, swap_bits = best_choice
    _apply(binding, ops, fu_choice, stored, reg_choice, swappable,
           swap_bits)
    return binding


def _apply(binding: Binding, ops, fu_choice, stored, reg_choice,
           swappable, swap_bits) -> None:
    # reset
    for key in list(binding.placements):
        binding.set_placements(key[0], key[1], ())
    for op_name in list(binding.op_fu):
        binding.set_op_fu(op_name, None)
    for op_name in list(binding.op_swap):
        binding.set_op_swap(op_name, False)

    for op_name, fu_name in zip(ops, fu_choice):
        binding.set_op_fu(op_name, fu_name)
    for value, reg in zip(stored, reg_choice):
        for step in binding.interval(value).steps:
            binding.set_placements(value, step, (reg,))
    for op_name, flag in zip(swappable, swap_bits):
        binding.set_op_swap(op_name, flag)
    wire_reads(binding)
    binding.flush()


def _evaluate(binding: Binding, ops, fu_choice, stored, reg_choice,
              swappable, swap_bits) -> float:
    _apply(binding, ops, fu_choice, stored, reg_choice, swappable,
           swap_bits)
    return binding.cost().total
