"""Weighted-bipartite-matching functional-unit binding (Huang et al. 1990).

Processes control steps in order; at each step the operations issuing
there are matched to the functional units of their type by minimum-cost
bipartite assignment, where the cost of putting operation *o* on unit *f*
is the number of **new** register-to-FU-input connections that binding
would create given the (monolithic) register assignment and everything
bound so far.  This reproduces the flavour of "Data Path Allocation Based
on Bipartite Weighted Matching" (paper reference [13]), one of the exact
traditional-model approaches the introduction contrasts against.

Uses :func:`scipy.optimize.linear_sum_assignment` for the matching.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.errors import AllocationError
from repro.datapath.units import FU
from repro.sched.schedule import Schedule


def bipartite_fu_binding(schedule: Schedule, fus: Sequence[FU],
                         value_reg: Dict[str, str]) -> Dict[str, str]:
    """Bind every operation to an FU by per-step min-cost matching.

    *value_reg* is a monolithic value -> register map (e.g. from
    :func:`repro.alloc.leftedge.left_edge`); the matching cost counts new
    (register, FU input port) pairs.
    """
    graph = schedule.graph
    by_type: Dict[str, List[FU]] = {}
    for fu in fus:
        by_type.setdefault(fu.type_name, []).append(fu)

    #: connections built so far: set of (reg, fu, port)
    existing: set = set()
    busy: Dict[Tuple[str, int], str] = {}
    op_fu: Dict[str, str] = {}

    def busy_steps(op_name: str) -> Tuple[int, ...]:
        return schedule.busy_steps(op_name)

    def edge_cost(op_name: str, fu: FU) -> float:
        cost = 0.0
        op = graph.ops[op_name]
        for port, ref in op.value_operands():
            reg = value_reg.get(ref.name)
            if reg is None:
                continue
            if (reg, fu.name, port) not in existing:
                cost += 1.0
        return cost

    for step in range(schedule.length):
        ops_here = sorted(op for op in graph.ops
                          if schedule.start[op] == step)
        by_kind_type: Dict[str, List[str]] = {}
        for op_name in ops_here:
            tname = schedule.spec.type_for_kind(
                graph.ops[op_name].kind).name
            by_kind_type.setdefault(tname, []).append(op_name)
        for tname, ops in by_kind_type.items():
            units = [fu for fu in by_type.get(tname, [])
                     if all((fu.name, s) not in busy
                            for s in range(step, step + 1))]
            # a unit is eligible only if free over the op's busy window
            matrix = np.full((len(ops), len(units)), 1e6)
            for i, op_name in enumerate(ops):
                for j, fu in enumerate(units):
                    if any((fu.name, s) in busy
                           for s in busy_steps(op_name)):
                        continue
                    matrix[i, j] = edge_cost(op_name, fu)
            if len(units) < len(ops):
                raise AllocationError(
                    f"step {step}: {len(ops)} {tname!r} operations but "
                    f"only {len(units)} free units")
            rows, cols = linear_sum_assignment(matrix)
            for i, j in zip(rows, cols):
                if matrix[i, j] >= 1e6:
                    raise AllocationError(
                        f"no feasible {tname!r} unit for {ops[i]!r} at "
                        f"step {step}")
                op_name, fu = ops[i], units[j]
                op_fu[op_name] = fu.name
                for s in busy_steps(op_name):
                    busy[(fu.name, s)] = op_name
                op = graph.ops[op_name]
                for port, ref in op.value_operands():
                    reg = value_reg.get(ref.name)
                    if reg is not None:
                        existing.add((reg, fu.name, port))
    return op_fu
