"""Complete constructive traditional-model allocations.

Combines the classic register allocators (left-edge, clique partitioning)
with the classic FU binders (first-available, weighted bipartite matching)
into full :class:`~repro.core.binding.Binding` objects, so every baseline
is measured under exactly the same point-to-point cost model as the
paper's allocator.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import AllocationError
from repro.datapath.cost import CostWeights
from repro.datapath.units import FU, Register
from repro.sched.schedule import Schedule
from repro.core.binding import Binding
from repro.core.initial import bind_ops_first_available, wire_reads
from repro.alloc.leftedge import left_edge
from repro.alloc.clique import clique_partition_registers
from repro.alloc.bipartite import bipartite_fu_binding


def constructive_allocation(schedule: Schedule, fus: Sequence[FU],
                            registers: Sequence[Register],
                            register_method: str = "leftedge",
                            fu_method: str = "first",
                            weights: CostWeights = CostWeights()) -> Binding:
    """Build a complete monolithic-value binding with classic heuristics.

    *register_method*: ``"leftedge"`` or ``"clique"``.
    *fu_method*: ``"first"`` (first-available) or ``"bipartite"``
    (per-step weighted matching against the register assignment).
    """
    binding = Binding(schedule, fus, registers, weights=weights)
    reg_names = sorted(binding.regs)

    # registers first: both classic methods are register-driven
    if register_method == "leftedge":
        value_reg = left_edge(schedule, reg_names)
    elif register_method == "clique":
        value_reg = clique_partition_registers(schedule,
                                               register_names=reg_names)
    else:
        raise AllocationError(
            f"unknown register method {register_method!r}")

    if fu_method == "first":
        bind_ops_first_available(binding)
    elif fu_method == "bipartite":
        op_fu = bipartite_fu_binding(schedule, list(binding.fus.values()),
                                     value_reg)
        for op_name, fu_name in op_fu.items():
            binding.set_op_fu(op_name, fu_name)
    else:
        raise AllocationError(f"unknown FU method {fu_method!r}")

    for value, reg in value_reg.items():
        for step in binding.interval(value).steps:
            binding.set_placements(value, step, (reg,))
    wire_reads(binding)
    binding.flush()
    return binding
