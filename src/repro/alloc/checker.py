"""Full legality checking of a binding.

Every structural rule of the (extended) binding model is verified here:
FU conflicts, register conflicts, completeness of segment placement,
consumer read-source validity, pass-through validity, and consistency of
the incrementally-maintained connection ledger against a from-scratch
re-derivation.  The iterative allocator keeps these invariants by
construction; the checker is the independent referee used by the
test-suite and at the end of every allocation run.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from typing import TYPE_CHECKING

from repro.errors import BindingError
from repro.datapath.interconnect import ConnectionLedger

if TYPE_CHECKING:  # avoid a circular import with repro.core
    from repro.core.binding import Binding


def check_binding(binding: "Binding") -> List[str]:
    """Return a list of rule violations (empty when the binding is legal)."""
    problems: List[str] = []
    binding.flush()  # the ledger is maintained lazily; sync before judging
    graph = binding.graph
    schedule = binding.schedule

    # 1. operator bindings ---------------------------------------------------
    for op_name, op in graph.ops.items():
        fu_name = binding.op_fu.get(op_name)
        if fu_name is None:
            problems.append(f"operation {op_name!r} unbound")
            continue
        fu = binding.fus[fu_name]
        if not fu.fu_type.supports(op.kind):
            problems.append(
                f"operation {op_name!r} ({op.kind}) on incapable FU "
                f"{fu_name!r}")
        for step in schedule.busy_steps(op_name):
            token = binding.fu_tokens.get((fu_name, step))
            if token != ("op", op_name):
                problems.append(
                    f"FU token mismatch for {op_name!r} at "
                    f"({fu_name!r}, {step}): {token}")
        if binding.op_swap.get(op_name, False) and not (
                op.arity == 2 and op.commutative):
            problems.append(f"illegal operand swap on {op_name!r}")

    # tokens must be exactly ops' busy steps plus valid pass-throughs
    expected_tokens = {}
    for op_name in graph.ops:
        fu_name = binding.op_fu.get(op_name)
        if fu_name is None:
            continue
        for step in schedule.busy_steps(op_name):
            expected_tokens[(fu_name, step)] = ("op", op_name)
    for key, impl in binding.pt_impl.items():
        value, dst_step, dst_reg = key
        src_step = binding.interval(value).predecessor_step(dst_step)
        if src_step is None:
            problems.append(f"pass-through {key} on a birth segment")
            continue
        expected_tokens[(impl[1], src_step)] = ("pt",) + key
    if expected_tokens != binding.fu_tokens:
        extra = set(binding.fu_tokens) - set(expected_tokens)
        missing = set(expected_tokens) - set(binding.fu_tokens)
        problems.append(
            f"FU token table out of sync (extra {sorted(extra)[:4]}, "
            f"missing {sorted(missing)[:4]})")

    # 2. segment placements ----------------------------------------------------
    for vname in graph.values:
        if binding.port_captured(vname):
            if binding.placements.get((vname,
                                       binding.interval(vname).birth)):
                problems.append(
                    f"port-captured value {vname!r} has register placements")
            continue
        for step in binding.interval(vname).steps:
            regs = binding.segment_regs(vname, step)
            if not regs:
                problems.append(
                    f"segment ({vname!r}, {step}) has no register")
                continue
            if len(set(regs)) != len(regs):
                problems.append(
                    f"segment ({vname!r}, {step}) placed twice in one "
                    f"register: {regs}")
            for reg in regs:
                if binding.reg_occ.get((reg, step)) != vname:
                    problems.append(
                        f"occupancy table disagrees for ({reg!r}, {step})")
    occupants = Counter()
    for (reg, step), vname in binding.reg_occ.items():
        occupants[(reg, step)] += 1
        regs = binding.segment_regs(vname, step)
        if reg not in regs:
            problems.append(
                f"reg_occ has ({reg!r}, {step}) -> {vname!r} but placement "
                f"is {regs}")

    # 3. consumer read sources ---------------------------------------------------
    for vname, val in graph.values.items():
        for op_name, port in val.consumers:
            step = schedule.start[op_name]
            reg = binding.read_src.get((op_name, port))
            if reg is None:
                problems.append(
                    f"consumer ({op_name!r}, port {port}) of {vname!r} has "
                    f"no read source")
                continue
            if reg not in binding.segment_regs(vname, step):
                problems.append(
                    f"consumer ({op_name!r}, port {port}) reads {vname!r} "
                    f"from {reg!r}, which does not hold it at step {step}")

    # 4. outputs --------------------------------------------------------------------
    for vname in graph.outputs:
        if binding.port_captured(vname):
            producer = graph.values[vname].producer
            if producer is not None and binding.op_fu.get(producer) is None:
                problems.append(
                    f"port-captured output {vname!r} has unbound producer")
            continue
        reg = binding.out_src.get(vname)
        sample = binding.out_sample_step(vname)
        if reg is None:
            problems.append(f"output {vname!r} has no sample register")
        elif reg not in binding.segment_regs(vname, sample):
            problems.append(
                f"output {vname!r} sampled from {reg!r}, which does not "
                f"hold it at step {sample}")

    # 5. pass-through implementations --------------------------------------------------
    for (vname, dst_step, dst_reg), impl in binding.pt_impl.items():
        src_reg, fu_name, fu_port = impl
        interval = binding.interval(vname)
        src_step = interval.predecessor_step(dst_step)
        if src_step is None:
            continue  # already reported above
        if dst_reg not in binding.segment_regs(vname, dst_step):
            problems.append(
                f"pass-through into ({vname!r}, {dst_step}, {dst_reg!r}) "
                f"but the register does not hold the value there")
        if dst_reg in binding.segment_regs(vname, src_step):
            problems.append(
                f"pass-through into ({vname!r}, {dst_step}, {dst_reg!r}) "
                f"but no transfer happens (register keeps the value)")
        if src_reg not in binding.segment_regs(vname, src_step):
            problems.append(
                f"pass-through source {src_reg!r} does not hold {vname!r} "
                f"at step {src_step}")
        fu = binding.fus.get(fu_name)
        if fu is None or not fu.fu_type.can_passthrough:
            problems.append(
                f"pass-through through incapable FU {fu_name!r}")

    # 6. ledger consistency -----------------------------------------------------------
    try:
        binding.ledger.verify()
    except Exception as exc:  # noqa: BLE001 - report any ledger corruption
        problems.append(f"ledger self-check failed: {exc}")
    fresh = ConnectionLedger()
    for key in _all_site_keys(binding):
        try:
            fresh.add_events(binding._derive(key))
        except BindingError as exc:
            problems.append(f"site {key} underivable: {exc}")
    if fresh.mux_count != binding.ledger.mux_count or \
            fresh.wire_count != binding.ledger.wire_count:
        problems.append(
            f"ledger out of sync with state: mux {binding.ledger.mux_count} "
            f"vs {fresh.mux_count}, wires {binding.ledger.wire_count} vs "
            f"{fresh.wire_count}")
    live_uses = binding.ledger.use_counts()
    fresh_uses = fresh.use_counts()
    if live_uses != fresh_uses:
        # totals can agree while individual refcounts drift; report the
        # first few per-connection discrepancies explicitly
        diffs = sorted(key for key in set(live_uses) | set(fresh_uses)
                       if live_uses.get(key, 0) != fresh_uses.get(key, 0))
        for key in diffs[:4]:
            problems.append(
                f"connection {key} refcount {live_uses.get(key, 0)} in "
                f"ledger but {fresh_uses.get(key, 0)} derived from state")

    return problems


def _all_site_keys(binding):
    for op_name in binding.graph.ops:
        yield ("read", op_name)
    for vname in binding.graph.values:
        yield ("write", vname)
        yield ("out", vname)
        if not binding.port_captured(vname):
            for step in binding.interval(vname).steps[1:]:
                yield ("xfer", vname, step)


def assert_legal(binding: "Binding") -> None:
    """Raise :class:`BindingError` listing all violations, if any."""
    problems = check_binding(binding)
    if problems:
        raise BindingError(
            f"binding fails {len(problems)} legality check(s):\n  "
            + "\n  ".join(problems[:20]))
