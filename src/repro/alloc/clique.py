"""Clique-partitioning register allocation (Tseng/Siewiorek style).

Builds the value compatibility graph (two values are compatible when their
lifetimes never overlap), weights edges by the interconnect they would
share if stored in one register (common producer FU, common consumer FU
ports), and greedily merges the heaviest compatible pair until no merge is
possible.  Each resulting clique becomes one register.

This is the constructive traditional-model baseline the 1980s literature
used before iterative approaches; the test-suite checks it never beats the
iteratively-improved allocators by more than noise, and the example
``examples/baseline_shootout.py`` compares all of them side by side.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import AllocationError
from repro.sched.schedule import Schedule


def _share_weight(schedule: Schedule, v1: str, v2: str,
                  op_fu: Optional[Dict[str, str]]) -> float:
    """Interconnect sharing potential of storing v1 and v2 together."""
    if op_fu is None:
        return 1.0
    graph = schedule.graph
    weight = 0.0
    val1, val2 = graph.values[v1], graph.values[v2]
    prod1 = op_fu.get(val1.producer) if val1.producer else None
    prod2 = op_fu.get(val2.producer) if val2.producer else None
    if prod1 is not None and prod1 == prod2:
        weight += 2.0  # one register-input connection instead of two
    sinks1 = {(op_fu.get(c), p) for c, p in val1.consumers}
    sinks2 = {(op_fu.get(c), p) for c, p in val2.consumers}
    weight += len({s for s in sinks1 & sinks2 if s[0] is not None})
    return weight


def clique_partition_registers(schedule: Schedule,
                               op_fu: Optional[Dict[str, str]] = None,
                               register_names: Optional[Sequence[str]] = None
                               ) -> Dict[str, str]:
    """Monolithic value -> register map via greedy clique partitioning."""
    lifetimes = schedule.lifetimes
    length = schedule.length
    values = [v for v in sorted(schedule.graph.values)
              if lifetimes.interval(v).birth < length]
    steps = {v: set(lifetimes.interval(v).steps) for v in values}

    cliques: List[List[str]] = [[v] for v in values]
    clique_steps: List[set] = [set(steps[v]) for v in values]

    def compatible(i: int, j: int) -> bool:
        return not clique_steps[i] & clique_steps[j]

    def weight(i: int, j: int) -> float:
        return sum(_share_weight(schedule, a, b, op_fu)
                   for a in cliques[i] for b in cliques[j])

    while True:
        best: Optional[Tuple[float, int, int]] = None
        for i in range(len(cliques)):
            for j in range(i + 1, len(cliques)):
                if not compatible(i, j):
                    continue
                w = weight(i, j)
                if best is None or w > best[0]:
                    best = (w, i, j)
        if best is None:
            break
        _w, i, j = best
        cliques[i].extend(cliques[j])
        clique_steps[i] |= clique_steps[j]
        del cliques[j]
        del clique_steps[j]

    if register_names is None:
        register_names = [f"R{i}" for i in range(len(cliques))]
    if len(cliques) > len(register_names):
        raise AllocationError(
            f"clique partitioning needs {len(cliques)} registers, only "
            f"{len(register_names)} provided")
    assignment: Dict[str, str] = {}
    for idx, clique in enumerate(sorted(cliques, key=lambda c: c[0])):
        for value in clique:
            assignment[value] = register_names[idx]
    return assignment
