"""A small textual CDFG netlist format (``.cdfg``).

A line-oriented format in the spirit of the 1990s HLS benchmark
distributions, convenient for writing behaviours by hand::

    # comments start with '#'
    graph ewf cyclic
    input  inp
    loop   sv1 sv2
    output outp
    op a1 add inp sv1 -> t1       # operands may be value names ...
    op m1 mul t1 #0.5 -> t2       # ... or '#'-prefixed constants
    op a2 add t2 sv2 -> outp
    op a3 add t1 t2 -> sv1
    op a4 add t2 t2 -> sv2

:func:`parse_cdfg` turns such text into a validated CDFG;
:func:`format_cdfg` writes one back out (round-trip stable).
"""

from __future__ import annotations

from typing import List

from repro.errors import CDFGError
from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG
from repro.cdfg.nodes import Const
from repro.cdfg.validate import validate_cdfg


def _strip_comment(line: str) -> str:
    """Drop a trailing comment.

    ``#`` introduces a comment unless it is immediately followed by a
    numeric character — ``#0.5``-style tokens are constants.
    """
    for index, char in enumerate(line):
        if char != "#":
            continue
        nxt = line[index + 1] if index + 1 < len(line) else ""
        if nxt and (nxt.isdigit() or nxt in ".-+"):
            continue  # a constant operand, not a comment
        if index == 0 or line[index - 1].isspace():
            return line[:index]
    return line


def parse_cdfg(text: str) -> CDFG:
    """Parse the textual netlist format into a validated CDFG."""
    builder = None
    pending: List[tuple] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0]

        if keyword == "graph":
            if builder is not None:
                raise CDFGError(f"line {lineno}: duplicate 'graph' line")
            if len(tokens) < 2:
                raise CDFGError(f"line {lineno}: 'graph' needs a name")
            cyclic = len(tokens) > 2 and tokens[2] == "cyclic"
            builder = CDFGBuilder(tokens[1], cyclic=cyclic)
            continue
        if builder is None:
            raise CDFGError(
                f"line {lineno}: file must start with a 'graph' line")

        if keyword == "input":
            for name in tokens[1:]:
                builder.input(name)
        elif keyword == "loop":
            for name in tokens[1:]:
                builder.loop_value(name)
        elif keyword == "output":
            for name in tokens[1:]:
                builder.output(name)
        elif keyword == "op":
            if "->" not in tokens:
                raise CDFGError(
                    f"line {lineno}: 'op' line needs '-> result'")
            arrow = tokens.index("->")
            if arrow < 3 or arrow + 2 != len(tokens):
                raise CDFGError(f"line {lineno}: malformed 'op' line")
            name, kind = tokens[1], tokens[2]
            operands = []
            for token in tokens[3:arrow]:
                if token.startswith("#"):
                    try:
                        operands.append(float(token[1:]))
                    except ValueError:
                        raise CDFGError(
                            f"line {lineno}: bad constant {token!r}") \
                            from None
                else:
                    operands.append(token)
            builder.op(name, kind, operands, tokens[arrow + 1])
        else:
            raise CDFGError(
                f"line {lineno}: unknown keyword {keyword!r}")

    if builder is None:
        raise CDFGError("empty CDFG text")
    graph = builder.build()
    validate_cdfg(graph)
    return graph


def format_cdfg(graph: CDFG) -> str:
    """Write a CDFG in the textual netlist format."""
    lines = [f"graph {graph.name}{' cyclic' if graph.cyclic else ''}"]
    if graph.inputs:
        lines.append("input  " + " ".join(graph.inputs))
    if graph.loop_values:
        lines.append("loop   " + " ".join(graph.loop_values))
    if graph.outputs:
        lines.append("output " + " ".join(graph.outputs))
    for op_name in graph.topo_order():
        op = graph.ops[op_name]
        operands = []
        for operand in op.operands:
            if isinstance(operand, Const):
                operands.append(f"#{operand.value:g}")
            else:
                operands.append(operand.name)
        lines.append(f"op {op.name} {op.kind} {' '.join(operands)} "
                     f"-> {op.result}")
    return "\n".join(lines) + "\n"
