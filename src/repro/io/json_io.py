"""JSON (de)serialization of CDFGs, schedules and bindings.

Lets users persist and exchange every artifact of the flow:

* :func:`cdfg_to_json` / :func:`cdfg_from_json` — the behaviour;
* :func:`schedule_to_json` / :func:`schedule_from_json` — op start steps
  plus the hardware assumptions (FU types are reconstructed exactly);
* :func:`binding_to_json` / :func:`binding_from_json` — a complete
  allocation (op->FU, segments, copies, read sources, pass-throughs),
  restored onto a freshly rebuilt Binding and re-validated.

Round-tripping is lossless for everything the allocator decides; the
test-suite asserts cost equality and simulation equivalence after a
round-trip.

Every encoding here is **canonical**: dictionaries are emitted with sorted
keys and node/edge lists in a content-derived order (operations and values
sorted by name, never by construction order), so two semantically equal
objects serialize to byte-identical JSON.  ``repro.service`` relies on this
to derive content-addressed cache keys; :func:`canonical_dumps` is the
shared minified encoder it hashes.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.timing.delays import DelaySpec

from repro.errors import ReproError
from repro.cdfg.graph import CDFG
from repro.cdfg.nodes import Const, Operation, Value, ValueRef
from repro.datapath.cost import CostWeights
from repro.datapath.units import FU, FUType, HardwareSpec, Register
from repro.sched.schedule import Schedule
from repro.core.binding import Binding
from repro.core.improve import ImproveStats

FORMAT_VERSION = 1


class SerializationError(ReproError):
    """Malformed or version-incompatible serialized data."""


def canonical_dumps(payload: Any) -> str:
    """The canonical minified JSON encoding (sorted keys, no whitespace).

    This is the byte stream ``repro.service`` hashes into cache keys, so
    any change to it invalidates every previously cached allocation.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ------------------------------------------------------------------- CDFG

def cdfg_to_dict(graph: CDFG) -> Dict[str, Any]:
    """Canonical JSON-able encoding of a CDFG.

    Operations and values are listed in name order regardless of the order
    they were built in, so equal graphs encode identically.
    """
    ops = []
    for name in sorted(graph.ops):
        op = graph.ops[name]
        operands = []
        for operand in op.operands:
            if isinstance(operand, Const):
                operands.append({"const": operand.value,
                                 "label": operand.label})
            else:
                operands.append({"value": operand.name})
        ops.append({"name": op.name, "kind": op.kind,
                    "operands": operands, "result": op.result})
    values = []
    for name in sorted(graph.values):
        v = graph.values[name]
        values.append({
            "name": v.name,
            "is_input": v.is_input,
            "is_output": v.is_output,
            "loop_carried": v.loop_carried,
            "arrival_step": v.arrival_step,
        })
    return {
        "format": FORMAT_VERSION,
        "type": "cdfg",
        "name": graph.name,
        "cyclic": graph.cyclic,
        "operations": ops,
        "values": values,
    }


def cdfg_to_json(graph: CDFG) -> str:
    """Serialize a CDFG to a canonical JSON string."""
    return json.dumps(cdfg_to_dict(graph), indent=2, sort_keys=True)


def cdfg_from_json(text: str) -> CDFG:
    """Rebuild a CDFG from :func:`cdfg_to_json` output."""
    data = _load(text, "cdfg")
    ops = []
    for entry in data["operations"]:
        operands = []
        for spec in entry["operands"]:
            if "const" in spec:
                operands.append(Const(spec["const"], spec.get("label")))
            else:
                operands.append(ValueRef(spec["value"]))
        ops.append(Operation(entry["name"], entry["kind"], tuple(operands),
                             entry["result"]))
    values = [Value(v["name"], is_input=v["is_input"],
                    is_output=v["is_output"],
                    loop_carried=v["loop_carried"],
                    arrival_step=v["arrival_step"])
              for v in data["values"]]
    return CDFG(data["name"], ops, values, cyclic=data["cyclic"])


# --------------------------------------------------------------- hardware

def spec_to_dict(spec: HardwareSpec) -> Dict[str, Any]:
    """Canonical JSON-able encoding of a hardware spec (types by name)."""
    return {"fu_types": [{
        "name": t.name, "ops": sorted(t.ops), "delay": t.delay,
        "pipelined": t.pipelined, "can_passthrough": t.can_passthrough,
        "area": t.area,
    } for _, t in sorted(spec.fu_types.items())]}


_spec_to_dict = spec_to_dict


def _spec_from_dict(data: Dict[str, Any]) -> HardwareSpec:
    return HardwareSpec([
        FUType(t["name"], frozenset(t["ops"]), t["delay"],
               pipelined=t["pipelined"],
               can_passthrough=t["can_passthrough"], area=t["area"])
        for t in data["fu_types"]])


# --------------------------------------------------------------- schedule

def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Canonical JSON-able encoding of a schedule (CDFG + spec + starts)."""
    return {
        "format": FORMAT_VERSION,
        "type": "schedule",
        "cdfg": cdfg_to_dict(schedule.graph),
        "spec": spec_to_dict(schedule.spec),
        "length": schedule.length,
        "label": schedule.label,
        "start": dict(sorted(schedule.start.items())),
    }


def schedule_to_json(schedule: Schedule) -> str:
    """Serialize a schedule together with its CDFG and hardware spec."""
    return json.dumps(schedule_to_dict(schedule), indent=2, sort_keys=True)


def schedule_from_json(text: str) -> Schedule:
    data = _load(text, "schedule")
    graph = cdfg_from_json(json.dumps(data["cdfg"]))
    spec = _spec_from_dict(data["spec"])
    return Schedule(graph, spec, data["length"], data["start"],
                    label=data["label"])


# ---------------------------------------------------------------- binding

def binding_to_dict(binding: Binding) -> Dict[str, Any]:
    """Canonical JSON-able encoding of a complete allocation."""
    weights: Dict[str, float] = {
        "fu": binding.weights.fu,
        "register": binding.weights.register,
        "mux": binding.weights.mux,
        "wire": binding.weights.wire,
    }
    # omitted when zero so pre-timing documents stay byte-identical
    if binding.weights.latency:
        weights["latency"] = binding.weights.latency
    return {
        "format": FORMAT_VERSION,
        "type": "binding",
        "schedule": schedule_to_dict(binding.schedule),
        "fus": [{"name": f.name, "type": f.type_name}
                for _, f in sorted(binding.fus.items())],
        "registers": sorted(binding.regs),
        "weights": weights,
        "op_fu": dict(sorted(binding.op_fu.items())),
        "op_swap": {k: v for k, v in sorted(binding.op_swap.items()) if v},
        "placements": [
            {"value": value, "step": step, "regs": list(regs)}
            for (value, step), regs in sorted(binding.placements.items())],
        "read_src": [
            {"op": op, "port": port, "reg": reg}
            for (op, port), reg in sorted(binding.read_src.items())],
        "out_src": dict(sorted(binding.out_src.items())),
        "passthroughs": [
            {"value": v, "dst_step": s, "dst_reg": r,
             "src_reg": impl[0], "fu": impl[1], "port": impl[2]}
            for (v, s, r), impl in sorted(binding.pt_impl.items())],
    }


def binding_to_json(binding: Binding) -> str:
    """Serialize a complete allocation."""
    return json.dumps(binding_to_dict(binding), indent=2, sort_keys=True)


def binding_from_json(text: str) -> Binding:
    """Rebuild (and re-validate) a binding from JSON."""
    data = _load(text, "binding")
    schedule = schedule_from_json(json.dumps(data["schedule"]))
    spec = schedule.spec
    fus = [FU(f["name"], spec.type_named(f["type"])) for f in data["fus"]]
    regs = [Register(name) for name in data["registers"]]
    w = data["weights"]
    binding = Binding(schedule, fus, regs,
                      weights=CostWeights(fu=w["fu"],
                                          register=w["register"],
                                          mux=w["mux"], wire=w["wire"],
                                          latency=w.get("latency", 0.0)))
    for op, fu in data["op_fu"].items():
        binding.set_op_fu(op, fu)
    for entry in data["placements"]:
        binding.set_placements(entry["value"], entry["step"],
                               tuple(entry["regs"]))
    for op, flag in data["op_swap"].items():
        binding.set_op_swap(op, flag)
    for entry in data["read_src"]:
        binding.set_read_src(entry["op"], entry["port"], entry["reg"])
    for value, reg in data["out_src"].items():
        binding.set_out_src(value, reg)
    for entry in data["passthroughs"]:
        binding.set_pt(entry["value"], entry["dst_step"], entry["dst_reg"],
                       (entry["src_reg"], entry["fu"], entry["port"]))
    binding.flush()
    return binding


# ------------------------------------------------------------ delay spec

def delay_spec_to_json(spec: "DelaySpec") -> str:
    """Serialize a timing :class:`~repro.timing.delays.DelaySpec`."""
    from repro.timing.delays import delay_spec_to_dict

    payload = delay_spec_to_dict(spec)
    payload["format"] = FORMAT_VERSION
    payload["type"] = "delay_spec"
    return json.dumps(payload, indent=2, sort_keys=True)


def delay_spec_from_json(text: str) -> "DelaySpec":
    """Rebuild a :class:`~repro.timing.delays.DelaySpec` from JSON."""
    from repro.timing.delays import delay_spec_from_dict

    data = _load(text, "delay_spec")
    data.pop("format")
    data.pop("type")
    return delay_spec_from_dict(data)


# ---------------------------------------------------------- search stats

def stats_to_json(all_stats: List[ImproveStats]) -> str:
    """Serialize the telemetry of one or more improvement runs."""
    return json.dumps({
        "format": FORMAT_VERSION,
        "type": "improve_stats",
        "runs": [stats.to_dict() for stats in all_stats],
    }, indent=2, sort_keys=True)


def stats_from_json(text: str) -> List[ImproveStats]:
    """Rebuild the :class:`ImproveStats` list from :func:`stats_to_json`."""
    data = _load(text, "improve_stats")
    return [ImproveStats.from_dict(entry) for entry in data["runs"]]


# ------------------------------------------------------------------ utils

def _load(text: str, expected_type: str) -> Dict[str, Any]:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise SerializationError("top-level JSON value must be an object")
    if data.get("format") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {data.get('format')!r} "
            f"(expected {FORMAT_VERSION})")
    if data.get("type") != expected_type:
        raise SerializationError(
            f"expected a {expected_type!r} document, got "
            f"{data.get('type')!r}")
    return data
