"""Persistence and frontends: JSON round-trips, textual netlists, kernels."""

from repro.io.json_io import (SerializationError, binding_from_json,
                              binding_to_dict, binding_to_json,
                              canonical_dumps, cdfg_from_json, cdfg_to_dict,
                              cdfg_to_json, delay_spec_from_json,
                              delay_spec_to_json, schedule_from_json,
                              schedule_to_dict, schedule_to_json,
                              spec_to_dict, stats_from_json, stats_to_json)
from repro.io.textual import format_cdfg, parse_cdfg
from repro.io.expr import cdfg_from_assignments

__all__ = [
    "SerializationError", "binding_from_json", "binding_to_dict",
    "binding_to_json", "canonical_dumps", "cdfg_from_assignments",
    "cdfg_from_json", "cdfg_to_dict", "cdfg_to_json", "delay_spec_from_json",
    "delay_spec_to_json", "format_cdfg", "parse_cdfg", "schedule_from_json",
    "schedule_to_dict", "schedule_to_json", "spec_to_dict",
    "stats_from_json", "stats_to_json",
]
