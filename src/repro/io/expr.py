"""Expression-language frontend: build CDFGs from assignment statements.

A miniature behavioural frontend so users can write kernels as arithmetic
instead of explicit operation lists::

    from repro.io.expr import cdfg_from_assignments
    graph = cdfg_from_assignments("biquad", '''
        w  = x - 0.1716 * w2
        y  = 0.2929 * (w + w2) + 0.5858 * w1
        w2 = w1
        w1 = w
    ''', inputs=["x"], outputs=["y"], state=["w1", "w2"])

Supported: ``+ - * /``, unary minus, parentheses, float literals, and
named values.  Each assignment's right-hand side is decomposed into
two-operand CDFG operations (one per arithmetic node); assigning a bare
name to a state value becomes an explicit ``pass`` operation (a delay
element).  State values (``state=[...]``) are loop-carried: reads refer to
the previous iteration.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence

from repro.errors import CDFGError
from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG
from repro.cdfg.validate import validate_cdfg

_BINOPS = {ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul", ast.Div: "div"}


class _Lowering:
    """Lowers python-ast expressions into builder operations."""

    def __init__(self, builder: CDFGBuilder, known: set) -> None:
        self.builder = builder
        self.known = known
        self.counter = 0

    def fresh(self, hint: str) -> str:
        self.counter += 1
        return f"_{hint}{self.counter}"

    def lower(self, node: ast.expr, target: Optional[str] = None):
        """Return an operand spec (value name or float) for *node*.

        When *target* is given, the node's result is produced into that
        value name (used for the top of each assignment).
        """
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, (int, float)) or \
                    isinstance(node.value, bool):
                raise CDFGError(f"unsupported literal {node.value!r}")
            value = float(node.value)
            if target is None:
                return value
            raise CDFGError("cannot assign a bare constant to a value; "
                            "wrap it, e.g. 'y = 0 + 1.5'")
        if isinstance(node, ast.Name):
            if node.id not in self.known:
                raise CDFGError(f"unknown value {node.id!r}")
            if target is None:
                return node.id
            # explicit delay/copy: target = name
            self.builder.op(self.fresh("d"), "pass", [node.id], target)
            self.known.add(target)
            return target
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self.lower(node.operand)
            if isinstance(inner, float):
                result = -inner
                if target is None:
                    return result
                raise CDFGError("cannot assign a bare constant")
            name = target or self.fresh("n")
            self.builder.op(self.fresh("neg"), "mul", [-1.0, inner], name)
            self.known.add(name)
            return name
        if isinstance(node, ast.BinOp):
            kind = _BINOPS.get(type(node.op))
            if kind is None:
                raise CDFGError(
                    f"unsupported operator {type(node.op).__name__}")
            left = self.lower(node.left)
            right = self.lower(node.right)
            if isinstance(left, float) and isinstance(right, float):
                folded = {"add": left + right, "sub": left - right,
                          "mul": left * right,
                          "div": left / right}[kind]
                if target is None:
                    return folded
                raise CDFGError("constant-only assignment not supported")
            name = target or self.fresh("t")
            self.builder.op(self.fresh(kind[0]), kind, [left, right], name)
            self.known.add(name)
            return name
        raise CDFGError(
            f"unsupported expression node {type(node).__name__}")


def cdfg_from_assignments(name: str, source: str,
                          inputs: Sequence[str],
                          outputs: Sequence[str],
                          state: Sequence[str] = ()) -> CDFG:
    """Build a CDFG from newline-separated assignment statements."""
    try:
        module = ast.parse(source, mode="exec")
    except SyntaxError as exc:
        raise CDFGError(f"syntax error in kernel source: {exc}") from None

    cyclic = bool(state)
    builder = CDFGBuilder(name, cyclic=cyclic)
    known = set()
    for value in inputs:
        builder.input(value)
        known.add(value)
    for value in state:
        builder.loop_value(value)
        known.add(value)

    assigned = set()
    lowering = _Lowering(builder, known)
    for stmt in module.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1 or \
                not isinstance(stmt.targets[0], ast.Name):
            raise CDFGError(
                "only simple single-target assignments are supported")
        target = stmt.targets[0].id
        if target in inputs:
            raise CDFGError(f"cannot assign to input {target!r}")
        if target in assigned:
            raise CDFGError(f"value {target!r} assigned twice (the kernel "
                            f"language is single-assignment)")
        assigned.add(target)
        lowering.lower(stmt.value, target=target)

    for value in outputs:
        builder.output(value)
    graph = builder.build()
    validate_cdfg(graph)
    return graph
