"""repro — reproduction of *Data Path Allocation using an Extended Binding
Model* (Krishnamoorthy & Nestor, DAC 1992).

The package implements the SALSA extended binding model for high-level
synthesis data-path allocation: value segments, value copies, and
functional-unit pass-throughs, explored with randomized iterative
improvement, plus every substrate the paper depends on (CDFG handling,
scheduling, a point-to-point interconnect cost model, traditional-model
baseline allocators, benchmark CDFGs, and a cycle-accurate datapath
simulator used to verify allocations end-to-end).

Quickstart
----------
>>> from repro import bench, sched, core
>>> graph = bench.elliptic_wave_filter()
>>> schedule = sched.schedule_graph(graph, sched.HardwareSpec.non_pipelined(), 17)
>>> result = core.SalsaAllocator(seed=1).allocate(graph, schedule)
>>> result.cost.mux_count >= 0
True
"""

__version__ = "1.0.0"

from repro import errors

__all__ = ["errors", "__version__"]
