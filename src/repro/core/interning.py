"""Dense-id interning for the array-backed binding state.

The hot binding state (:mod:`repro.core.binding`) keys its decision dicts
by names and tuples — ``op -> fu``, ``(value, step) -> (regs, ...)`` — which
makes snapshots and diffs cost a hash lookup and a tuple compare per key.
This module supplies the id side of the dual representation:

* every op, FU, register, value segment, consumer read site and output
  sample site of a problem is interned to a dense integer id **at
  construction**, in sorted-name order, so the same schedule always yields
  the same ids no matter the search history (ids are portable between
  bindings of the same problem, including across process boundaries);
* placement tuples — the ordered register copies of one segment — are
  interned per binding into an append-only :class:`PlacementPool`, so the
  hot segment column stores one small int per segment instead of a tuple
  of register names.

:class:`BindingTables` bundles the six id tables plus the pool; a
:class:`~repro.core.arraystate.CompactState` snapshot carries a reference
to the tables it was encoded against, and
:meth:`BindingTables.same_problem` decides whether a snapshot's columns
can be interpreted index-for-index by another binding.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

#: a value segment: (value name, control step)
SegKey = Tuple[str, int]
#: a consumer read site: (op name, input port)
ReadKey = Tuple[str, int]


class PlacementPool:
    """Append-only intern table for placement tuples.

    Id 0 is always the empty placement ``()`` (segment not placed), so a
    zeroed segment column means "no placements" without a lookup.  Ids are
    handed out in first-seen order and never reused; a pool therefore only
    grows, and every snapshot that references it stays decodable for the
    life of the binding.
    """

    __slots__ = ("ids", "tuples")

    def __init__(self) -> None:
        self.tuples: List[Tuple[str, ...]] = [()]
        self.ids: Dict[Tuple[str, ...], int] = {(): 0}

    def intern(self, regs: Tuple[str, ...]) -> int:
        """The dense id of *regs*, allocating one on first sight."""
        pid = self.ids.get(regs)
        if pid is None:
            pid = len(self.tuples)
            self.ids[regs] = pid
            self.tuples.append(regs)
        return pid

    def __len__(self) -> int:
        return len(self.tuples)

    def __repr__(self) -> str:
        return f"PlacementPool({len(self.tuples)} tuples)"


class BindingTables:
    """The dense-id tables of one allocation problem.

    Built once per :class:`~repro.core.binding.Binding` from sorted key
    lists, so two bindings of the same schedule/hardware always agree on
    every id.  The placement pool is the only history-dependent member;
    snapshot columns store pool ids, and cross-binding consumers decode
    them through the pool the snapshot was encoded against.
    """

    __slots__ = ("op_names", "op_ids", "fu_names", "fu_ids",
                 "reg_names", "reg_ids", "seg_keys", "seg_ids",
                 "read_keys", "read_ids", "out_values", "out_ids", "pool")

    def __init__(self, ops: Sequence[str], fus: Sequence[str],
                 regs: Sequence[str], segs: Sequence[SegKey],
                 reads: Sequence[ReadKey], outs: Sequence[str]) -> None:
        self.op_names: Tuple[str, ...] = tuple(ops)
        self.op_ids: Dict[str, int] = _ids(self.op_names)
        self.fu_names: Tuple[str, ...] = tuple(fus)
        self.fu_ids: Dict[str, int] = _ids(self.fu_names)
        self.reg_names: Tuple[str, ...] = tuple(regs)
        self.reg_ids: Dict[str, int] = _ids(self.reg_names)
        self.seg_keys: Tuple[SegKey, ...] = tuple(segs)
        self.seg_ids: Dict[SegKey, int] = _ids(self.seg_keys)
        self.read_keys: Tuple[ReadKey, ...] = tuple(reads)
        self.read_ids: Dict[ReadKey, int] = _ids(self.read_keys)
        self.out_values: Tuple[str, ...] = tuple(outs)
        self.out_ids: Dict[str, int] = _ids(self.out_values)
        self.pool = PlacementPool()

    def same_problem(self, other: "BindingTables") -> bool:
        """True when *other* assigns every id to the same key.

        Identity short-circuits the common case (snapshot restored into
        the binding that made it); otherwise the sorted key tuples are
        compared, which holds exactly when both tables were built from
        the same schedule and hardware names.
        """
        if self is other:
            return True
        return (self.op_names == other.op_names
                and self.fu_names == other.fu_names
                and self.reg_names == other.reg_names
                and self.seg_keys == other.seg_keys
                and self.read_keys == other.read_keys
                and self.out_values == other.out_values)

    def __repr__(self) -> str:
        return (f"BindingTables(ops={len(self.op_names)}, "
                f"fus={len(self.fu_names)}, regs={len(self.reg_names)}, "
                f"segs={len(self.seg_keys)})")


def _ids(keys: Iterable) -> Dict:
    return {key: index for index, key in enumerate(keys)}
