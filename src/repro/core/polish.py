"""Deterministic local polishing of a binding.

Systematic best-improvement sweeps over the cheap exhaustive neighborhoods
of the move set: alternative FU assignments (F2), operand reversals (F3),
read-source choices, whole-value register moves (R4), value-suffix hops
(R2b), and pass-through bind/unbind (F4/F5).  Each sweep tries every
candidate, keeps any strict improvement immediately, and the polish loop
repeats until a full pass makes no progress.

Every candidate runs inside a ``begin_move``/``commit_move``/``abort_move``
journal bracket: a rejected or illegal candidate is reverted by replaying
the binding's write journal (:meth:`~repro.core.binding.Binding.abort_move`)
rather than by running undo closures plus a second flush — the same cheap
reject path the randomized engine uses.

The randomized engine (:mod:`repro.core.improve`) supplies the global
exploration; polishing collapses the search variance at the bottom of each
basin, which is what makes per-configuration comparisons between binding
models meaningful.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import BindingError
from repro.core.binding import Binding
from repro.core.moves import (MoveSet, _best_pt_choice, _direct_transfers,
                              fixup_segment, rollback)
import random


def _tie_rng(rng: Optional[random.Random]) -> random.Random:
    """Tie-breaking RNG for ``_best_pt_choice`` in deterministic sweeps.

    Always a *fresh* seeded instance when none is threaded in: a module
    -level RNG would carry state across ``polish()`` calls, making a
    binding's polish result depend on how many polishes ran earlier in
    the process (and breaking the serial-vs-parallel bit-identity of
    :mod:`repro.core.parallel`).
    """
    return rng if rng is not None else random.Random(0)


def _try(binding: Binding, current: float) -> Optional[float]:
    """Commit the open journaled mutation if it strictly improves."""
    new = binding.total_cost()
    if new < current - 1e-9:
        binding.commit_move()
        return new
    binding.abort_move()
    return None


def sweep_fu_moves(binding: Binding, current: float) -> float:
    for op_name in sorted(binding.op_fu):
        kind = binding.graph.ops[op_name].kind
        busy = binding.busy_steps(op_name)
        for fu_name in sorted(binding.fus):
            if fu_name == binding.op_fu[op_name]:
                continue
            if not binding.fus[fu_name].fu_type.supports(kind):
                continue
            if not binding.fu_free_all(fu_name, busy):
                continue
            binding.begin_move()
            binding.set_op_fu(op_name, fu_name)
            improved = _try(binding, current)
            if improved is not None:
                current = improved
    return current


def sweep_operand_swaps(binding: Binding, current: float) -> float:
    for op_name, op in sorted(binding.graph.ops.items()):
        if op.arity != 2 or not op.commutative:
            continue
        flag = not binding.op_swap.get(op_name, False)
        binding.begin_move()
        binding.set_op_swap(op_name, flag)
        improved = _try(binding, current)
        if improved is not None:
            current = improved
    return current


def sweep_read_sources(binding: Binding, current: float) -> float:
    schedule = binding.schedule
    for vname, val in sorted(binding.graph.values.items()):
        for op_name, port in val.consumers:
            step = schedule.start[op_name]
            regs = binding.segment_regs(vname, step)
            if len(regs) < 2:
                continue
            for reg in regs:
                if reg == binding.read_src.get((op_name, port)):
                    continue
                binding.begin_move()
                binding.set_read_src(op_name, port, reg)
                improved = _try(binding, current)
                if improved is not None:
                    current = improved
    return current


def sweep_value_moves(binding: Binding, current: float) -> float:
    for value in sorted(binding.graph.values):
        if binding.port_captured(value):
            continue
        steps = binding.interval(value).steps
        for reg in sorted(binding.regs):
            if not all(binding.reg_occ.get((reg, s)) in (None, value)
                       for s in steps):
                continue
            if all(binding.segment_regs(value, s) == (reg,) for s in steps):
                continue
            binding.begin_move()
            try:
                for key in [k for k in binding.pt_impl if k[0] == value]:
                    binding.set_pt(key[0], key[1], key[2], None)
                for step in steps:
                    binding.set_placements(value, step, (reg,))
                    fixup_segment(binding, value, step)
            except BindingError:
                binding.abort_move()
                continue
            improved = _try(binding, current)
            if improved is not None:
                current = improved
    return current


def sweep_segment_hops(binding: Binding, current: float,
                       rng: Optional[random.Random] = None) -> float:
    """Try every (value, cut point, target register) suffix hop."""
    rng = _tie_rng(rng)
    for value in sorted(binding.graph.values):
        if binding.port_captured(value):
            continue
        steps = binding.interval(value).steps
        if len(steps) < 2:
            continue
        for cut in range(1, len(steps)):
            run = steps[cut:]
            if any(len(binding.segment_regs(value, s)) != 1 for s in run):
                continue
            src_step = steps[cut - 1]
            cur_reg = binding.segment_regs(value, run[0])[0]
            for reg in sorted(binding.regs):
                if reg == cur_reg:
                    continue
                if not all(binding.reg_free(reg, s) for s in run):
                    continue
                binding.begin_move()
                try:
                    for step in run:
                        binding.set_placements(value, step, (reg,))
                        fixup_segment(binding, value, step)
                    if reg not in binding.segment_regs(value, src_step):
                        hop_cost = binding.total_cost()
                        impl = _best_pt_choice(binding, rng, value,
                                               run[0], reg, src_step)
                        if impl is not None:
                            # inner trial inside the open journal: revert
                            # with its own undo closure, not abort_move
                            trial = [binding.set_pt(value, run[0], reg, impl)]
                            if binding.total_cost() >= hop_cost - 1e-9:
                                rollback(trial)
                                binding.flush()
                except BindingError:
                    binding.abort_move()
                    continue
                improved = _try(binding, current)
                if improved is not None:
                    current = improved
    return current


def sweep_value_exchanges(binding: Binding, current: float) -> float:
    """Try swapping the placements of every pair of values stepwise at
    their shared live steps (exhaustive R1/R3 neighborhood)."""
    from repro.core.moves import _swap_segments

    values = [v for v in sorted(binding.graph.values)
              if not binding.port_captured(v)]
    for i, v1 in enumerate(values):
        steps1 = set(binding.interval(v1).steps)
        for v2 in values[i + 1:]:
            shared = sorted(steps1 & set(binding.interval(v2).steps))
            if not shared:
                continue
            binding.begin_move()
            undos: List = []
            try:
                for step in shared:
                    _swap_segments(binding, v1, v2, step, undos)
            except BindingError:
                binding.abort_move()
                continue
            improved = _try(binding, current)
            if improved is not None:
                current = improved
    return current


def sweep_passthroughs(binding: Binding, current: float,
                       rng: Optional[random.Random] = None) -> float:
    rng = _tie_rng(rng)
    # bind the best pass-through for every direct transfer
    for value, dst_step, dst_reg, src_step in _direct_transfers(binding):
        impl = _best_pt_choice(binding, rng, value, dst_step, dst_reg,
                               src_step)
        if impl is None:
            continue
        binding.begin_move()
        try:
            binding.set_pt(value, dst_step, dst_reg, impl)
        except BindingError:
            binding.abort_move()
            continue
        improved = _try(binding, current)
        if improved is not None:
            current = improved
    # and drop any pass-through that no longer pays for itself
    for key in sorted(binding.pt_impl):
        binding.begin_move()
        binding.set_pt(key[0], key[1], key[2], None)
        improved = _try(binding, current)
        if improved is not None:
            current = improved
    return current


def polish(binding: Binding, move_set: Optional[MoveSet] = None,
           max_rounds: int = 10) -> float:
    """Hill-climb to a local optimum; returns the final total cost.

    Fully deterministic: the tie-breaking RNG is created fresh per call,
    so polishing equal bindings gives equal results no matter how many
    polishes ran earlier in the process.
    """
    if move_set is None:
        move_set = MoveSet()
    rng = random.Random(0)
    current = binding.total_cost()
    for _ in range(max_rounds):
        before = current
        current = sweep_fu_moves(binding, current)
        if move_set.operand_swap:
            current = sweep_operand_swaps(binding, current)
        current = sweep_read_sources(binding, current)
        current = sweep_value_moves(binding, current)
        current = sweep_value_exchanges(binding, current)
        if move_set.segments:
            current = sweep_segment_hops(binding, current, rng=rng)
        if move_set.passthroughs:
            current = sweep_passthroughs(binding, current, rng=rng)
        if current >= before - 1e-9:
            break
    return current
