"""Constructive initial allocation (paper Sec. 4).

"First, a simple constructive algorithm is used to create an initial
allocation": operators are assigned to functional units on a
first-available basis; loop input/output values are assigned to registers
first (consistency across iterations is automatic in the cyclic segment
model); then values occurring in the maximum-register-demand steps; then
remaining values, preferring registers that add the least interconnect.
Segments of each value are kept in one register unless no contiguous space
exists, in which case the value is split across registers (the extended
model's fallback; with ``allow_split=False`` this raises instead, which is
the traditional model's behaviour on tight register budgets).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AllocationError
from repro.datapath.cost import CostWeights
from repro.datapath.units import FU, Register
from repro.sched.schedule import Schedule
from repro.core.binding import Binding


def bind_ops_first_available(binding: Binding) -> None:
    """Assign operators to FUs first-available in control-step order."""
    schedule = binding.schedule
    order = sorted(binding.graph.ops,
                   key=lambda n: (schedule.start[n], n))
    for op_name in order:
        op = binding.graph.ops[op_name]
        fu_type = binding.spec.type_for_kind(op.kind)
        busy = schedule.busy_steps(op_name)
        for fu_name in binding.fus_of_type(fu_type.name):
            if binding.fu_free_all(fu_name, busy):
                binding.set_op_fu(op_name, fu_name)
                break
        else:
            raise AllocationError(
                f"no free {fu_type.name!r} unit for {op_name!r} at steps "
                f"{busy}; provide at least {schedule.min_fus()} units")


def _placement_order(binding: Binding) -> List[str]:
    """Paper order: loop values, then max-demand-step values, then rest."""
    graph = binding.graph
    demand = binding.lifetimes.register_demand()
    max_demand = max(demand) if demand else 0
    hot_steps = {s for s, d in enumerate(demand) if d == max_demand}

    loop_vals, hot_vals, rest = [], [], []
    for name in sorted(graph.values):
        if binding.port_captured(name):
            continue
        interval = binding.interval(name)
        if graph.values[name].loop_carried:
            loop_vals.append(name)
        elif any(step in hot_steps for step in interval.steps):
            hot_vals.append(name)
        else:
            rest.append(name)
    key = lambda v: (-binding.interval(v).length, v)
    return sorted(loop_vals, key=key) + sorted(hot_vals, key=key) + \
        sorted(rest, key=key)


def _interconnect_score(binding: Binding, value: str, reg: str) -> int:
    """New connections a contiguous placement of *value* in *reg* adds.

    Approximates the paper's "bound to registers in a way that attempts to
    avoid adding more interconnections": counts how many of the would-be
    (source, sink) pairs do not exist in the ledger yet.
    """
    from repro.datapath.interconnect import fu_in, fu_out, in_port, reg_in, \
        reg_out

    graph = binding.graph
    val = graph.values[value]
    pairs = []
    if val.is_input:
        pairs.append((in_port(value), reg_in(reg)))
    elif val.producer is not None:
        fu = binding.op_fu.get(val.producer)
        if fu is not None:
            pairs.append((fu_out(fu), reg_in(reg)))
    for op_name, port in val.consumers:
        fu = binding.op_fu.get(op_name)
        if fu is None:
            continue
        op = graph.ops[op_name]
        eff = port if op.arity != 2 else port  # no swaps yet at this stage
        pairs.append((reg_out(reg), fu_in(fu, eff)))
    return sum(1 for src, snk in pairs if binding.ledger.uses(src, snk) == 0)


def place_values(binding: Binding, allow_split: bool = True) -> None:
    """Assign every value's segments to registers (contiguous if possible)."""
    binding.flush()  # make op-read/write connections visible to the scorer
    reg_names = sorted(binding.regs)
    for value in _placement_order(binding):
        interval = binding.interval(value)
        steps = interval.steps
        candidates = [r for r in reg_names
                      if all(binding.reg_free(r, s) for s in steps)]
        if candidates:
            best = min(candidates,
                       key=lambda r: (_interconnect_score(binding, value, r),
                                      r))
            for step in steps:
                binding.set_placements(value, step, (best,))
            binding.flush()
            continue
        if not allow_split:
            raise AllocationError(
                f"value {value!r} does not fit contiguously in any register "
                f"(traditional binding model, {len(reg_names)} registers)")
        # split: walk the lifetime, keeping the current register as long as
        # it stays free, hopping to the register free for the longest run
        current: Optional[str] = None
        for index, step in enumerate(steps):
            if current is not None and binding.reg_free(current, step):
                binding.set_placements(value, step, (current,))
                continue
            best_reg, best_run = None, -1
            for r in reg_names:
                if not binding.reg_free(r, step):
                    continue
                run = 0
                for future in steps[index:]:
                    if binding.reg_free(r, future):
                        run += 1
                    else:
                        break
                if run > best_run:
                    best_reg, best_run = r, run
            if best_reg is None:
                raise AllocationError(
                    f"no register free for {value!r} at step {step}; "
                    f"register demand exceeds the {len(reg_names)} provided")
            binding.set_placements(value, step, (best_reg,))
            current = best_reg
    binding.flush()


def wire_reads(binding: Binding) -> None:
    """Point every consumer/output at the primary copy of its operand."""
    graph = binding.graph
    schedule = binding.schedule
    for vname, val in graph.values.items():
        if binding.port_captured(vname):
            continue
        for op_name, port in val.consumers:
            step = schedule.start[op_name]
            regs = binding.segment_regs(vname, step)
            if not regs:
                raise AllocationError(
                    f"value {vname!r} unplaced at step {step} but read by "
                    f"{op_name!r}")
            binding.set_read_src(op_name, port, regs[0])
        if val.is_output:
            sample = binding.out_sample_step(vname)
            regs = binding.segment_regs(vname, sample)
            if not regs:
                raise AllocationError(
                    f"output {vname!r} unplaced at its sample step {sample}")
            binding.set_out_src(vname, regs[0])
    binding.flush()


def initial_allocation(schedule: Schedule, fus: Sequence[FU],
                       registers: Sequence[Register],
                       weights: CostWeights = CostWeights(),
                       allow_split: bool = True) -> Binding:
    """Build a complete legal starting binding for iterative improvement."""
    binding = Binding(schedule, fus, registers, weights=weights)
    bind_ops_first_available(binding)
    place_values(binding, allow_split=allow_split)
    wire_reads(binding)
    return binding
