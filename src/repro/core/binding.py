"""The SALSA extended binding state.

A :class:`Binding` captures everything the paper's allocator decides
(Sec. 2):

* ``op_fu`` / ``op_swap`` — operator-to-functional-unit assignment and
  operand-order reversal (moves F1–F3);
* ``placements`` — for every value **segment** ``(value, step)`` the
  ordered tuple of registers holding it; more than one register means live
  copies created by *value split* (moves R1–R6).  Index 0 is the primary
  copy (the default transfer source);
* ``read_src`` — which register copy each consumer port reads;
* ``out_src`` — which register the primary-output port samples;
* ``pt_impl`` — transfers implemented as functional-unit *pass-throughs*
  instead of direct register-to-register connections (moves F4/F5).

Derived state (register/FU occupancy, the point-to-point connection ledger
and its equivalent-2-1-mux total) is maintained incrementally: every
primitive mutation returns an undo closure and marks the affected
connection *sites* dirty; :meth:`Binding.flush` re-derives exactly the
dirty sites.  The iterative-improvement engine applies a move as a list of
primitives, flushes, inspects the cost, and either keeps the move or rolls
the primitives back.

Timing conventions are those of DESIGN.md Sec. 3; in particular a transfer
into the segment at step ``t'`` happens during the preceding live step
``t`` (the pass-through FU must be idle at ``t``), and values born past the
last control step of an acyclic schedule are *port-captured*: they go
straight from the producing FU to the output port and never occupy a
register.
"""

from __future__ import annotations

from array import array
from collections import Counter
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from repro.errors import BindingError
from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import LiveInterval
from repro.core.arraystate import CompactState, DerivedSnapshot
from repro.core.interning import BindingTables
from repro.datapath.cost import CostBreakdown, CostWeights, weighted_total
from repro.datapath.interconnect import (ConnectionLedger, fu_in, fu_out,
                                         in_port, out_port, reg_in, reg_out)
from repro.datapath.units import FU, Register
from repro.sched.schedule import Schedule

Undo = Callable[[], None]
SiteKey = Tuple
PtImpl = Tuple[str, str, int]  # (src_reg, fu, fu_port)

#: shared empty event list for absent sites (never mutated)
_NO_EVENTS: List[Tuple] = []

#: sentinel marking "key was absent" in the raw write journal
_ABSENT = object()


class Binding:
    """Mutable binding of a scheduled CDFG onto FUs and registers."""

    def __init__(self, schedule: Schedule, fus: Sequence[FU],
                 registers: Sequence[Register],
                 weights: CostWeights = CostWeights()) -> None:
        self.schedule = schedule
        self.graph: CDFG = schedule.graph
        self.spec = schedule.spec
        self.length = schedule.length
        self.lifetimes = schedule.lifetimes
        self.weights = weights

        self.fus: Dict[str, FU] = {}
        for fu in fus:
            if fu.name in self.fus:
                raise BindingError(f"duplicate FU name {fu.name!r}")
            self.fus[fu.name] = fu
        self.regs: Dict[str, Register] = {}
        for reg in registers:
            if reg.name in self.regs:
                raise BindingError(f"duplicate register name {reg.name!r}")
            self.regs[reg.name] = reg

        # raw decision state ------------------------------------------------
        self.op_fu: Dict[str, str] = {}
        self.op_swap: Dict[str, bool] = {}
        self.placements: Dict[Tuple[str, int], Tuple[str, ...]] = {}
        self.read_src: Dict[Tuple[str, int], str] = {}
        self.out_src: Dict[str, str] = {}
        self.pt_impl: Dict[Tuple[str, int, str], PtImpl] = {}

        # derived occupancy ---------------------------------------------------
        self.reg_occ: Dict[Tuple[str, int], str] = {}
        self.fu_tokens: Dict[Tuple[str, int], Tuple] = {}
        self._fu_load: Counter = Counter()   # fu -> #tokens
        self._reg_load: Counter = Counter()  # reg -> #segments held

        # incremental use counters, updated at 0<->1 load transitions so the
        # weighted total (:meth:`total_cost`) is O(1) per move; the sanitizer
        # cross-checks them against :meth:`cost_from_scratch`
        self._fu_used_count = 0
        self._reg_used_count = 0
        self._fu_used_by_type: Dict[str, int] = {}
        self._fu_used_area = 0.0
        self._type_area: Dict[str, float] = {}
        for fu in self.fus.values():
            area = fu.fu_type.area
            known = self._type_area.get(fu.type_name)
            if known is not None and known != area:
                raise BindingError(
                    f"FU type {fu.type_name!r} has conflicting areas "
                    f"{known} and {area}")
            self._type_area[fu.type_name] = area

        self.ledger = ConnectionLedger()
        self._site_events: Dict[SiteKey, List[Tuple]] = {}
        self._dirty: Set[SiteKey] = set()
        #: when journaling (:meth:`begin_move`), the pre-move event list of
        #: every site :meth:`flush` has changed since the journal started
        self._journal: Optional[Dict[SiteKey, List[Tuple]]] = None
        #: write log of raw/occupancy mutations since :meth:`begin_move` —
        #: ``(container, key, old_value_or_ABSENT)`` in write order, where
        #: the container is a decision/occupancy dict or a flat array
        #: column (arrays replay through the same ``container[key] = old``
        #: branch; their old value is never ``_ABSENT``)
        self._raw_journal: Optional[List[Tuple]] = None
        self._counter_snap: Tuple[int, int, float] = (0, 0, 0.0)

        # static lookups -------------------------------------------------------
        self._reads_at: Dict[Tuple[str, int], List[Tuple[str, int]]] = {}
        for vname, val in self.graph.values.items():
            for op_name, port in val.consumers:
                step = schedule.start[op_name]
                self._reads_at.setdefault((vname, step), []).append(
                    (op_name, port))
        # per-value interval / liveness caches: the hot loop resolves these
        # hundreds of times per move, so they are plain dict lookups here
        self._interval: Dict[str, LiveInterval] = dict(
            self.lifetimes.intervals)
        self._port_captured: Set[str] = {
            v for v, iv in self._interval.items() if iv.birth >= self.length}
        self._busy_steps: Dict[str, Tuple[int, ...]] = {
            op: schedule.busy_steps(op) for op in self.graph.ops}
        self._succ_step: Dict[Tuple[str, int], Optional[int]] = {}
        self._pred_step: Dict[Tuple[str, int], Optional[int]] = {}
        for vname, iv in self._interval.items():
            steps = iv.steps
            last = len(steps) - 1
            for idx, step in enumerate(steps):
                self._succ_step[(vname, step)] = \
                    steps[idx + 1] if idx < last else None
                self._pred_step[(vname, step)] = \
                    steps[idx - 1] if idx > 0 else None
        self._live_pairs: Set[Tuple[str, int]] = {
            pair for pair in self._succ_step
            if pair[0] not in self._port_captured}
        #: (value, birth) pairs at which the output port samples a register
        self._out_sample_sites: Set[Tuple[str, int]] = {
            (v, self._interval[v].birth)
            for v, val in self.graph.values.items()
            if val.is_output and v not in self._port_captured}
        #: values eligible for register moves, sorted (static per schedule)
        self.movable_values: Tuple[str, ...] = tuple(
            v for v in sorted(self.graph.values)
            if v not in self._port_captured)
        #: movable values with at least two live steps (hop candidates)
        self.movable_multi_step: Tuple[str, ...] = tuple(
            v for v in self.movable_values
            if self._interval[v].length >= 2)
        #: commutative binary operations (operand-reverse candidates)
        self.commutative_ops: Tuple[str, ...] = tuple(sorted(
            n for n, op in self.graph.ops.items()
            if op.arity == 2 and op.commutative))
        #: FUs that can implement pass-throughs, in declaration order
        self.pt_capable_fus: Tuple[str, ...] = tuple(
            n for n, f in self.fus.items() if f.fu_type.can_passthrough)
        self.regs_sorted: Tuple[str, ...] = tuple(sorted(self.regs))
        self._live_at: Dict[int, Tuple[str, ...]] = {
            step: tuple(self.lifetimes.live_at(step))
            for step in range(self.length)}
        # interned interconnect endpoints: the derive functions run on
        # every flush, so they look these tuples up instead of allocating
        self._reg_out_ep: Dict[str, Tuple] = {
            r: reg_out(r) for r in self.regs}
        self._reg_in_ep: Dict[str, Tuple] = {r: reg_in(r) for r in self.regs}
        self._fu_out_ep: Dict[str, Tuple] = {f: fu_out(f) for f in self.fus}
        self._fu_in_ep: Dict[Tuple[str, int], Tuple] = {
            (f, port): fu_in(f, port)
            for f in self.fus for port in (0, 1)}
        self._in_port_ep: Dict[str, Tuple] = {
            v: in_port(v) for v, val in self.graph.values.items()
            if val.is_input}
        self._out_port_ep: Dict[str, Tuple] = {
            v: out_port(v) for v, val in self.graph.values.items()
            if val.is_output}
        #: per-op read metadata: (value-carrying ports, is binary commutative)
        self._read_ports: Dict[str, Tuple[int, ...]] = {
            n: tuple(port for port, _ref in op.value_operands())
            for n, op in self.graph.ops.items()}
        self._swappable: Set[str] = {
            n for n, op in self.graph.ops.items() if op.arity == 2}
        self._producer: Dict[str, Optional[str]] = {
            v: val.producer for v, val in self.graph.values.items()}
        #: all operation names, sorted (every op is always bound, so this
        #: doubles as the sorted key list of ``op_fu`` for move proposals)
        self.ops_sorted: Tuple[str, ...] = tuple(sorted(self.graph.ops))
        fus_sorted = sorted(self.fus)
        #: op kind -> FU names that can execute it, sorted
        self.fus_by_kind: Dict[str, Tuple[str, ...]] = {
            kind: tuple(f for f in fus_sorted
                        if self.fus[f].fu_type.supports(kind))
            for kind in {op.kind for op in self.graph.ops.values()}}
        #: op kind -> same FU names as a set (membership tests)
        self.fus_supporting: Dict[str, frozenset] = {
            kind: frozenset(names)
            for kind, names in self.fus_by_kind.items()}
        #: memoized direct-transfer candidate list (see moves.py);
        #: any placement or pass-through change invalidates it
        self._xfer_cache: Optional[List[Tuple[str, int, str, int]]] = None
        self._xfer_snap: Optional[List[Tuple[str, int, str, int]]] = None
        # reusable journal containers (avoid two allocations per move)
        self._journal_store: Dict[SiteKey, List[Tuple]] = {}
        self._raw_store: List[Tuple] = []

        # dense-id tables + flat integer columns: the array mirror of the
        # decision dicts (repro.core.interning / repro.core.arraystate).
        # Every primitive writes dict and column together — through the
        # same write journal, so abort_move replays both — and the columns
        # are what clone_state()/restore_state() snapshot and diff.
        self._tables = BindingTables(
            ops=self.ops_sorted,
            fus=tuple(fus_sorted),
            regs=self.regs_sorted,
            segs=sorted(self._live_pairs),
            reads=sorted({(op_name, port)
                          for val in self.graph.values.values()
                          for op_name, port in val.consumers}),
            outs=sorted(v for v, val in self.graph.values.items()
                        if val.is_output))
        tables = self._tables
        self._op_fu_col = array("i", [-1]) * len(tables.op_names)
        self._op_swap_col = array("b", bytes(len(tables.op_names)))
        self._read_col = array("i", [-1]) * len(tables.read_keys)
        self._out_col = array("i", [-1]) * len(tables.out_values)
        self._seg_col = array("i", bytes(4 * len(tables.seg_keys)))
        #: dict-position tick per segment: ascending ticks over the placed
        #: segments reproduce the placements dict's iteration order, which
        #: is the one dict order the search trajectory observes
        self._seg_seq = array("q", bytes(8 * len(tables.seg_keys)))
        #: next position tick; monotone for the binding's life (abort_move
        #: restores seq cells but never rewinds the counter — monotonicity
        #: is the only property the order reconstruction needs)
        self._seg_tick = 1

    # ------------------------------------------------------------------ helpers

    def interval(self, value: str) -> LiveInterval:
        return self._interval[value]

    def port_captured(self, value: str) -> bool:
        """True if *value* never occupies a register (born past last step)."""
        return value in self._port_captured

    def reads_of(self, value: str, step: int) -> List[Tuple[str, int]]:
        """Consumer ``(op, port)`` pairs reading *value* at *step*."""
        return self._reads_at.get((value, step), [])

    def segment_regs(self, value: str, step: int) -> Tuple[str, ...]:
        return self.placements.get((value, step), ())

    def reg_free(self, reg: str, step: int) -> bool:
        return (reg, step) not in self.reg_occ

    def fu_free(self, fu: str, step: int) -> bool:
        return (fu, step) not in self.fu_tokens

    def fu_free_all(self, fu: str, steps: Iterable[int]) -> bool:
        return all(self.fu_free(fu, s) for s in steps)

    def out_sample_step(self, value: str) -> int:
        """Step at which the output port samples *value* (its birth step)."""
        return self.interval(value).birth

    def fus_of_type(self, type_name: str) -> List[str]:
        return sorted(n for n, f in self.fus.items()
                      if f.type_name == type_name)

    def ops_on_fu(self, fu: str) -> List[str]:
        """Operations currently bound to *fu* (each listed once)."""
        ops = {tok[1] for (f, _s), tok in self.fu_tokens.items()
               if f == fu and tok[0] == "op"}
        return sorted(ops)

    def values_in_reg(self, reg: str) -> List[Tuple[str, int]]:
        """(value, step) segments currently placed in *reg*."""
        return sorted((v, s) for (r, s), v in self.reg_occ.items() if r == reg)

    def live_at(self, step: int) -> Tuple[str, ...]:
        """Values live at *step*, sorted (precomputed, O(1))."""
        return self._live_at[step]

    def busy_steps(self, op_name: str) -> Tuple[int, ...]:
        """Steps on which *op_name* occupies its FU (precomputed, O(1))."""
        return self._busy_steps[op_name]

    # ------------------------------------------------- incremental counters

    def _area_of(self, by_type: Dict[str, int]) -> float:
        """Canonical used-FU area: per-type counts summed in sorted order.

        Every consumer (incremental update, from-scratch recount, shadow
        rebuild) computes the area through this one expression, so equal
        used-FU multisets give bit-identical floats no matter the history.
        """
        area = 0.0
        for tname in sorted(by_type):
            area += self._type_area[tname] * by_type[tname]
        return area

    def _fu_type_add(self, name: str, journal) -> None:
        """Per-type accounting for an FU whose load just became nonzero."""
        tname = self.fus[name].type_name
        by_type = self._fu_used_by_type
        count = by_type.get(tname, 0)
        if journal is not None:
            journal.append((by_type, tname, count if count else _ABSENT))
        by_type[tname] = count + 1
        self._fu_used_area = self._area_of(by_type)

    def _fu_type_drop(self, name: str, journal) -> None:
        """Per-type accounting for an FU whose load just became zero."""
        tname = self.fus[name].type_name
        by_type = self._fu_used_by_type
        left = by_type[tname] - 1
        if journal is not None:
            journal.append((by_type, tname, left + 1))
        if left:
            by_type[tname] = left
        else:
            del by_type[tname]
        self._fu_used_area = self._area_of(by_type)

    def _fu_load_add(self, name: str) -> None:
        fu_load = self._fu_load
        journal = self._raw_journal
        load = fu_load.get(name, 0) + 1
        if journal is not None:
            journal.append((fu_load, name, load - 1 if load > 1 else _ABSENT))
        fu_load[name] = load
        if load == 1:
            self._fu_used_count += 1
            self._fu_type_add(name, journal)

    def _fu_load_drop(self, name: str) -> None:
        fu_load = self._fu_load
        journal = self._raw_journal
        load = fu_load[name] - 1
        if journal is not None:
            journal.append((fu_load, name, load + 1))
        if load:
            fu_load[name] = load
        else:
            del fu_load[name]
            self._fu_used_count -= 1
            self._fu_type_drop(name, journal)

    def _reg_load_add(self, name: str) -> None:
        reg_load = self._reg_load
        journal = self._raw_journal
        load = reg_load.get(name, 0) + 1
        if journal is not None:
            journal.append((reg_load, name,
                            load - 1 if load > 1 else _ABSENT))
        reg_load[name] = load
        if load == 1:
            self._reg_used_count += 1

    def _reg_load_drop(self, name: str) -> None:
        reg_load = self._reg_load
        journal = self._raw_journal
        load = reg_load[name] - 1
        if journal is not None:
            journal.append((reg_load, name, load + 1))
        if load:
            reg_load[name] = load
        else:
            del reg_load[name]
            self._reg_used_count -= 1

    # ------------------------------------------------------------- primitives

    def set_op_fu(self, op_name: str, fu_name: Optional[str],
                  _validate: bool = True) -> Undo:
        """(Re)bind *op_name* to *fu_name* (``None`` unbinds)."""
        op = self.graph.ops[op_name]
        old = self.op_fu.get(op_name)
        if fu_name == old:
            return _noop
        busy = self._busy_steps[op_name]
        if fu_name is not None and _validate:
            # undo closures skip these checks: they restore a known-good
            # state in reverse order, so re-validation is pure overhead
            fu = self.fus.get(fu_name)
            if fu is None:
                raise BindingError(f"unknown FU {fu_name!r}")
            if not fu.fu_type.supports(op.kind):
                raise BindingError(
                    f"FU {fu_name!r} ({fu.type_name}) cannot execute "
                    f"{op.kind!r} operation {op_name!r}")
            for step in busy:
                token = self.fu_tokens.get((fu_name, step))
                if token is not None and not (token[0] == "op"
                                              and token[1] == op_name):
                    raise BindingError(
                        f"FU {fu_name!r} busy at step {step} with {token}")
        # release old tokens, claim new; the load-counter updates are
        # batched (one adjustment of len(busy), not one per step) so the
        # 0<->1 transition logic runs at most once per rebind
        fu_tokens = self.fu_tokens
        fu_load = self._fu_load
        journal = self._raw_journal
        n_busy = len(busy)
        if old is not None and n_busy:
            for step in busy:
                token_key = (old, step)
                if journal is not None:
                    journal.append((fu_tokens, token_key,
                                    fu_tokens[token_key]))
                del fu_tokens[token_key]
            load = fu_load[old] - n_busy
            if journal is not None:
                journal.append((fu_load, old, load + n_busy))
            if load:
                fu_load[old] = load
            else:
                del fu_load[old]
                self._fu_used_count -= 1
                self._fu_type_drop(old, journal)
        if journal is not None:
            journal.append((self.op_fu, op_name,
                            _ABSENT if old is None else old))
        if fu_name is not None:
            if n_busy:
                token = ("op", op_name)
                for step in busy:
                    token_key = (fu_name, step)
                    if journal is not None:
                        journal.append((fu_tokens, token_key,
                                        fu_tokens.get(token_key, _ABSENT)))
                    fu_tokens[token_key] = token
                prior = fu_load.get(fu_name, 0)
                if journal is not None:
                    journal.append((fu_load, fu_name,
                                    prior if prior else _ABSENT))
                fu_load[fu_name] = prior + n_busy
                if prior == 0:
                    self._fu_used_count += 1
                    self._fu_type_add(fu_name, journal)
            self.op_fu[op_name] = fu_name
        else:
            self.op_fu.pop(op_name, None)
        tables = self._tables
        op_fu_col = self._op_fu_col
        op_idx = tables.op_ids[op_name]
        if journal is not None:
            journal.append((op_fu_col, op_idx, op_fu_col[op_idx]))
        op_fu_col[op_idx] = \
            -1 if fu_name is None else tables.fu_ids[fu_name]
        self._mark(("read", op_name))
        if op.result is not None:
            self._mark(("write", op.result))

        def undo() -> None:
            self.set_op_fu(op_name, old, _validate=False)
        return undo

    def set_op_swap(self, op_name: str, flag: bool) -> Undo:
        """Set operand-reversal for a commutative binary operation."""
        op = self.graph.ops[op_name]
        old = self.op_swap.get(op_name, False)
        if flag == old:
            return _noop
        if flag and (op.arity != 2 or not op.commutative):
            raise BindingError(
                f"operand reverse illegal on {op_name!r} ({op.kind})")
        journal = self._raw_journal
        swap_col = self._op_swap_col
        op_idx = self._tables.op_ids[op_name]
        if journal is not None:
            journal.append(
                (self.op_swap, op_name,
                 self.op_swap.get(op_name, _ABSENT)))
            journal.append((swap_col, op_idx, swap_col[op_idx]))
        self.op_swap[op_name] = flag
        swap_col[op_idx] = 1 if flag else 0
        self._mark(("read", op_name))

        def undo() -> None:
            self.set_op_swap(op_name, old)
        return undo

    def set_placements(self, value: str, step: int,
                       regs: Sequence[str],
                       _validate: bool = True) -> Undo:
        """Place the segment ``(value, step)`` into *regs* (ordered copies)."""
        new = tuple(regs)
        old = self.placements.get((value, step), ())
        if new == old:
            return _noop
        if _validate:
            # undo closures skip validation: they restore a known-good state
            if (value, step) not in self._live_pairs:
                if value in self._port_captured:
                    raise BindingError(
                        f"value {value!r} is port-captured; it has no "
                        f"segments")
                raise BindingError(
                    f"value {value!r} is not live at step {step}")
            if len(new) > 1 and len(set(new)) != len(new):
                raise BindingError(f"duplicate registers in placement {new}")
            for reg in new:
                if reg not in self.regs:
                    raise BindingError(f"unknown register {reg!r}")
                occupant = self.reg_occ.get((reg, step))
                if occupant is not None and occupant != value:
                    raise BindingError(
                        f"register {reg!r} holds {occupant!r} at step {step}")
        # the load-counter helpers are inlined here: this is the hottest
        # primitive and the extra call per register is measurable
        reg_occ = self.reg_occ
        reg_load = self._reg_load
        journal = self._raw_journal
        append = journal.append if journal is not None else None
        for reg in old:
            occ_key = (reg, step)
            if append is not None:
                append((reg_occ, occ_key, reg_occ[occ_key]))
            del reg_occ[occ_key]
            load = reg_load[reg] - 1
            if append is not None:
                append((reg_load, reg, load + 1))
            if load:
                reg_load[reg] = load
            else:
                del reg_load[reg]
                self._reg_used_count -= 1
        for reg in new:
            occ_key = (reg, step)
            if append is not None:
                append((reg_occ, occ_key, reg_occ.get(occ_key, _ABSENT)))
            reg_occ[occ_key] = value
            load = reg_load.get(reg, 0) + 1
            if append is not None:
                append((reg_load, reg, load - 1 if load > 1 else _ABSENT))
            reg_load[reg] = load
            if load == 1:
                self._reg_used_count += 1
        if journal is not None:
            journal.append((self.placements, (value, step),
                            old if old else _ABSENT))
        if new:
            self.placements[(value, step)] = new
        else:
            self.placements.pop((value, step), None)
        tables = self._tables
        seg_idx = tables.seg_ids[(value, step)]
        seg_col = self._seg_col
        if append is not None:
            append((seg_col, seg_idx, seg_col[seg_idx]))
        seg_col[seg_idx] = tables.pool.intern(new)
        if not old:
            # fresh dict insert (at the end): stamp its position tick
            seg_seq = self._seg_seq
            if append is not None:
                append((seg_seq, seg_idx, seg_seq[seg_idx]))
            seg_seq[seg_idx] = self._seg_tick
            self._seg_tick += 1
        self._xfer_cache = None
        self._mark_segment_sites(value, step)

        def undo() -> None:
            self.set_placements(value, step, old, _validate=False)
        return undo

    def set_read_src(self, op_name: str, port: int,
                     reg: Optional[str]) -> Undo:
        """Choose which register copy consumer ``(op, port)`` reads."""
        old = self.read_src.get((op_name, port))
        if reg == old:
            return _noop
        if reg is not None and reg not in self.regs:
            raise BindingError(f"unknown register {reg!r}")
        tables = self._tables
        read_idx = tables.read_ids.get((op_name, port))
        if read_idx is None:
            raise BindingError(
                f"({op_name!r}, {port}) is not a consumer read site")
        journal = self._raw_journal
        read_col = self._read_col
        if journal is not None:
            journal.append(
                (self.read_src, (op_name, port),
                 _ABSENT if old is None else old))
            journal.append((read_col, read_idx, read_col[read_idx]))
        read_col[read_idx] = -1 if reg is None else tables.reg_ids[reg]
        if reg is None:
            self.read_src.pop((op_name, port), None)
        else:
            self.read_src[(op_name, port)] = reg
        self._mark(("read", op_name))

        def undo() -> None:
            self.set_read_src(op_name, port, old)
        return undo

    def set_out_src(self, value: str, reg: Optional[str]) -> Undo:
        """Choose the register the output port of *value* samples."""
        old = self.out_src.get(value)
        if reg == old:
            return _noop
        if reg is not None and reg not in self.regs:
            raise BindingError(f"unknown register {reg!r}")
        tables = self._tables
        out_idx = tables.out_ids.get(value)
        if out_idx is None:
            raise BindingError(f"{value!r} is not an output value")
        journal = self._raw_journal
        out_col = self._out_col
        if journal is not None:
            journal.append(
                (self.out_src, value, _ABSENT if old is None else old))
            journal.append((out_col, out_idx, out_col[out_idx]))
        out_col[out_idx] = -1 if reg is None else tables.reg_ids[reg]
        if reg is None:
            self.out_src.pop(value, None)
        else:
            self.out_src[value] = reg
        self._mark(("out", value))

        def undo() -> None:
            self.set_out_src(value, old)
        return undo

    def set_pt(self, value: str, dst_step: int, dst_reg: str,
               impl: Optional[PtImpl], _validate: bool = True) -> Undo:
        """Set or clear the pass-through implementation of one transfer.

        *impl* is ``(src_reg, fu, fu_port)``; ``None`` reverts the transfer
        to a direct register-to-register connection.  The pass-through
        occupies the FU during the step preceding *dst_step* in the value's
        live interval.
        """
        key = (value, dst_step, dst_reg)
        old = self.pt_impl.get(key)
        if impl == old:
            return _noop
        src_step = self._pred_step.get((value, dst_step))
        if src_step is None:
            raise BindingError(
                f"segment ({value!r}, {dst_step}) has no predecessor; "
                f"no transfer to implement")
        if impl is not None:
            src_reg, fu_name, fu_port = impl
            if _validate:
                # undo closures skip these placement-relative checks: they
                # restore a known-good state in reverse order, so placements
                # may transiently disagree while rolling back
                if dst_reg in self.placements.get((value, src_step), ()):
                    raise BindingError(
                        f"no transfer into ({value!r}, {dst_step}, "
                        f"{dst_reg!r}): the register already holds the "
                        f"value at step {src_step}")
                if src_reg not in self.placements.get((value, src_step), ()):
                    raise BindingError(
                        f"pass-through source {src_reg!r} does not hold "
                        f"{value!r} at step {src_step}")
            fu = self.fus.get(fu_name)
            if fu is None:
                raise BindingError(f"unknown FU {fu_name!r}")
            if not fu.fu_type.can_passthrough:
                raise BindingError(
                    f"FU {fu_name!r} ({fu.type_name}) cannot pass through")
            if fu_port not in (0, 1):
                raise BindingError(f"bad pass-through port {fu_port}")
            token = self.fu_tokens.get((fu_name, src_step))
            if token is not None and token != ("pt",) + key:
                raise BindingError(
                    f"FU {fu_name!r} busy at step {src_step} with {token}")
        journal = self._raw_journal
        if old is not None:
            token_key = (old[1], src_step)
            if journal is not None:
                journal.append((self.fu_tokens, token_key,
                                self.fu_tokens[token_key]))
            del self.fu_tokens[token_key]
            self._fu_load_drop(old[1])
        if journal is not None:
            journal.append((self.pt_impl, key,
                            _ABSENT if old is None else old))
        if impl is not None:
            token_key = (impl[1], src_step)
            if journal is not None:
                journal.append((self.fu_tokens, token_key,
                                self.fu_tokens.get(token_key, _ABSENT)))
            self.fu_tokens[token_key] = ("pt",) + key
            self._fu_load_add(impl[1])
            self.pt_impl[key] = impl
        else:
            self.pt_impl.pop(key, None)
        self._xfer_cache = None
        self._mark(("xfer", value, dst_step))

        def undo() -> None:
            self.set_pt(value, dst_step, dst_reg, old, _validate=False)
        return undo

    # ------------------------------------------------------------ site engine

    def _mark(self, key: SiteKey) -> None:
        self._dirty.add(key)

    def _mark_segment_sites(self, value: str, step: int) -> None:
        dirty = self._dirty
        if self._pred_step[(value, step)] is None:
            dirty.add(("write", value))
        dirty.add(("xfer", value, step))
        succ = self._succ_step[(value, step)]
        if succ is not None:
            dirty.add(("xfer", value, succ))
        if (value, step) in self._out_sample_sites:
            dirty.add(("out", value))

    def _derive(self, key: SiteKey) -> List[Tuple]:
        kind = key[0]
        if kind == "read":
            return self._derive_read(key[1])
        if kind == "write":
            return self._derive_write(key[1])
        if kind == "xfer":
            return self._derive_xfer(key[1], key[2])
        if kind == "out":
            return self._derive_out(key[1])
        raise BindingError(f"unknown site {key}")

    def _derive_read(self, op_name: str) -> List[Tuple]:
        fu_name = self.op_fu.get(op_name)
        if fu_name is None:
            return []
        swap = self.op_swap.get(op_name, False) \
            and op_name in self._swappable
        read_src = self.read_src
        reg_out_ep = self._reg_out_ep
        fu_in_ep = self._fu_in_ep
        events = []
        for port in self._read_ports[op_name]:
            reg = read_src.get((op_name, port))
            if reg is None:
                continue
            eff_port = (1 - port) if swap else port
            events.append((reg_out_ep[reg], fu_in_ep[(fu_name, eff_port)]))
        return events

    def _derive_write(self, value: str) -> List[Tuple]:
        src = self._in_port_ep.get(value)
        if src is None:
            producer = self._producer[value]
            if producer is None:
                return []
            fu_name = self.op_fu.get(producer)
            if fu_name is None:
                return []
            src = self._fu_out_ep[fu_name]
        if value in self._port_captured:
            # straight from the FU to the output port, no register
            out_ep = self._out_port_ep.get(value)
            return [(src, out_ep)] if out_ep is not None else []
        reg_in_ep = self._reg_in_ep
        return [(src, reg_in_ep[reg])
                for reg in self.placements.get(
                    (value, self._interval[value].birth), ())]

    def _derive_xfer(self, value: str, dst_step: int) -> List[Tuple]:
        src_step = self._pred_step[(value, dst_step)]
        if src_step is None:
            return []
        placements = self.placements
        prev = placements.get((value, src_step), ())
        if not prev:
            return []
        cur = placements.get((value, dst_step), ())
        reg_out_ep = self._reg_out_ep
        reg_in_ep = self._reg_in_ep
        events = []
        for dst in cur:
            if dst in prev:
                continue  # the register keeps holding the value; no transfer
            impl = self.pt_impl.get((value, dst_step, dst))
            if impl is not None:
                src_reg, fu_name, fu_port = impl
                if src_reg not in prev:
                    raise BindingError(
                        f"stale pass-through for ({value!r}, {dst_step}, "
                        f"{dst!r}): source {src_reg!r} no longer holds the "
                        f"value at step {src_step}")
                events.append((reg_out_ep[src_reg],
                               self._fu_in_ep[(fu_name, fu_port)]))
                events.append((self._fu_out_ep[fu_name], reg_in_ep[dst]))
            else:
                events.append((reg_out_ep[prev[0]], reg_in_ep[dst]))
        return events

    def _derive_out(self, value: str) -> List[Tuple]:
        out_ep = self._out_port_ep.get(value)
        if out_ep is None or value in self._port_captured:
            return []
        reg = self.out_src.get(value)
        if reg is None:
            return []
        return [(self._reg_out_ep[reg], out_ep)]

    def flush(self) -> None:
        """Re-derive all dirty sites and update the connection ledger."""
        events = self._site_events
        journal = self._journal
        ledger = self.ledger
        ledger_remove = ledger.remove_pair
        ledger_add = ledger.add_pair
        for key in self._dirty:
            old = events.get(key, _NO_EVENTS)
            kind = key[0]
            if kind == "xfer":
                new = self._derive_xfer(key[1], key[2])
            elif kind == "read":
                new = self._derive_read(key[1])
            elif kind == "write":
                new = self._derive_write(key[1])
            elif kind == "out":
                new = self._derive_out(key[1])
            else:
                raise BindingError(f"unknown site {key}")
            if new == old:
                continue
            if journal is not None and key not in journal:
                journal[key] = old
            for pair in old:
                ledger_remove(pair)
            for pair in new:
                ledger_add(pair)
            if new:
                events[key] = new
            else:
                events.pop(key, None)
        self._dirty.clear()

    # --------------------------------------------------------- move journal

    def begin_move(self) -> None:
        """Start journaling for a cheap move-reject path.

        Between :meth:`begin_move` and :meth:`commit_move` /
        :meth:`abort_move`:

        * every raw/occupancy dict write is appended to a write log with
          the overwritten value;
        * every :meth:`flush` records the first pre-change event list of
          each site it touches.

        A rejected move is then reverted wholesale by :meth:`abort_move`
        — replaying the write log backwards and restoring the journaled
        site events — instead of running the move's undo closures plus a
        second full flush.
        """
        journal = self._journal_store
        journal.clear()
        self._journal = journal
        raw = self._raw_store
        raw.clear()
        self._raw_journal = raw
        self._counter_snap = (self._fu_used_count, self._reg_used_count,
                              self._fu_used_area)
        self._xfer_snap = self._xfer_cache

    def commit_move(self) -> None:
        """Keep the move: discard the journals."""
        self._journal = None
        self._raw_journal = None

    def abort_move(self) -> None:
        """Revert the binding to its state at :meth:`begin_move`.

        Replaces the undo-closure path entirely: the raw write log is
        replayed most-recent-first (restoring decision dicts, occupancy
        maps, and load counters), the use-count scalars are restored from
        their snapshot, and the journaled site events go back into the
        ledger verbatim.  Every site the move dirtied was either flushed
        (journaled if its events changed) or derives to its pre-move
        events from the restored raw state, so clearing the dirty set
        leaves the binding exactly as flushed before the move.
        """
        raw = self._raw_journal
        self._raw_journal = None
        if raw:
            for dct, key, old in reversed(raw):
                if old is _ABSENT:
                    dct.pop(key, None)
                else:
                    dct[key] = old
            (self._fu_used_count, self._reg_used_count,
             self._fu_used_area) = self._counter_snap
            # the restored state is exactly the pre-move state, so the
            # pre-move transfer-candidate memo is valid again
            self._xfer_cache = self._xfer_snap
        journal = self._journal
        self._journal = None
        if journal:
            events = self._site_events
            ledger = self.ledger
            ledger_remove = ledger.remove_pair
            ledger_add = ledger.add_pair
            for key, old in journal.items():
                cur = events.get(key, _NO_EVENTS)
                if cur == old:
                    continue
                for pair in cur:
                    ledger_remove(pair)
                for pair in old:
                    ledger_add(pair)
                if old:
                    events[key] = old
                else:
                    events.pop(key, None)
        self._dirty.clear()

    # ------------------------------------------------------------------- cost

    def fu_used_count(self) -> int:
        return self._fu_used_count

    def fu_used_area(self) -> float:
        return self._fu_used_area

    def reg_used_count(self) -> int:
        return self._reg_used_count

    def total_cost(self) -> float:
        """O(1) weighted total from the running counters.

        The per-move fast path: no :class:`CostBreakdown` is constructed
        and no occupancy map is scanned.  Bit-identical to
        ``self.cost().total`` — both route the same counter values through
        :func:`repro.datapath.cost.weighted_total`, and the sanitizer
        asserts equality against :meth:`cost_from_scratch` at every shadow
        check.
        """
        if self._dirty:
            self.flush()
        return weighted_total(self.weights, self._fu_used_area,
                              self._reg_used_count, self.ledger.mux_count,
                              self.ledger.wire_count, self.ledger.mux_depth)

    def cost(self) -> CostBreakdown:
        """Evaluate the current allocation cost (requires a flushed state)."""
        if self._dirty:
            self.flush()
        return CostBreakdown(
            fu_count=self._fu_used_count,
            fu_area=self._fu_used_area,
            register_count=self._reg_used_count,
            mux_count=self.ledger.mux_count,
            wire_count=self.ledger.wire_count,
            weights=self.weights,
            mux_depth=self.ledger.mux_depth,
        )

    def cost_from_scratch(self) -> CostBreakdown:
        """Recompute the cost with no incremental counter involved.

        The sanitizer's oracle for the fast path: FU/register use is
        re-derived from the token/occupancy maps and the interconnect
        totals from the per-site event lists, so a skewed incremental
        counter (``_fu_used_count``/``_reg_used_count``/``_fu_used_area``
        or a drifted ledger) shows up as a cost mismatch.
        """
        if self._dirty:
            self.flush()
        used_fus = {f for (f, _s) in self.fu_tokens}
        by_type: Dict[str, int] = {}
        for name in used_fus:
            tname = self.fus[name].type_name
            by_type[tname] = by_type.get(tname, 0) + 1
        uses: Counter = Counter()
        for events in self._site_events.values():
            for src, sink in events:
                uses[(src, sink)] += 1
        fanin: Counter = Counter(sink for (_src, sink) in uses)
        return CostBreakdown(
            fu_count=len(used_fus),
            fu_area=self._area_of(by_type),
            register_count=len({r for (r, _s) in self.reg_occ}),
            mux_count=sum(max(0, n - 1) for n in fanin.values()),
            wire_count=len(uses),
            weights=self.weights,
            mux_depth=sum((n - 1).bit_length()
                          for n in fanin.values() if n > 1),
        )

    # -------------------------------------------------------------- snapshots

    def derived_snapshot(self) -> Dict[str, object]:
        """Canonical snapshot of all incrementally-maintained derived state.

        Two bindings with the same decisions must produce bit-identical
        snapshots; :mod:`repro.verify.sanitizer` compares the live binding
        against a shadow rebuilt from :meth:`clone_state` to detect stale
        sites, bad undo closures, or ledger drift.
        """
        if self._dirty:
            self.flush()
        return {
            "reg_occ": dict(self.reg_occ),
            "fu_tokens": dict(self.fu_tokens),
            "fu_load": {n: c for n, c in self._fu_load.items() if c},
            "reg_load": {n: c for n, c in self._reg_load.items() if c},
            "site_events": {key: tuple(events)
                            for key, events in self._site_events.items()
                            if events},
            "uses": self.ledger.use_counts(),
        }

    def duplicate(self) -> "Binding":
        """A fresh, independent Binding with the same decisions."""
        twin = Binding(self.schedule, list(self.fus.values()),
                       list(self.regs.values()), weights=self.weights)
        twin.restore_state(self.clone_state())
        return twin

    def clone_state(self) -> CompactState:
        """Compact snapshot of the decision state (for best-so-far).

        Column slices plus shallow copies of the derived state — no
        per-key dict copying.  The result is a read-only
        :class:`~repro.core.arraystate.CompactState`; it also behaves as
        the legacy ``{"op_fu": {...}, ...}`` mapping for name-keyed
        consumers (codecs, cross-binding restores).
        """
        if self._dirty:
            self.flush()
        derived = DerivedSnapshot(
            reg_occ=dict(self.reg_occ),
            fu_tokens=dict(self.fu_tokens),
            fu_load=dict(self._fu_load),
            reg_load=dict(self._reg_load),
            fu_by_type=dict(self._fu_used_by_type),
            counters=(self._fu_used_count, self._reg_used_count,
                      self._fu_used_area),
            site_events=dict(self._site_events),
            ledger=self.ledger.snapshot(),
        )
        return CompactState(
            tables=self._tables,
            op_fu=self._op_fu_col[:],
            op_swap=self._op_swap_col[:],
            read_src=self._read_col[:],
            out_src=self._out_col[:],
            seg=self._seg_col[:],
            seg_seq=self._seg_seq[:],
            pt=tuple(sorted(self.pt_impl.items())),
            derived=derived,
        )

    def restore_state(self, state: Mapping) -> None:
        """Restore a snapshot taken with :meth:`clone_state`.

        A :class:`~repro.core.arraystate.CompactState` made by **this**
        binding takes the fast path (:meth:`_restore_fast`): column diffs
        applied to the decision dicts plus a bulk copy of the clone-time
        derived state — no site is re-derived.  Anything else — a legacy
        name-keyed dict, or a compact snapshot from another binding (the
        sanitizer's shadow rebuild, ``duplicate``, a deserialized warm
        start) — goes through :meth:`_restore_mapping`, which mutates via
        the primitives and re-derives the dirty sites, keeping the
        shadow-rebuild oracle independent of this binding's derived state.
        Both paths yield bit-identical dict iteration orders and search
        trajectories.
        """
        if isinstance(state, CompactState):
            if (state.tables is self._tables and state.derived is not None
                    and self._raw_journal is None):
                self._restore_fast(state)
            else:
                self._restore_mapping(state.to_mapping())
            return
        self._restore_mapping(state)

    def _restore_fast(self, state: CompactState) -> None:
        """Same-binding diff-replay restore from the array columns.

        For each column, a C-speed array compare decides whether anything
        changed; only differing indices touch the name-keyed dicts.
        Removed placements are popped first, then the snapshot's differing
        segments are re-inserted in ascending clone-time ``seg_seq`` with
        fresh ticks — reproducing exactly the dict order the primitive
        path would produce ([unchanged keys in live order] + [restored
        keys in snapshot order]).  Derived state is then bulk-copied from
        the clone-time :class:`DerivedSnapshot` instead of re-derived.
        """
        if self._dirty:
            self.flush()
        tables = self._tables
        changed = False
        xfer_dirty = False

        seg_col = self._seg_col
        snap_seg = state.seg
        if seg_col != snap_seg:
            changed = True
            xfer_dirty = True
            placements = self.placements
            seg_keys = tables.seg_keys
            pool_tuples = tables.pool.tuples
            snap_seq = state.seg_seq
            diff = [i for i, (live, want)
                    in enumerate(zip(seg_col, snap_seg)) if live != want]
            for i in diff:
                if seg_col[i]:
                    del placements[seg_keys[i]]
            seg_seq = self._seg_seq
            tick = self._seg_tick
            for _pos, i in sorted((snap_seq[i], i) for i in diff
                                  if snap_seg[i]):
                placements[seg_keys[i]] = pool_tuples[snap_seg[i]]
                seg_seq[i] = tick
                tick += 1
            self._seg_tick = tick
            seg_col[:] = snap_seg

        col = self._op_fu_col
        snap = state.op_fu
        if col != snap:
            changed = True
            op_names = tables.op_names
            fu_names = tables.fu_names
            op_fu = self.op_fu
            for i, (live, want) in enumerate(zip(col, snap)):
                if live != want:
                    if want < 0:
                        op_fu.pop(op_names[i], None)
                    else:
                        op_fu[op_names[i]] = fu_names[want]
            col[:] = snap

        col = self._op_swap_col
        snap = state.op_swap
        if col != snap:
            changed = True
            op_names = tables.op_names
            op_swap = self.op_swap
            for i, (live, want) in enumerate(zip(col, snap)):
                if live != want:
                    if want:
                        op_swap[op_names[i]] = True
                    else:
                        op_swap.pop(op_names[i], None)
            col[:] = snap

        col = self._read_col
        snap = state.read_src
        if col != snap:
            changed = True
            read_keys = tables.read_keys
            reg_names = tables.reg_names
            read_src = self.read_src
            for i, (live, want) in enumerate(zip(col, snap)):
                if live != want:
                    if want < 0:
                        read_src.pop(read_keys[i], None)
                    else:
                        read_src[read_keys[i]] = reg_names[want]
            col[:] = snap

        col = self._out_col
        snap = state.out_src
        if col != snap:
            changed = True
            out_values = tables.out_values
            reg_names = tables.reg_names
            out_src = self.out_src
            for i, (live, want) in enumerate(zip(col, snap)):
                if live != want:
                    if want < 0:
                        out_src.pop(out_values[i], None)
                    else:
                        out_src[out_values[i]] = reg_names[want]
            col[:] = snap

        if tuple(sorted(self.pt_impl.items())) != state.pt:
            changed = True
            xfer_dirty = True
            self.pt_impl.clear()
            self.pt_impl.update(state.pt)

        if not changed:
            return

        derived = state.derived
        assert derived is not None
        self.reg_occ.clear()
        self.reg_occ.update(derived.reg_occ)
        self.fu_tokens.clear()
        self.fu_tokens.update(derived.fu_tokens)
        self._fu_load.clear()
        self._fu_load.update(derived.fu_load)
        self._reg_load.clear()
        self._reg_load.update(derived.reg_load)
        self._fu_used_by_type.clear()
        self._fu_used_by_type.update(derived.fu_by_type)
        (self._fu_used_count, self._reg_used_count,
         self._fu_used_area) = derived.counters
        self._site_events.clear()
        self._site_events.update(derived.site_events)
        self.ledger.restore(derived.ledger)
        if xfer_dirty:
            self._xfer_cache = None

    def _restore_mapping(self, state: Mapping) -> None:
        """Restore a legacy name-keyed snapshot through the primitives.

        Diff-based: only keys whose value differs between the live state
        and the snapshot are touched, so restoring a near-identical state
        costs proportional to the drift, not to the binding size.  All
        mutation goes through the primitives, so the derived state is
        re-derived incrementally and independently of the snapshot's
        origin — the property the sanitizer's shadow rebuild relies on.

        Clear-then-set ordering keeps every intermediate state legal:
        stale pass-throughs are dropped first (they pin FU tokens and
        reference placements), then differing placements and FU bindings
        are vacated before the snapshot's values are written, and the
        snapshot's pass-throughs are re-bound last, once the placements
        they validate against are in place.
        """
        op_fu: Dict[str, Optional[str]] = state["op_fu"]  # type: ignore
        placements: Dict[Tuple[str, int], Tuple[str, ...]] = \
            state["placements"]                           # type: ignore
        op_swap: Dict[str, bool] = state["op_swap"]       # type: ignore
        read_src: Dict[Tuple[str, int], str] = state["read_src"]  # type: ignore
        out_src: Dict[str, str] = state["out_src"]        # type: ignore
        pt_impl: Dict[Tuple[str, int, str], PtImpl] = \
            state["pt_impl"]                              # type: ignore

        # 1. drop pass-throughs that the snapshot lacks or implements
        #    differently (frees their FU tokens and placement references)
        for key, impl in list(self.pt_impl.items()):
            if pt_impl.get(key) != impl:
                self.set_pt(key[0], key[1], key[2], None)
        # 2. vacate placements and FU bindings that differ, so the set
        #    phase below never collides with a stale occupant
        for key, regs in list(self.placements.items()):
            if placements.get(key) != regs:
                self.set_placements(key[0], key[1], ())
        for op_name, fu in list(self.op_fu.items()):
            if op_fu.get(op_name) != fu:
                self.set_op_fu(op_name, None)
        # 3. write the snapshot's decisions (no-ops for unchanged keys)
        for op_name, fu in op_fu.items():
            if self.op_fu.get(op_name) != fu:
                self.set_op_fu(op_name, fu)
        for (value, step), regs in placements.items():
            if self.placements.get((value, step), ()) != tuple(regs):
                self.set_placements(value, step, regs)
        for op_name in list(self.op_swap):
            if op_name not in op_swap:
                self.set_op_swap(op_name, False)
        for op_name, flag in op_swap.items():
            self.set_op_swap(op_name, flag)
        for (op_name, port) in list(self.read_src):
            if (op_name, port) not in read_src:
                self.set_read_src(op_name, port, None)
        for (op_name, port), reg in read_src.items():
            self.set_read_src(op_name, port, reg)
        for value in list(self.out_src):
            if value not in out_src:
                self.set_out_src(value, None)
        for value, reg in out_src.items():
            self.set_out_src(value, reg)
        # 4. re-bind the snapshot's pass-throughs against final placements
        for key, impl in pt_impl.items():
            if self.pt_impl.get(key) != tuple(impl):
                self.set_pt(key[0], key[1], key[2], tuple(impl))
        self.flush()


def _noop() -> None:
    return None
