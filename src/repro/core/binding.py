"""The SALSA extended binding state.

A :class:`Binding` captures everything the paper's allocator decides
(Sec. 2):

* ``op_fu`` / ``op_swap`` — operator-to-functional-unit assignment and
  operand-order reversal (moves F1–F3);
* ``placements`` — for every value **segment** ``(value, step)`` the
  ordered tuple of registers holding it; more than one register means live
  copies created by *value split* (moves R1–R6).  Index 0 is the primary
  copy (the default transfer source);
* ``read_src`` — which register copy each consumer port reads;
* ``out_src`` — which register the primary-output port samples;
* ``pt_impl`` — transfers implemented as functional-unit *pass-throughs*
  instead of direct register-to-register connections (moves F4/F5).

Derived state (register/FU occupancy, the point-to-point connection ledger
and its equivalent-2-1-mux total) is maintained incrementally: every
primitive mutation returns an undo closure and marks the affected
connection *sites* dirty; :meth:`Binding.flush` re-derives exactly the
dirty sites.  The iterative-improvement engine applies a move as a list of
primitives, flushes, inspects the cost, and either keeps the move or rolls
the primitives back.

Timing conventions are those of DESIGN.md Sec. 3; in particular a transfer
into the segment at step ``t'`` happens during the preceding live step
``t`` (the pass-through FU must be idle at ``t``), and values born past the
last control step of an acyclic schedule are *port-captured*: they go
straight from the producing FU to the output port and never occupy a
register.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import BindingError
from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import LiveInterval
from repro.datapath.cost import CostBreakdown, CostWeights
from repro.datapath.interconnect import (ConnectionLedger, fu_in, fu_out,
                                         in_port, out_port, reg_in, reg_out)
from repro.datapath.units import FU, Register
from repro.sched.schedule import Schedule

Undo = Callable[[], None]
SiteKey = Tuple
PtImpl = Tuple[str, str, int]  # (src_reg, fu, fu_port)


class Binding:
    """Mutable binding of a scheduled CDFG onto FUs and registers."""

    def __init__(self, schedule: Schedule, fus: Sequence[FU],
                 registers: Sequence[Register],
                 weights: CostWeights = CostWeights()) -> None:
        self.schedule = schedule
        self.graph: CDFG = schedule.graph
        self.spec = schedule.spec
        self.length = schedule.length
        self.lifetimes = schedule.lifetimes
        self.weights = weights

        self.fus: Dict[str, FU] = {}
        for fu in fus:
            if fu.name in self.fus:
                raise BindingError(f"duplicate FU name {fu.name!r}")
            self.fus[fu.name] = fu
        self.regs: Dict[str, Register] = {}
        for reg in registers:
            if reg.name in self.regs:
                raise BindingError(f"duplicate register name {reg.name!r}")
            self.regs[reg.name] = reg

        # raw decision state ------------------------------------------------
        self.op_fu: Dict[str, str] = {}
        self.op_swap: Dict[str, bool] = {}
        self.placements: Dict[Tuple[str, int], Tuple[str, ...]] = {}
        self.read_src: Dict[Tuple[str, int], str] = {}
        self.out_src: Dict[str, str] = {}
        self.pt_impl: Dict[Tuple[str, int, str], PtImpl] = {}

        # derived occupancy ---------------------------------------------------
        self.reg_occ: Dict[Tuple[str, int], str] = {}
        self.fu_tokens: Dict[Tuple[str, int], Tuple] = {}
        self._fu_load: Counter = Counter()   # fu -> #tokens
        self._reg_load: Counter = Counter()  # reg -> #segments held

        self.ledger = ConnectionLedger()
        self._site_events: Dict[SiteKey, List[Tuple]] = {}
        self._dirty: Set[SiteKey] = set()

        # static lookups -------------------------------------------------------
        self._reads_at: Dict[Tuple[str, int], List[Tuple[str, int]]] = {}
        for vname, val in self.graph.values.items():
            for op_name, port in val.consumers:
                step = schedule.start[op_name]
                self._reads_at.setdefault((vname, step), []).append(
                    (op_name, port))

    # ------------------------------------------------------------------ helpers

    def interval(self, value: str) -> LiveInterval:
        return self.lifetimes.interval(value)

    def port_captured(self, value: str) -> bool:
        """True if *value* never occupies a register (born past last step)."""
        return self.interval(value).birth >= self.length

    def reads_of(self, value: str, step: int) -> List[Tuple[str, int]]:
        """Consumer ``(op, port)`` pairs reading *value* at *step*."""
        return self._reads_at.get((value, step), [])

    def segment_regs(self, value: str, step: int) -> Tuple[str, ...]:
        return self.placements.get((value, step), ())

    def reg_free(self, reg: str, step: int) -> bool:
        return (reg, step) not in self.reg_occ

    def fu_free(self, fu: str, step: int) -> bool:
        return (fu, step) not in self.fu_tokens

    def fu_free_all(self, fu: str, steps: Iterable[int]) -> bool:
        return all(self.fu_free(fu, s) for s in steps)

    def out_sample_step(self, value: str) -> int:
        """Step at which the output port samples *value* (its birth step)."""
        return self.interval(value).birth

    def fus_of_type(self, type_name: str) -> List[str]:
        return sorted(n for n, f in self.fus.items()
                      if f.type_name == type_name)

    def ops_on_fu(self, fu: str) -> List[str]:
        """Operations currently bound to *fu* (each listed once)."""
        ops = {tok[1] for (f, _s), tok in self.fu_tokens.items()
               if f == fu and tok[0] == "op"}
        return sorted(ops)

    def values_in_reg(self, reg: str) -> List[Tuple[str, int]]:
        """(value, step) segments currently placed in *reg*."""
        return sorted((v, s) for (r, s), v in self.reg_occ.items() if r == reg)

    # ------------------------------------------------------------- primitives

    def set_op_fu(self, op_name: str, fu_name: Optional[str]) -> Undo:
        """(Re)bind *op_name* to *fu_name* (``None`` unbinds)."""
        op = self.graph.ops[op_name]
        old = self.op_fu.get(op_name)
        if fu_name == old:
            return _noop
        busy = self.schedule.busy_steps(op_name)
        if fu_name is not None:
            fu = self.fus.get(fu_name)
            if fu is None:
                raise BindingError(f"unknown FU {fu_name!r}")
            if not fu.fu_type.supports(op.kind):
                raise BindingError(
                    f"FU {fu_name!r} ({fu.type_name}) cannot execute "
                    f"{op.kind!r} operation {op_name!r}")
            for step in busy:
                token = self.fu_tokens.get((fu_name, step))
                if token is not None and not (token[0] == "op"
                                              and token[1] == op_name):
                    raise BindingError(
                        f"FU {fu_name!r} busy at step {step} with {token}")
        # release old tokens, claim new
        if old is not None:
            for step in busy:
                del self.fu_tokens[(old, step)]
                self._fu_load[old] -= 1
        if fu_name is not None:
            for step in busy:
                self.fu_tokens[(fu_name, step)] = ("op", op_name)
                self._fu_load[fu_name] += 1
            self.op_fu[op_name] = fu_name
        else:
            self.op_fu.pop(op_name, None)
        self._mark(("read", op_name))
        if op.result is not None:
            self._mark(("write", op.result))

        def undo() -> None:
            self.set_op_fu(op_name, old)
        return undo

    def set_op_swap(self, op_name: str, flag: bool) -> Undo:
        """Set operand-reversal for a commutative binary operation."""
        op = self.graph.ops[op_name]
        old = self.op_swap.get(op_name, False)
        if flag == old:
            return _noop
        if flag and (op.arity != 2 or not op.commutative):
            raise BindingError(
                f"operand reverse illegal on {op_name!r} ({op.kind})")
        self.op_swap[op_name] = flag
        self._mark(("read", op_name))

        def undo() -> None:
            self.set_op_swap(op_name, old)
        return undo

    def set_placements(self, value: str, step: int,
                       regs: Sequence[str]) -> Undo:
        """Place the segment ``(value, step)`` into *regs* (ordered copies)."""
        if self.port_captured(value):
            raise BindingError(
                f"value {value!r} is port-captured; it has no segments")
        interval = self.interval(value)
        if not interval.covers(step):
            raise BindingError(
                f"value {value!r} is not live at step {step}")
        new = tuple(regs)
        if len(set(new)) != len(new):
            raise BindingError(f"duplicate registers in placement {new}")
        old = self.placements.get((value, step), ())
        if new == old:
            return _noop
        for reg in new:
            if reg not in self.regs:
                raise BindingError(f"unknown register {reg!r}")
            occupant = self.reg_occ.get((reg, step))
            if occupant is not None and occupant != value:
                raise BindingError(
                    f"register {reg!r} holds {occupant!r} at step {step}")
        for reg in old:
            del self.reg_occ[(reg, step)]
            self._reg_load[reg] -= 1
        for reg in new:
            self.reg_occ[(reg, step)] = value
            self._reg_load[reg] += 1
        if new:
            self.placements[(value, step)] = new
        else:
            self.placements.pop((value, step), None)
        self._mark_segment_sites(value, step)

        def undo() -> None:
            self.set_placements(value, step, old)
        return undo

    def set_read_src(self, op_name: str, port: int,
                     reg: Optional[str]) -> Undo:
        """Choose which register copy consumer ``(op, port)`` reads."""
        old = self.read_src.get((op_name, port))
        if reg == old:
            return _noop
        if reg is not None and reg not in self.regs:
            raise BindingError(f"unknown register {reg!r}")
        if reg is None:
            self.read_src.pop((op_name, port), None)
        else:
            self.read_src[(op_name, port)] = reg
        self._mark(("read", op_name))

        def undo() -> None:
            self.set_read_src(op_name, port, old)
        return undo

    def set_out_src(self, value: str, reg: Optional[str]) -> Undo:
        """Choose the register the output port of *value* samples."""
        old = self.out_src.get(value)
        if reg == old:
            return _noop
        if reg is not None and reg not in self.regs:
            raise BindingError(f"unknown register {reg!r}")
        if reg is None:
            self.out_src.pop(value, None)
        else:
            self.out_src[value] = reg
        self._mark(("out", value))

        def undo() -> None:
            self.set_out_src(value, old)
        return undo

    def set_pt(self, value: str, dst_step: int, dst_reg: str,
               impl: Optional[PtImpl], _validate: bool = True) -> Undo:
        """Set or clear the pass-through implementation of one transfer.

        *impl* is ``(src_reg, fu, fu_port)``; ``None`` reverts the transfer
        to a direct register-to-register connection.  The pass-through
        occupies the FU during the step preceding *dst_step* in the value's
        live interval.
        """
        key = (value, dst_step, dst_reg)
        old = self.pt_impl.get(key)
        if impl == old:
            return _noop
        interval = self.interval(value)
        src_step = interval.predecessor_step(dst_step)
        if src_step is None:
            raise BindingError(
                f"segment ({value!r}, {dst_step}) has no predecessor; "
                f"no transfer to implement")
        if impl is not None:
            src_reg, fu_name, fu_port = impl
            if _validate:
                # undo closures skip these placement-relative checks: they
                # restore a known-good state in reverse order, so placements
                # may transiently disagree while rolling back
                if dst_reg in self.placements.get((value, src_step), ()):
                    raise BindingError(
                        f"no transfer into ({value!r}, {dst_step}, "
                        f"{dst_reg!r}): the register already holds the "
                        f"value at step {src_step}")
                if src_reg not in self.placements.get((value, src_step), ()):
                    raise BindingError(
                        f"pass-through source {src_reg!r} does not hold "
                        f"{value!r} at step {src_step}")
            fu = self.fus.get(fu_name)
            if fu is None:
                raise BindingError(f"unknown FU {fu_name!r}")
            if not fu.fu_type.can_passthrough:
                raise BindingError(
                    f"FU {fu_name!r} ({fu.type_name}) cannot pass through")
            if fu_port not in (0, 1):
                raise BindingError(f"bad pass-through port {fu_port}")
            token = self.fu_tokens.get((fu_name, src_step))
            if token is not None and token != ("pt",) + key:
                raise BindingError(
                    f"FU {fu_name!r} busy at step {src_step} with {token}")
        if old is not None:
            del self.fu_tokens[(old[1], src_step)]
            self._fu_load[old[1]] -= 1
        if impl is not None:
            self.fu_tokens[(impl[1], src_step)] = ("pt",) + key
            self._fu_load[impl[1]] += 1
            self.pt_impl[key] = impl
        else:
            self.pt_impl.pop(key, None)
        self._mark(("xfer", value, dst_step))

        def undo() -> None:
            self.set_pt(value, dst_step, dst_reg, old, _validate=False)
        return undo

    # ------------------------------------------------------------ site engine

    def _mark(self, key: SiteKey) -> None:
        self._dirty.add(key)

    def _mark_segment_sites(self, value: str, step: int) -> None:
        interval = self.interval(value)
        if step == interval.birth:
            self._mark(("write", value))
        self._mark(("xfer", value, step))
        succ = interval.successor_step(step)
        if succ is not None:
            self._mark(("xfer", value, succ))
        if self.graph.values[value].is_output and \
                step == self.out_sample_step(value):
            self._mark(("out", value))

    def _derive(self, key: SiteKey) -> List[Tuple]:
        kind = key[0]
        if kind == "read":
            return self._derive_read(key[1])
        if kind == "write":
            return self._derive_write(key[1])
        if kind == "xfer":
            return self._derive_xfer(key[1], key[2])
        if kind == "out":
            return self._derive_out(key[1])
        raise BindingError(f"unknown site {key}")

    def _derive_read(self, op_name: str) -> List[Tuple]:
        fu_name = self.op_fu.get(op_name)
        if fu_name is None:
            return []
        op = self.graph.ops[op_name]
        swap = self.op_swap.get(op_name, False)
        events = []
        for port, _ref in op.value_operands():
            reg = self.read_src.get((op_name, port))
            if reg is None:
                continue
            eff_port = (1 - port) if (swap and op.arity == 2) else port
            events.append((reg_out(reg), fu_in(fu_name, eff_port)))
        return events

    def _derive_write(self, value: str) -> List[Tuple]:
        val = self.graph.values[value]
        if val.is_input:
            src = in_port(value)
        else:
            producer = val.producer
            if producer is None:
                return []
            fu_name = self.op_fu.get(producer)
            if fu_name is None:
                return []
            src = fu_out(fu_name)
        if self.port_captured(value):
            # straight from the FU to the output port, no register
            return [(src, out_port(value))] if val.is_output else []
        interval = self.interval(value)
        return [(src, reg_in(reg))
                for reg in self.placements.get((value, interval.birth), ())]

    def _derive_xfer(self, value: str, dst_step: int) -> List[Tuple]:
        interval = self.interval(value)
        src_step = interval.predecessor_step(dst_step)
        if src_step is None:
            return []
        prev = self.placements.get((value, src_step), ())
        cur = self.placements.get((value, dst_step), ())
        if not prev:
            return []
        events = []
        for dst in cur:
            if dst in prev:
                continue  # the register keeps holding the value; no transfer
            impl = self.pt_impl.get((value, dst_step, dst))
            if impl is not None:
                src_reg, fu_name, fu_port = impl
                if src_reg not in prev:
                    raise BindingError(
                        f"stale pass-through for ({value!r}, {dst_step}, "
                        f"{dst!r}): source {src_reg!r} no longer holds the "
                        f"value at step {src_step}")
                events.append((reg_out(src_reg), fu_in(fu_name, fu_port)))
                events.append((fu_out(fu_name), reg_in(dst)))
            else:
                events.append((reg_out(prev[0]), reg_in(dst)))
        return events

    def _derive_out(self, value: str) -> List[Tuple]:
        val = self.graph.values[value]
        if not val.is_output or self.port_captured(value):
            return []
        reg = self.out_src.get(value)
        if reg is None:
            return []
        return [(reg_out(reg), out_port(value))]

    def flush(self) -> None:
        """Re-derive all dirty sites and update the connection ledger."""
        for key in self._dirty:
            old = self._site_events.get(key, [])
            new = self._derive(key)
            if new == old:
                continue
            self.ledger.remove_events(old)
            self.ledger.add_events(new)
            if new:
                self._site_events[key] = new
            else:
                self._site_events.pop(key, None)
        self._dirty.clear()

    # ------------------------------------------------------------------- cost

    def fu_used_count(self) -> int:
        return sum(1 for n in self.fus if self._fu_load[n] > 0)

    def fu_used_area(self) -> float:
        return sum(self.fus[n].fu_type.area
                   for n in self.fus if self._fu_load[n] > 0)

    def reg_used_count(self) -> int:
        return sum(1 for n in self.regs if self._reg_load[n] > 0)

    def cost(self) -> CostBreakdown:
        """Evaluate the current allocation cost (requires a flushed state)."""
        if self._dirty:
            self.flush()
        return CostBreakdown(
            fu_count=self.fu_used_count(),
            fu_area=self.fu_used_area(),
            register_count=self.reg_used_count(),
            mux_count=self.ledger.mux_count,
            wire_count=self.ledger.wire_count,
            weights=self.weights,
        )

    # -------------------------------------------------------------- snapshots

    def derived_snapshot(self) -> Dict[str, object]:
        """Canonical snapshot of all incrementally-maintained derived state.

        Two bindings with the same decisions must produce bit-identical
        snapshots; :mod:`repro.verify.sanitizer` compares the live binding
        against a shadow rebuilt from :meth:`clone_state` to detect stale
        sites, bad undo closures, or ledger drift.
        """
        if self._dirty:
            self.flush()
        return {
            "reg_occ": dict(self.reg_occ),
            "fu_tokens": dict(self.fu_tokens),
            "fu_load": {n: c for n, c in self._fu_load.items() if c},
            "reg_load": {n: c for n, c in self._reg_load.items() if c},
            "site_events": {key: tuple(events)
                            for key, events in self._site_events.items()
                            if events},
            "uses": self.ledger.use_counts(),
        }

    def duplicate(self) -> "Binding":
        """A fresh, independent Binding with the same decisions."""
        twin = Binding(self.schedule, list(self.fus.values()),
                       list(self.regs.values()), weights=self.weights)
        twin.restore_state(self.clone_state())
        return twin

    def clone_state(self) -> Dict[str, object]:
        """Deep snapshot of the raw decision state (for best-so-far)."""
        return {
            "op_fu": dict(self.op_fu),
            "op_swap": dict(self.op_swap),
            "placements": dict(self.placements),
            "read_src": dict(self.read_src),
            "out_src": dict(self.out_src),
            "pt_impl": dict(self.pt_impl),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot taken with :meth:`clone_state`."""
        # clear everything via primitives so derived state stays consistent
        for key in list(self.pt_impl):
            self.set_pt(key[0], key[1], key[2], None)
        for op_name in list(self.op_swap):
            self.set_op_swap(op_name, False)
        for (op_name, port) in list(self.read_src):
            self.set_read_src(op_name, port, None)
        for value in list(self.out_src):
            self.set_out_src(value, None)
        for (value, step) in list(self.placements):
            self.set_placements(value, step, ())
        for op_name in list(self.op_fu):
            self.set_op_fu(op_name, None)

        for op_name, fu in state["op_fu"].items():          # type: ignore
            self.set_op_fu(op_name, fu)
        for (value, step), regs in state["placements"].items():  # type: ignore
            self.set_placements(value, step, regs)
        for op_name, flag in state["op_swap"].items():      # type: ignore
            self.set_op_swap(op_name, flag)
        for (op_name, port), reg in state["read_src"].items():  # type: ignore
            self.set_read_src(op_name, port, reg)
        for value, reg in state["out_src"].items():         # type: ignore
            self.set_out_src(value, reg)
        for key, impl in state["pt_impl"].items():          # type: ignore
            self.set_pt(key[0], key[1], key[2], impl)
        self.flush()


def _noop() -> None:
    return None
