"""The SALSA move set (paper Table 1).

Functional-unit moves
    F1  FU Exchange        exchange the FU bindings of two operations
    F2  FU Move            reassign an operation to another (free) FU
    F3  Operand Reverse    swap the FU input ports of a commutative op
    F4  Bind Pass-Through  implement a segment transfer through an idle FU
    F5  Unbind Pass-Through  revert a pass-through to a direct connection

Register moves
    R1  Segment Exchange   swap the registers of two segments in one step
    R2  Segment Move       move one segment copy to a free register
    R3  Value Exchange     exchange the register bindings of two values
    R4  Value Move         put *all* segments of a value in one register
    R5  Value Split        create a live copy of a run of segments
    R6  Value Merge        remove a copy, re-pointing its readers

Every move either applies completely (returning the list of undo closures
that reverts it) or leaves the binding untouched and returns ``None``.
Moves keep the binding legal: they repair consumer read sources, output
sample sources and pass-through implementations invalidated by placement
changes (:func:`fixup_segment`).

Moves mutate the binding **only through its primitives** (``set_op_fu``,
``set_placements``, ``set_read_src``, ``set_pt``, …).  That is a hard
rule, not a style preference: each primitive mirrors its dict write into
the interned array columns and appends the old value to the open write
journal, which is what makes ``Binding.abort_move()`` (journal replay)
and the diff-replay ``restore_state()`` sound.  A move that poked a dict
or a column directly would bypass both, and the next rollback or restore
would silently corrupt the search (see DESIGN.md §3.3; the shadow-state
sanitizer exists to catch exactly this).  The undo closures returned by a
move re-execute primitives too, so engines may revert with either the
closures or the journal — ``improve``/``anneal``/``polish`` all use the
journal; the closures remain for nested partial reverts inside a still
-open move (e.g. the pass-through trial in ``polish.sweep_segment_hops``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import BindingError
from repro.core.binding import Binding, Undo

MoveFn = Callable[[Binding, random.Random], Optional[List[Undo]]]

#: how many random element picks a move attempts before giving up
_TRIES = 12


def rollback(undos: List[Undo]) -> None:
    """Revert a sequence of primitive mutations (most recent first)."""
    for undo in reversed(undos):
        undo()


# --------------------------------------------------------------------- fixups

def fixup_segment(binding: Binding, value: str, step: int) -> List[Undo]:
    """Repair read/out sources and pass-throughs after a placement change."""
    undos: List[Undo] = []
    placements = binding.placements
    regs = placements.get((value, step), ())
    primary = regs[0] if regs else None
    read_src = binding.read_src
    for op_name, port in binding.reads_of(value, step):
        if read_src.get((op_name, port)) not in regs:
            undos.append(binding.set_read_src(op_name, port, primary))
    val = binding.graph.values[value]
    if val.is_output and not binding.port_captured(value) and \
            step == binding.out_sample_step(value):
        if binding.out_src.get(value) not in regs:
            undos.append(binding.set_out_src(value, primary))

    pt_impl = binding.pt_impl
    if pt_impl:
        interval = binding.interval(value)
        prev = interval.predecessor_step(step)
        succ = interval.successor_step(step)
        # pass-throughs into this step
        if prev is not None:
            prev_regs = placements.get((value, prev), ())
            for key in [k for k in pt_impl if k[0] == value
                        and k[1] == step]:
                _v, _t, dst = key
                impl = pt_impl[key]
                if dst not in regs or dst in prev_regs \
                        or impl[0] not in prev_regs:
                    undos.append(binding.set_pt(value, step, dst, None))
        # pass-throughs out of this step (into the successor)
        if succ is not None:
            succ_regs = placements.get((value, succ), ())
            for key in [k for k in pt_impl if k[0] == value
                        and k[1] == succ]:
                _v, _t, dst = key
                impl = pt_impl[key]
                if impl[0] not in regs or dst in regs \
                        or dst not in succ_regs:
                    undos.append(binding.set_pt(value, succ, dst, None))
    return undos


def _movable_values(binding: Binding) -> Sequence[str]:
    return binding.movable_values


# ------------------------------------------------------------------ FU moves

def move_fu_exchange(binding: Binding,
                     rng: random.Random) -> Optional[List[Undo]]:
    """F1: exchange the FU bindings of two operations."""
    ops = binding.ops_sorted
    if len(ops) < 2:
        return None
    graph_ops = binding.graph.ops
    op_fu = binding.op_fu
    supporting = binding.fus_supporting
    tokens = binding.fu_tokens
    for _ in range(_TRIES):
        op1, op2 = rng.sample(ops, 2)
        fu1, fu2 = op_fu[op1], op_fu[op2]
        if fu1 == fu2:
            continue
        if fu2 not in supporting[graph_ops[op1].kind]:
            continue
        if fu1 not in supporting[graph_ops[op2].kind]:
            continue
        # pre-check token conflicts (each op's own tokens are released
        # before the cross-bind, so only third-party tokens conflict): a
        # doomed exchange then costs two scans instead of three journaled
        # mutations plus an exception-driven rollback
        t1, t2 = ("op", op1), ("op", op2)
        if any((t := tokens.get((fu1, s))) is not None and t != t1
               for s in binding.busy_steps(op2)):
            continue
        if any((t := tokens.get((fu2, s))) is not None and t != t2
               for s in binding.busy_steps(op1)):
            continue
        undos: List[Undo] = []
        try:
            undos.append(binding.set_op_fu(op1, None))
            undos.append(binding.set_op_fu(op2, fu1))
            undos.append(binding.set_op_fu(op1, fu2))
            return undos
        except BindingError:
            rollback(undos)
    return None


def move_fu_move(binding: Binding,
                 rng: random.Random) -> Optional[List[Undo]]:
    """F2: reassign an operation to a different free FU."""
    ops = binding.ops_sorted
    if not ops:
        return None
    graph_ops = binding.graph.ops
    tokens = binding.fu_tokens
    by_kind = binding.fus_by_kind
    for _ in range(_TRIES):
        op_name = rng.choice(ops)
        busy = binding.busy_steps(op_name)
        current = binding.op_fu[op_name]
        targets = [f for f in by_kind[graph_ops[op_name].kind]
                   if f != current
                   and all((f, s) not in tokens for s in busy)]
        if not targets:
            continue
        return [binding.set_op_fu(op_name, rng.choice(targets))]
    return None


def move_operand_reverse(binding: Binding,
                         rng: random.Random) -> Optional[List[Undo]]:
    """F3: swap the input-port assignment of a commutative operation."""
    ops = binding.commutative_ops
    if not ops:
        return None
    op_name = rng.choice(ops)
    flag = not binding.op_swap.get(op_name, False)
    return [binding.set_op_swap(op_name, flag)]


def _direct_transfers(binding: Binding) -> List[Tuple[str, int, str, int]]:
    """All (value, dst_step, dst_reg, src_step) transfers not yet pass-through.

    Iterates the placements map directly (one pass, no per-value interval
    walk); the order is the placements' insertion order, deterministic for
    a given move history.  The result is memoized on the binding — any
    placement or pass-through change invalidates it, so rejected moves
    (which restore the pre-move state) only cost one recompute.
    """
    found = binding._xfer_cache
    if found is not None:
        return found
    found = []
    placements = binding.placements
    pred_step = binding._pred_step
    pt_impl = binding.pt_impl
    for (value, dst_step), cur in placements.items():
        src_step = pred_step[(value, dst_step)]
        if src_step is None:
            continue
        prev = placements.get((value, src_step))
        if not prev:
            continue
        for dst in cur:
            if dst not in prev and (value, dst_step, dst) not in pt_impl:
                found.append((value, dst_step, dst, src_step))
    binding._xfer_cache = found
    return found


def _best_pt_choice(binding: Binding, rng: random.Random, value: str,
                    dst_step: int, dst_reg: str,
                    src_step: int) -> Optional[Tuple[str, str, int]]:
    """Pick the (src_reg, fu, port) pass-through that re-uses the most
    existing connections (the paper's Fig. 3 rationale: a pass-through wins
    exactly when the register->FU and FU->register wires already exist)."""
    from repro.datapath.interconnect import fu_in, fu_out, reg_in, reg_out

    pt_fus = [n for n in binding.pt_capable_fus
              if binding.fu_free(n, src_step)]
    if not pt_fus:
        return None
    ledger = binding.ledger
    best: List[Tuple[str, str, int]] = []
    best_new = None
    for src_reg in binding.segment_regs(value, src_step):
        for fu_name in pt_fus:
            for port in (0, 1):
                new = int(ledger.uses(reg_out(src_reg),
                                      fu_in(fu_name, port)) == 0)
                new += int(ledger.uses(fu_out(fu_name), reg_in(dst_reg)) == 0)
                if best_new is None or new < best_new:
                    best_new, best = new, [(src_reg, fu_name, port)]
                elif new == best_new:
                    best.append((src_reg, fu_name, port))
    return rng.choice(best) if best else None


def move_bind_passthrough(binding: Binding,
                          rng: random.Random) -> Optional[List[Undo]]:
    """F4: assign a slack node (transfer) to an idle pass-through FU."""
    candidates = _direct_transfers(binding)
    if not candidates:
        return None
    for _ in range(_TRIES):
        value, dst_step, dst_reg, src_step = rng.choice(candidates)
        impl = _best_pt_choice(binding, rng, value, dst_step, dst_reg,
                               src_step)
        if impl is None:
            continue
        try:
            return [binding.set_pt(value, dst_step, dst_reg, impl)]
        except BindingError:
            return None
    return None


def move_unbind_passthrough(binding: Binding,
                            rng: random.Random) -> Optional[List[Undo]]:
    """F5: revert a pass-through transfer to a direct connection."""
    if not binding.pt_impl:
        return None
    key = rng.choice(sorted(binding.pt_impl))
    return [binding.set_pt(key[0], key[1], key[2], None)]


# ------------------------------------------------------------- register moves

def _swap_segments(binding: Binding, v1: str, v2: str, step: int,
                   undos: List[Undo]) -> None:
    """Swap the full placement tuples of two values at one step."""
    p1 = binding.segment_regs(v1, step)
    p2 = binding.segment_regs(v2, step)
    undos.append(binding.set_placements(v1, step, ()))
    undos.append(binding.set_placements(v2, step, p1))
    undos.append(binding.set_placements(v1, step, p2))
    undos.extend(fixup_segment(binding, v1, step))
    undos.extend(fixup_segment(binding, v2, step))


def move_segment_exchange(binding: Binding,
                          rng: random.Random) -> Optional[List[Undo]]:
    """R1: exchange the register bindings of two segments in one step."""
    placements = binding.placements
    for _ in range(_TRIES):
        step = rng.randrange(binding.length)
        live = [v for v in binding.live_at(step)
                if placements.get((v, step))]
        if len(live) < 2:
            continue
        v1, v2 = rng.sample(live, 2)
        undos: List[Undo] = []
        try:
            _swap_segments(binding, v1, v2, step, undos)
            return undos
        except BindingError:
            rollback(undos)
    return None


def move_segment_move(binding: Binding,
                      rng: random.Random) -> Optional[List[Undo]]:
    """R2: move one segment copy to an unused register."""
    values = _movable_values(binding)
    if not values:
        return None
    free_regs = binding.regs_sorted
    reg_occ = binding.reg_occ
    for _ in range(_TRIES):
        value = rng.choice(values)
        step = rng.choice(binding.interval(value).steps)
        regs = binding.segment_regs(value, step)
        if not regs:
            continue
        old = rng.choice(regs)
        targets = [r for r in free_regs if (r, step) not in reg_occ]
        if not targets:
            continue
        new = rng.choice(targets)
        placement = tuple(new if r == old else r for r in regs)
        undos: List[Undo] = []
        try:
            undos.append(binding.set_placements(value, step, placement))
            undos.extend(fixup_segment(binding, value, step))
            return undos
        except BindingError:
            rollback(undos)
    return None


def move_segment_hop(binding: Binding,
                     rng: random.Random) -> Optional[List[Undo]]:
    """R2b: relocate a *suffix run* of a value's segments to another
    register, creating exactly one mid-lifetime transfer — the canonical
    "value moves between registers during its lifetime" transformation of
    the extended model (Sec. 2).  With probability 1/2 the transfer is
    immediately implemented as a pass-through (best re-use choice)."""
    values = binding.movable_multi_step
    if not values:
        return None
    placements = binding.placements
    reg_occ = binding.reg_occ
    for _ in range(_TRIES):
        value = rng.choice(values)
        steps = binding.interval(value).steps
        cut = rng.randrange(1, len(steps))
        run = steps[cut:]
        src_step = steps[cut - 1]
        # only hop single-copy runs (copies are R5/R6 territory)
        if any(len(placements.get((value, s), ())) != 1 for s in run):
            continue
        current = placements[(value, run[0])][0]
        targets = [r for r in binding.regs_sorted
                   if r != current
                   and all((r, s) not in reg_occ for s in run)]
        if not targets:
            continue
        new = rng.choice(targets)
        undos: List[Undo] = []
        try:
            for step in run:
                undos.append(binding.set_placements(value, step, (new,)))
                undos.extend(fixup_segment(binding, value, step))
            if rng.random() < 0.5 and \
                    new not in binding.segment_regs(value, src_step):
                impl = _best_pt_choice(binding, rng, value, run[0], new,
                                       src_step)
                if impl is not None:
                    undos.append(binding.set_pt(value, run[0], new, impl))
            return undos
        except BindingError:
            rollback(undos)
    return None


def move_value_exchange(binding: Binding,
                        rng: random.Random) -> Optional[List[Undo]]:
    """R3: exchange the register bindings of two whole values."""
    values = _movable_values(binding)
    if len(values) < 2:
        return None
    for _ in range(_TRIES):
        v1, v2 = rng.sample(values, 2)
        steps1 = set(binding.interval(v1).steps)
        steps2 = set(binding.interval(v2).steps)
        shared = sorted(steps1 & steps2)
        undos: List[Undo] = []
        try:
            if shared:
                for step in shared:
                    _swap_segments(binding, v1, v2, step, undos)
                return undos
            # disjoint lifetimes: swap home registers when both contiguous
            home1 = _single_home(binding, v1)
            home2 = _single_home(binding, v2)
            if home1 is None or home2 is None or home1 == home2:
                continue
            for step in binding.interval(v1).steps:
                if not binding.reg_free(home2, step):
                    raise BindingError("home occupied")
            for step in binding.interval(v1).steps:
                undos.append(binding.set_placements(v1, step, (home2,)))
                undos.extend(fixup_segment(binding, v1, step))
            for step in binding.interval(v2).steps:
                if not binding.reg_free(home1, step):
                    raise BindingError("home occupied")
                undos.append(binding.set_placements(v2, step, (home1,)))
                undos.extend(fixup_segment(binding, v2, step))
            return undos
        except BindingError:
            rollback(undos)
    return None


def _single_home(binding: Binding, value: str) -> Optional[str]:
    """The unique register of a monolithically-bound value, else ``None``."""
    home = None
    for step in binding.interval(value).steps:
        regs = binding.segment_regs(value, step)
        if len(regs) != 1:
            return None
        if home is None:
            home = regs[0]
        elif regs[0] != home:
            return None
    return home


def move_value_move(binding: Binding,
                    rng: random.Random) -> Optional[List[Undo]]:
    """R4: assign all segments of a value to one register."""
    values = _movable_values(binding)
    if not values:
        return None
    for _ in range(_TRIES):
        value = rng.choice(values)
        steps = binding.interval(value).steps
        home = _single_home(binding, value)
        targets = []
        for reg in binding.regs_sorted:
            if reg == home:
                continue
            if all(binding.reg_occ.get((reg, s)) in (None, value)
                   for s in steps):
                targets.append(reg)
        if not targets:
            continue
        new = rng.choice(targets)
        undos: List[Undo] = []
        try:
            # drop all pass-throughs of this value first (no transfers remain)
            for key in [k for k in binding.pt_impl if k[0] == value]:
                undos.append(binding.set_pt(key[0], key[1], key[2], None))
            for step in steps:
                undos.append(binding.set_placements(value, step, (new,)))
                undos.extend(fixup_segment(binding, value, step))
            return undos
        except BindingError:
            rollback(undos)
    return None


def move_value_split(binding: Binding,
                     rng: random.Random) -> Optional[List[Undo]]:
    """R5: store a live copy of a run of segments in a second register."""
    values = _movable_values(binding)
    if not values:
        return None
    for _ in range(_TRIES):
        value = rng.choice(values)
        steps = binding.interval(value).steps
        i = rng.randrange(len(steps))
        j = rng.randrange(i, len(steps))
        run = steps[i:j + 1]
        existing = set()
        for step in run:
            existing.update(binding.segment_regs(value, step))
        targets = [r for r in binding.regs_sorted
                   if r not in existing
                   and all(binding.reg_free(r, s) for s in run)]
        if not targets:
            continue
        copy_reg = rng.choice(targets)
        undos: List[Undo] = []
        try:
            for step in run:
                placement = binding.segment_regs(value, step) + (copy_reg,)
                undos.append(binding.set_placements(value, step, placement))
                undos.extend(fixup_segment(binding, value, step))
            # move some readers (and possibly the output port) to the copy
            for step in run:
                for op_name, port in binding.reads_of(value, step):
                    if rng.random() < 0.5:
                        undos.append(
                            binding.set_read_src(op_name, port, copy_reg))
            return undos
        except BindingError:
            rollback(undos)
    return None


def move_value_merge(binding: Binding,
                     rng: random.Random) -> Optional[List[Undo]]:
    """R6: eliminate one copy of a value segment run."""
    multi = sorted({(v, s) for (v, s), regs in binding.placements.items()
                    if len(regs) > 1})
    if not multi:
        return None
    for _ in range(_TRIES):
        value, step = rng.choice(multi)
        regs = binding.segment_regs(value, step)
        victim = rng.choice(regs)
        # grow a maximal run around `step` where victim is a removable copy
        steps = binding.interval(value).steps
        idx = steps.index(step)
        lo = idx
        while lo > 0 and victim in binding.segment_regs(value, steps[lo - 1]) \
                and len(binding.segment_regs(value, steps[lo - 1])) > 1:
            lo -= 1
        hi = idx
        while hi + 1 < len(steps) \
                and victim in binding.segment_regs(value, steps[hi + 1]) \
                and len(binding.segment_regs(value, steps[hi + 1])) > 1:
            hi += 1
        undos: List[Undo] = []
        try:
            for s in steps[lo:hi + 1]:
                placement = tuple(r for r in binding.segment_regs(value, s)
                                  if r != victim)
                undos.append(binding.set_placements(value, s, placement))
                undos.extend(fixup_segment(binding, value, s))
            return undos
        except BindingError:
            rollback(undos)
    return None


# ---------------------------------------------------------------- move table

@dataclass
class MoveSet:
    """Enabled moves with selection weights (paper Sec. 4: complex moves
    are picked less often to control execution time)."""

    segments: bool = True      # R1/R2 single-step segment moves
    splits: bool = True        # R5/R6 value copies
    passthroughs: bool = True  # F4/F5
    operand_swap: bool = True  # F3
    weights: Dict[str, float] = field(default_factory=dict)

    DEFAULT_WEIGHTS = {
        "F1": 0.10, "F2": 0.12, "F3": 0.08, "F4": 0.08, "F5": 0.03,
        "R1": 0.14, "R2": 0.12, "R2b": 0.15, "R3": 0.04, "R4": 0.04,
        "R5": 0.06, "R6": 0.04,
    }

    _TABLE = {
        "F1": move_fu_exchange,
        "F2": move_fu_move,
        "F3": move_operand_reverse,
        "F4": move_bind_passthrough,
        "F5": move_unbind_passthrough,
        "R1": move_segment_exchange,
        "R2": move_segment_move,
        "R2b": move_segment_hop,
        "R3": move_value_exchange,
        "R4": move_value_move,
        "R5": move_value_split,
        "R6": move_value_merge,
    }

    def enabled_moves(self) -> List[Tuple[str, MoveFn, float]]:
        table = []
        for name, fn in self._TABLE.items():
            if name in ("R1", "R2", "R2b") and not self.segments:
                continue
            if name in ("R5", "R6") and not self.splits:
                continue
            if name in ("F4", "F5") and not self.passthroughs:
                continue
            if name == "F3" and not self.operand_swap:
                continue
            weight = self.weights.get(name, self.DEFAULT_WEIGHTS[name])
            if weight > 0:
                table.append((name, fn, weight))
        return table

    @classmethod
    def traditional(cls) -> "MoveSet":
        """The traditional binding model: monolithic values, no copies,
        no pass-throughs (used by the baseline allocator)."""
        return cls(segments=False, splits=False, passthroughs=False)
