"""Simulated-annealing allocation (the approach the paper tried first).

"It was originally thought that allocation improvement would be implemented
using simulated annealing.  However, attempts to use annealing produced
poor results and seldom converged on a good solution." (Sec. 4)

This module keeps a faithful annealer over the same move set so the claim
can be reproduced as an ablation (``benchmarks/bench_ablation_anneal.py``):
at equal move budgets, the bounded-uphill iterative-improvement scheme of
:mod:`repro.core.improve` should reach lower cost than annealing.

The returned :class:`~repro.core.improve.ImproveStats` carries the same
telemetry :func:`~repro.core.improve.improve` populates — wall-clock,
integer seed, per-move-type counters, per-level seconds, and the best-cost
trace — so :mod:`repro.analysis.stats` reports treat both engines alike.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.rng import RngLike, WeightedChooser, make_rng
from repro.core.binding import Binding
from repro.core.improve import ImproveStats
from repro.core.moves import MoveSet
from repro.verify.sanitizer import make_sanitizer


@dataclass
class AnnealConfig:
    """Classic geometric-cooling annealing schedule."""

    initial_temperature: float = 12.0
    cooling: float = 0.92
    temperature_levels: int = 40
    moves_per_level: int = 900
    min_temperature: float = 0.05
    move_set: MoveSet = field(default_factory=MoveSet)
    seed: RngLike = 0
    #: run the shadow-state sanitizer (:mod:`repro.verify.sanitizer`)
    #: alongside the annealing; also forced on by ``REPRO_SANITIZE=1``
    sanitize: bool = False
    sanitize_every: int = 64
    #: accept-test via the O(1) ``Binding.total_cost()`` fast path (debug
    #: knob, bit-identical to the ``CostBreakdown`` path)
    fast_cost: bool = True
    #: cooperative cancellation/deadline hook, checked once per attempted
    #: move; returning True ends the run at the best state seen so far
    #: with ``ImproveStats.stopped_early`` set (see ``ImproveConfig``)
    should_stop: Optional[Callable[[], bool]] = field(
        default=None, repr=False, compare=False)


def anneal(binding: Binding,
           config: Optional[AnnealConfig] = None) -> ImproveStats:
    """Run simulated annealing in place; ends at the best state found."""
    if config is None:
        config = AnnealConfig()
    started = time.perf_counter()
    rng = make_rng(config.seed)
    moves = config.move_set.enabled_moves()
    if not moves:
        raise ValueError("no moves enabled")
    chooser = WeightedChooser([m[0] for m in moves], [m[2] for m in moves])
    fns = {m[0]: m[1] for m in moves}

    stats = ImproveStats()
    if isinstance(config.seed, int):
        stats.seed = config.seed
    sanitizer = make_sanitizer(
        binding, config.sanitize, config.sanitize_every,
        context=f"anneal(seed={config.seed!r})")
    if sanitizer is not None:
        sanitizer.check()
    stats.initial_cost = binding.cost()
    current = stats.initial_cost.total
    best = current
    best_state = binding.clone_state()
    stats.best_trace.append((0, best))
    temperature = config.initial_temperature

    should_stop = config.should_stop
    for _level in range(config.temperature_levels):
        level_started = time.perf_counter()
        stats.trials_run += 1
        uphill_before = stats.uphill_accepted
        for _ in range(config.moves_per_level):
            if should_stop is not None and should_stop():
                stats.stopped_early = True
                break
            stats.moves_attempted += 1
            name = chooser.choose(rng)
            counters = stats.counters_for(name)
            counters.attempts += 1
            if sanitizer is not None:
                sanitizer.pre_move(name, stats.moves_attempted)
            binding.begin_move()
            undos = fns[name](binding, rng)
            if undos is None:
                binding.commit_move()  # no-op move: nothing to revert
                continue
            stats.moves_applied += 1
            counters.applies += 1
            if config.fast_cost:
                new_cost = binding.total_cost()
            else:
                new_cost = binding.cost().total
            delta = new_cost - current
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                binding.commit_move()
                stats.moves_accepted += 1
                counters.accepts += 1
                stats.per_move_accepts[name] = \
                    stats.per_move_accepts.get(name, 0) + 1
                if delta > 0:
                    stats.uphill_accepted += 1
                    counters.uphill += 1
                current = new_cost
                if current < best - 1e-9:
                    best = current
                    best_state = binding.clone_state()
                    stats.best_trace.append((stats.moves_attempted, best))
                if sanitizer is not None:
                    sanitizer.after_accept(name, stats.moves_attempted)
            else:
                counters.rollbacks += 1
                # abort_move replays the write journal; the undo closures
                # in `undos` are not needed on this path
                binding.abort_move()
                if sanitizer is not None:
                    sanitizer.after_rollback(name, stats.moves_attempted)
        stats.cost_trace.append(current)
        stats.uphill_used.append(stats.uphill_accepted - uphill_before)
        stats.trial_seconds.append(time.perf_counter() - level_started)
        if stats.stopped_early:
            break
        temperature *= config.cooling
        if temperature < config.min_temperature:
            break

    binding.restore_state(best_state)
    if sanitizer is not None:
        sanitizer.check()
    stats.final_cost = binding.cost()
    stats.seconds = time.perf_counter() - started
    return stats
