"""Simulated-annealing allocation (the approach the paper tried first).

"It was originally thought that allocation improvement would be implemented
using simulated annealing.  However, attempts to use annealing produced
poor results and seldom converged on a good solution." (Sec. 4)

This module keeps a faithful annealer over the same move set so the claim
can be reproduced as an ablation (``benchmarks/bench_ablation_anneal.py``):
at equal move budgets, the bounded-uphill iterative-improvement scheme of
:mod:`repro.core.improve` should reach lower cost than annealing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.rng import RngLike, make_rng, weighted_choice
from repro.core.binding import Binding
from repro.core.improve import ImproveStats
from repro.core.moves import MoveSet, rollback
from repro.verify.sanitizer import make_sanitizer


@dataclass
class AnnealConfig:
    """Classic geometric-cooling annealing schedule."""

    initial_temperature: float = 12.0
    cooling: float = 0.92
    temperature_levels: int = 40
    moves_per_level: int = 900
    min_temperature: float = 0.05
    move_set: MoveSet = field(default_factory=MoveSet)
    seed: RngLike = 0
    #: run the shadow-state sanitizer (:mod:`repro.verify.sanitizer`)
    #: alongside the annealing; also forced on by ``REPRO_SANITIZE=1``
    sanitize: bool = False
    sanitize_every: int = 64


def anneal(binding: Binding,
           config: Optional[AnnealConfig] = None) -> ImproveStats:
    """Run simulated annealing in place; ends at the best state found."""
    if config is None:
        config = AnnealConfig()
    rng = make_rng(config.seed)
    moves = config.move_set.enabled_moves()
    names = [m[0] for m in moves]
    fns = {m[0]: m[1] for m in moves}
    weights = [m[2] for m in moves]

    stats = ImproveStats()
    sanitizer = make_sanitizer(
        binding, config.sanitize, config.sanitize_every,
        context=f"anneal(seed={config.seed!r})")
    if sanitizer is not None:
        sanitizer.check()
    stats.initial_cost = binding.cost()
    current = stats.initial_cost.total
    best = current
    best_state = binding.clone_state()
    temperature = config.initial_temperature

    for _level in range(config.temperature_levels):
        stats.trials_run += 1
        for _ in range(config.moves_per_level):
            stats.moves_attempted += 1
            name = weighted_choice(rng, names, weights)
            if sanitizer is not None:
                sanitizer.pre_move(name, stats.moves_attempted)
            undos = fns[name](binding, rng)
            if undos is None:
                continue
            stats.moves_applied += 1
            new_cost = binding.cost().total
            delta = new_cost - current
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                stats.moves_accepted += 1
                if delta > 0:
                    stats.uphill_accepted += 1
                current = new_cost
                if current < best - 1e-9:
                    best = current
                    best_state = binding.clone_state()
                if sanitizer is not None:
                    sanitizer.after_accept(name, stats.moves_attempted)
            else:
                rollback(undos)
                binding.flush()
                if sanitizer is not None:
                    sanitizer.after_rollback(name, stats.moves_attempted)
        stats.cost_trace.append(current)
        temperature *= config.cooling
        if temperature < config.min_temperature:
            break

    binding.restore_state(best_state)
    if sanitizer is not None:
        sanitizer.check()
    stats.final_cost = binding.cost()
    return stats
