"""The paper's contribution: the SALSA extended binding model + allocator."""

from repro.core.binding import Binding
from repro.core.initial import initial_allocation
from repro.core.moves import MoveSet, fixup_segment
from repro.core.improve import (ImproveConfig, ImproveStats, MoveCounters,
                                improve)
from repro.core.polish import polish
from repro.core.anneal import AnnealConfig, anneal
from repro.core.parallel import (RestartJob, RestartOutcome, best_outcome,
                                 rebuild_binding, run_restart, run_restarts)
from repro.core.allocator import (AllocationResult, SalsaAllocator,
                                  TraditionalAllocator,
                                  salsa_from_traditional)

__all__ = [
    "AllocationResult", "AnnealConfig", "Binding", "ImproveConfig",
    "ImproveStats", "MoveCounters", "MoveSet", "RestartJob",
    "RestartOutcome", "SalsaAllocator", "TraditionalAllocator", "anneal",
    "best_outcome", "fixup_segment", "improve", "initial_allocation",
    "polish", "rebuild_binding", "run_restart", "run_restarts",
    "salsa_from_traditional",
]
