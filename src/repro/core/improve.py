"""Randomized iterative improvement (paper Sec. 4).

The paper found simulated annealing "produced poor results and seldom
converged" and used this scheme instead:

* several **trials** are attempted (analogous to annealing temperature
  levels); each trial attempts a fixed number of moves;
* a move is selected by randomly picking a move *type* (weighted so that
  complex moves are picked less often) and then random elements;
* downhill moves (cost decrease) are always accepted; a fixed number of
  uphill moves are accepted at the *beginning* of each trial (letting the
  search jump to a new region), after which only downhill moves are kept;
* the best allocation seen anywhere is recorded, and the search stops when
  three successive trials bring no improvement (or a trial cap is hit).

:class:`ImproveStats` is full search telemetry, not just a counter bag:
per-trial wall-clock and uphill-budget consumption, per-move-type
attempt/apply/accept/rollback counters, and the best-cost trace with the
move index at which each improvement landed.  It round-trips through
``to_json()`` / ``from_json()`` so multi-process restarts (see
:mod:`repro.core.parallel`) and offline analysis can exchange it freely.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.rng import RngLike, WeightedChooser, make_rng
from repro.core.binding import Binding
from repro.core.moves import MoveSet, rollback
from repro.core.polish import polish
from repro.datapath.cost import CostBreakdown, CostWeights
from repro.verify.sanitizer import make_sanitizer


@dataclass
class ImproveConfig:
    """Knobs of the iterative-improvement search."""

    max_trials: int = 24
    moves_per_trial: int = 1500
    uphill_per_trial: int = 12
    idle_trials_stop: int = 3
    #: start every trial from the best allocation seen so far (iterated
    #: local search); the uphill budget then acts as the trial's "kick"
    restart_from_best: bool = True
    #: run deterministic hill-climbing sweeps (:mod:`repro.core.polish`)
    #: before the first trial and at the end of every trial
    polish_trials: bool = True
    move_set: MoveSet = field(default_factory=MoveSet)
    seed: RngLike = 0
    #: run the shadow-state sanitizer (:mod:`repro.verify.sanitizer`)
    #: alongside the search; also forced on by ``REPRO_SANITIZE=1``
    sanitize: bool = False
    #: probe density: every Nth attempt gets a rollback round-trip check
    #: and every Nth acceptance a full shadow-rebuild equivalence check
    sanitize_every: int = 64
    #: accept-test via the O(1) ``Binding.total_cost()`` fast path; off
    #: reverts to building a full ``CostBreakdown`` per move (debug knob —
    #: both paths are bit-identical, asserted by tests and the sanitizer)
    fast_cost: bool = True
    #: when > 0, sample every Nth attempt with ``time.perf_counter_ns``
    #: and accumulate per-phase totals (propose/evaluate/rollback/restore)
    #: into ``ImproveStats.phase_ns`` / ``phase_samples``
    profile_every: int = 0
    #: fuzz/stress knob: when > 0, every Nth trial round-trips the live
    #: state through ``clone_state()`` → ``restore_state(best)`` →
    #: ``restore_state(clone)`` before searching.  Content-preserving (the
    #: trial still starts from exactly the state it would have), but it
    #: drives the diff-replay restore machinery across a real diff twice
    #: per churn, so a restore bug surfaces as a sanitizer/differential
    #: failure instead of hiding behind the rare once-per-trial restore.
    #: Not trajectory-neutral: restores reconcile dict iteration order, so
    #: runs with different churn settings are each deterministic but not
    #: comparable move-for-move
    restore_churn: int = 0
    #: cooperative cancellation/deadline hook: checked once per attempted
    #: move (and between trials); when it returns True the search stops,
    #: restores the best allocation seen so far and sets
    #: ``ImproveStats.stopped_early``.  Not part of the search identity
    #: (excluded from comparison) and typically not picklable — strip it
    #: before shipping configs across process boundaries.
    should_stop: Optional[Callable[[], bool]] = field(
        default=None, repr=False, compare=False)


@dataclass
class MoveCounters:
    """Per-move-type tallies of one improvement run."""

    attempts: int = 0   # times the move type was drawn
    applies: int = 0    # times it mutated the binding
    accepts: int = 0    # applications kept (downhill or uphill budget)
    rollbacks: int = 0  # applications reverted
    uphill: int = 0     # accepts that consumed uphill budget

    def to_dict(self) -> Dict[str, int]:
        return {"attempts": self.attempts, "applies": self.applies,
                "accepts": self.accepts, "rollbacks": self.rollbacks,
                "uphill": self.uphill}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "MoveCounters":
        return cls(**data)


def _cost_to_dict(cost: Optional[CostBreakdown]) -> Optional[Dict[str, Any]]:
    if cost is None:
        return None
    w = cost.weights
    weights = {"fu": w.fu, "register": w.register,
               "mux": w.mux, "wire": w.wire}
    if w.latency:
        weights["latency"] = w.latency
    return {"fu_count": cost.fu_count, "fu_area": cost.fu_area,
            "register_count": cost.register_count,
            "mux_count": cost.mux_count, "wire_count": cost.wire_count,
            "mux_depth": cost.mux_depth, "weights": weights}


def _cost_from_dict(data: Optional[Dict[str, Any]]) \
        -> Optional[CostBreakdown]:
    if data is None:
        return None
    return CostBreakdown(
        fu_count=data["fu_count"], fu_area=data["fu_area"],
        register_count=data["register_count"],
        mux_count=data["mux_count"], wire_count=data["wire_count"],
        mux_depth=data.get("mux_depth", 0),
        weights=CostWeights(**data["weights"]))


@dataclass
class ImproveStats:
    """Search telemetry returned by :func:`improve`."""

    trials_run: int = 0
    moves_attempted: int = 0
    moves_applied: int = 0
    moves_accepted: int = 0
    uphill_accepted: int = 0
    initial_cost: Optional[CostBreakdown] = None
    final_cost: Optional[CostBreakdown] = None
    per_move_accepts: Dict[str, int] = field(default_factory=dict)
    cost_trace: List[float] = field(default_factory=list)
    # -------------------------------------------------- extended telemetry
    #: per-move-type attempt/apply/accept/rollback/uphill counters
    per_move: Dict[str, MoveCounters] = field(default_factory=dict)
    #: wall-clock seconds of each trial (polish included)
    trial_seconds: List[float] = field(default_factory=list)
    #: uphill acceptances consumed by each trial (budget usage)
    uphill_used: List[int] = field(default_factory=list)
    #: ``(move_attempt_index, best_total)`` every time the best improves;
    #: index 0 is the starting point (after the initial polish, if any)
    best_trace: List[Tuple[int, float]] = field(default_factory=list)
    #: total wall-clock seconds of the run
    seconds: float = 0.0
    #: the integer seed the run used, when one was given (for replay)
    seed: Optional[int] = None
    #: sampled per-phase nanosecond totals (``ImproveConfig.profile_every``)
    phase_ns: Dict[str, int] = field(default_factory=dict)
    #: number of samples behind each ``phase_ns`` total
    phase_samples: Dict[str, int] = field(default_factory=dict)
    #: True when the run was cut short by ``ImproveConfig.should_stop``
    #: (deadline or cancellation) rather than by convergence or trial cap
    stopped_early: bool = False

    def add_phase(self, phase: str, elapsed_ns: int) -> None:
        """Accumulate one ``perf_counter_ns`` sample for *phase*."""
        self.phase_ns[phase] = self.phase_ns.get(phase, 0) + elapsed_ns
        self.phase_samples[phase] = self.phase_samples.get(phase, 0) + 1

    def counters_for(self, name: str) -> MoveCounters:
        counters = self.per_move.get(name)
        if counters is None:
            counters = self.per_move[name] = MoveCounters()
        return counters

    def summary(self) -> str:
        initial = self.initial_cost.total if self.initial_cost else float("nan")
        final = self.final_cost.total if self.final_cost else float("nan")
        return (f"improve: {self.trials_run} trials, "
                f"{self.moves_attempted} attempts, "
                f"{self.moves_accepted} accepted "
                f"({self.uphill_accepted} uphill); cost {initial:.1f} -> "
                f"{final:.1f} in {self.seconds:.2f}s")

    # ------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trials_run": self.trials_run,
            "moves_attempted": self.moves_attempted,
            "moves_applied": self.moves_applied,
            "moves_accepted": self.moves_accepted,
            "uphill_accepted": self.uphill_accepted,
            "initial_cost": _cost_to_dict(self.initial_cost),
            "final_cost": _cost_to_dict(self.final_cost),
            "per_move_accepts": dict(self.per_move_accepts),
            "cost_trace": list(self.cost_trace),
            "per_move": {name: c.to_dict()
                         for name, c in sorted(self.per_move.items())},
            "trial_seconds": list(self.trial_seconds),
            "uphill_used": list(self.uphill_used),
            "best_trace": [[index, total]
                           for index, total in self.best_trace],
            "seconds": self.seconds,
            "seed": self.seed,
            "phase_ns": dict(self.phase_ns),
            "phase_samples": dict(self.phase_samples),
            "stopped_early": self.stopped_early,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ImproveStats":
        # telemetry fields added after the first release fall back to the
        # dataclass defaults, so stats JSON written by older versions (or
        # hand-trimmed fixtures) still loads
        return cls(
            trials_run=data["trials_run"],
            moves_attempted=data["moves_attempted"],
            moves_applied=data["moves_applied"],
            moves_accepted=data["moves_accepted"],
            uphill_accepted=data["uphill_accepted"],
            initial_cost=_cost_from_dict(data["initial_cost"]),
            final_cost=_cost_from_dict(data["final_cost"]),
            per_move_accepts=dict(data["per_move_accepts"]),
            cost_trace=list(data["cost_trace"]),
            per_move={name: MoveCounters.from_dict(c)
                      for name, c in data.get("per_move", {}).items()},
            trial_seconds=list(data.get("trial_seconds", [])),
            uphill_used=list(data.get("uphill_used", [])),
            best_trace=[(index, total)
                        for index, total in data.get("best_trace", [])],
            seconds=data.get("seconds", 0.0),
            seed=data.get("seed"),
            phase_ns=dict(data.get("phase_ns", {})),
            phase_samples=dict(data.get("phase_samples", {})),
            stopped_early=data.get("stopped_early", False),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ImproveStats":
        return cls.from_dict(json.loads(text))


def improve(binding: Binding,
            config: Optional[ImproveConfig] = None) -> ImproveStats:
    """Run iterative improvement in place; the binding ends at the best
    allocation found."""
    if config is None:
        config = ImproveConfig()
    started = time.perf_counter()
    rng = make_rng(config.seed)
    moves = config.move_set.enabled_moves()
    if not moves:
        raise ValueError("no moves enabled")
    chooser = WeightedChooser([m[0] for m in moves], [m[2] for m in moves])
    fns = {m[0]: m[1] for m in moves}

    stats = ImproveStats()
    if isinstance(config.seed, int):
        stats.seed = config.seed
    sanitizer = make_sanitizer(
        binding, config.sanitize, config.sanitize_every,
        context=f"improve(seed={config.seed!r})")
    stats.initial_cost = binding.cost()
    current = stats.initial_cost.total
    if config.polish_trials:
        current = polish(binding, config.move_set)
    if sanitizer is not None:
        sanitizer.check()
    best = current
    best_state = binding.clone_state()
    stats.best_trace.append((0, best))
    idle_trials = 0
    profile_every = config.profile_every
    # hot-loop locals: the inner loop runs tens of thousands of times per
    # second, so attribute lookups on these are hoisted out of it
    fast_cost = config.fast_cost
    should_stop = config.should_stop
    choose = chooser.choose
    begin_move = binding.begin_move
    commit_move = binding.commit_move
    abort_move = binding.abort_move
    total_cost = binding.total_cost
    full_cost = binding.cost
    counters_map = stats.per_move

    restore_churn = config.restore_churn
    for _trial in range(config.max_trials):
        trial_started = time.perf_counter()
        stats.trials_run += 1
        if restore_churn > 0 and _trial % restore_churn == 0:
            churn_snap = binding.clone_state()
            binding.restore_state(best_state)
            binding.restore_state(churn_snap)
            if sanitizer is not None:
                sanitizer.check()
        if config.restart_from_best and current > best + 1e-9:
            if profile_every:
                tick = time.perf_counter_ns()
                binding.restore_state(best_state)
                stats.add_phase("restore", time.perf_counter_ns() - tick)
            else:
                binding.restore_state(best_state)
            current = best
        uphill_left = config.uphill_per_trial
        improved_this_trial = False
        attempted = stats.moves_attempted
        for _ in range(config.moves_per_trial):
            if should_stop is not None and should_stop():
                stats.stopped_early = True
                break
            attempted += 1
            sampled = profile_every and attempted % profile_every == 0
            name = choose(rng)
            counters = counters_map.get(name)
            if counters is None:
                counters = counters_map[name] = MoveCounters()
            counters.attempts += 1
            if sanitizer is not None:
                sanitizer.pre_move(name, attempted)
            begin_move()
            if sampled:
                tick = time.perf_counter_ns()
                undos = fns[name](binding, rng)
                stats.add_phase("propose", time.perf_counter_ns() - tick)
            else:
                undos = fns[name](binding, rng)
            if undos is None:
                commit_move()  # no-op move: nothing to revert
                continue
            counters.applies += 1
            if sampled:
                tick = time.perf_counter_ns()
            new_cost = total_cost() if fast_cost else full_cost().total
            if sampled:
                stats.add_phase("evaluate", time.perf_counter_ns() - tick)
            accept = new_cost <= current
            if not accept and uphill_left > 0:
                accept = True
                uphill_left -= 1
                stats.uphill_accepted += 1
                counters.uphill += 1
            if accept:
                commit_move()
                counters.accepts += 1
                current = new_cost
                if current < best - 1e-9:
                    best = current
                    best_state = binding.clone_state()
                    stats.best_trace.append((attempted, best))
                    improved_this_trial = True
                if sanitizer is not None:
                    sanitizer.after_accept(name, attempted)
            else:
                counters.rollbacks += 1
                # abort_move replays the write journal; the undo closures
                # in `undos` are not needed on this path
                if sampled:
                    tick = time.perf_counter_ns()
                    abort_move()
                    stats.add_phase("rollback",
                                    time.perf_counter_ns() - tick)
                else:
                    abort_move()
                if sanitizer is not None:
                    sanitizer.after_rollback(name, attempted)
        stats.moves_attempted = attempted
        if stats.stopped_early:
            # the trial was cut short: record its partial telemetry, then
            # fall through to the best-state restore below
            stats.cost_trace.append(current)
            stats.uphill_used.append(config.uphill_per_trial - uphill_left)
            stats.trial_seconds.append(time.perf_counter() - trial_started)
            break
        if config.polish_trials:
            current = polish(binding, config.move_set)
            if current < best - 1e-9:
                best = current
                best_state = binding.clone_state()
                stats.best_trace.append((stats.moves_attempted, best))
                improved_this_trial = True
        stats.cost_trace.append(current)
        stats.uphill_used.append(config.uphill_per_trial - uphill_left)
        stats.trial_seconds.append(time.perf_counter() - trial_started)
        if improved_this_trial:
            idle_trials = 0
        else:
            idle_trials += 1
            if idle_trials >= config.idle_trials_stop:
                break

    # the aggregate tallies are derivable from the per-move counters, so the
    # hot loop maintains only the latter and these are filled in once here
    stats.moves_applied = sum(c.applies for c in counters_map.values())
    stats.moves_accepted = sum(c.accepts for c in counters_map.values())
    stats.per_move_accepts = {name: c.accepts
                              for name, c in sorted(counters_map.items())
                              if c.accepts}

    binding.restore_state(best_state)
    if sanitizer is not None:
        sanitizer.check()
    stats.final_cost = binding.cost()
    stats.seconds = time.perf_counter() - started
    return stats
