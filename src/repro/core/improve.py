"""Randomized iterative improvement (paper Sec. 4).

The paper found simulated annealing "produced poor results and seldom
converged" and used this scheme instead:

* several **trials** are attempted (analogous to annealing temperature
  levels); each trial attempts a fixed number of moves;
* a move is selected by randomly picking a move *type* (weighted so that
  complex moves are picked less often) and then random elements;
* downhill moves (cost decrease) are always accepted; a fixed number of
  uphill moves are accepted at the *beginning* of each trial (letting the
  search jump to a new region), after which only downhill moves are kept;
* the best allocation seen anywhere is recorded, and the search stops when
  three successive trials bring no improvement (or a trial cap is hit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.rng import RngLike, make_rng, weighted_choice
from repro.core.binding import Binding
from repro.core.moves import MoveSet, rollback
from repro.core.polish import polish
from repro.datapath.cost import CostBreakdown


@dataclass
class ImproveConfig:
    """Knobs of the iterative-improvement search."""

    max_trials: int = 24
    moves_per_trial: int = 1500
    uphill_per_trial: int = 12
    idle_trials_stop: int = 3
    #: start every trial from the best allocation seen so far (iterated
    #: local search); the uphill budget then acts as the trial's "kick"
    restart_from_best: bool = True
    #: run deterministic hill-climbing sweeps (:mod:`repro.core.polish`)
    #: before the first trial and at the end of every trial
    polish_trials: bool = True
    move_set: MoveSet = field(default_factory=MoveSet)
    seed: RngLike = 0


@dataclass
class ImproveStats:
    """Bookkeeping returned by :func:`improve`."""

    trials_run: int = 0
    moves_attempted: int = 0
    moves_applied: int = 0
    moves_accepted: int = 0
    uphill_accepted: int = 0
    initial_cost: Optional[CostBreakdown] = None
    final_cost: Optional[CostBreakdown] = None
    per_move_accepts: Dict[str, int] = field(default_factory=dict)
    cost_trace: List[float] = field(default_factory=list)

    def summary(self) -> str:
        initial = self.initial_cost.total if self.initial_cost else float("nan")
        final = self.final_cost.total if self.final_cost else float("nan")
        return (f"improve: {self.trials_run} trials, "
                f"{self.moves_attempted} attempts, "
                f"{self.moves_accepted} accepted "
                f"({self.uphill_accepted} uphill); cost {initial:.1f} -> "
                f"{final:.1f}")


def improve(binding: Binding, config: ImproveConfig = ImproveConfig()) \
        -> ImproveStats:
    """Run iterative improvement in place; the binding ends at the best
    allocation found."""
    rng = make_rng(config.seed)
    moves = config.move_set.enabled_moves()
    if not moves:
        raise ValueError("no moves enabled")
    names = [m[0] for m in moves]
    fns = {m[0]: m[1] for m in moves}
    weights = [m[2] for m in moves]

    stats = ImproveStats()
    stats.initial_cost = binding.cost()
    current = stats.initial_cost.total
    if config.polish_trials:
        current = polish(binding, config.move_set)
    best = current
    best_state = binding.clone_state()
    idle_trials = 0

    for _trial in range(config.max_trials):
        stats.trials_run += 1
        if config.restart_from_best and current > best + 1e-9:
            binding.restore_state(best_state)
            current = best
        uphill_left = config.uphill_per_trial
        improved_this_trial = False
        for _ in range(config.moves_per_trial):
            stats.moves_attempted += 1
            name = weighted_choice(rng, names, weights)
            undos = fns[name](binding, rng)
            if undos is None:
                continue
            stats.moves_applied += 1
            new_cost = binding.cost().total
            accept = new_cost <= current
            if not accept and uphill_left > 0:
                accept = True
                uphill_left -= 1
                stats.uphill_accepted += 1
            if accept:
                stats.moves_accepted += 1
                stats.per_move_accepts[name] = \
                    stats.per_move_accepts.get(name, 0) + 1
                current = new_cost
                if current < best - 1e-9:
                    best = current
                    best_state = binding.clone_state()
                    improved_this_trial = True
            else:
                rollback(undos)
                binding.flush()
        if config.polish_trials:
            current = polish(binding, config.move_set)
            if current < best - 1e-9:
                best = current
                best_state = binding.clone_state()
                improved_this_trial = True
        stats.cost_trace.append(current)
        if improved_this_trial:
            idle_trials = 0
        else:
            idle_trials += 1
            if idle_trials >= config.idle_trials_stop:
                break

    binding.restore_state(best_state)
    stats.final_cost = binding.cost()
    return stats
