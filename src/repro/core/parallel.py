"""Parallel multi-restart search engine.

The paper leans on multiple random restarts ("multiple trials are
sometimes necessary to find the best result", Sec. 5) and every restart is
independent, so the restart loop is the natural seam to parallelize.  This
module is that seam:

* a :class:`RestartJob` is a self-contained, picklable description of one
  restart: the schedule, hardware, and the ordered improvement configs to
  run (e.g. the traditional warm-start pass followed by the full extended
  search), each carrying its own pre-derived child seed;
* :func:`run_restart` executes one job — rebuild the deterministic initial
  allocation, run the configured improvement passes, and return only the
  compact :class:`RestartOutcome` (decision-state snapshot, cost,
  telemetry) so no live :class:`~repro.core.binding.Binding` ever crosses a
  process boundary;
* :func:`run_restarts` fans jobs out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (fork start method),
  falling back to a deterministic in-process loop for ``workers=1``, for
  platforms without fork, or when a pool cannot be created.

Because a job's outcome is a pure function of its content (seeds come from
an explicit :class:`repro.rng.SeedStream`, never shared RNG state), the
results — and the winner picked by :func:`best_outcome` — are bit-identical
for any worker count.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, \
    Tuple

from repro.errors import AllocationError
from repro.datapath.cost import CostBreakdown, CostWeights
from repro.datapath.units import FU, Register
from repro.sched.schedule import Schedule
from repro.core.binding import Binding
from repro.core.improve import ImproveConfig, ImproveStats, improve
from repro.core.initial import initial_allocation
from repro.verify.sanitizer import sanitize_enabled

logger = logging.getLogger(__name__)


class StopSignal:
    """A picklable cooperative stop condition for cross-process workers.

    A live ``should_stop`` closure cannot cross a process boundary (it
    must observe its caller's state), so process workers get this instead:

    * ``deadline`` — an absolute :func:`time.monotonic` instant.  With the
      fork start method on Linux ``CLOCK_MONOTONIC`` is system-wide, so a
      deadline computed in the parent is directly comparable in a child;
    * ``flag_path`` — a sentinel file whose *existence* means "stop now".
      The parent signals cancellation by creating the file (see
      ``repro.service.jobs``); existence checks are throttled to one
      ``stat`` every ``check_every`` calls so the per-move cost stays in
      the nanoseconds.

    Once either condition trips the signal latches: every later call
    returns True without touching the clock or the filesystem again.
    """

    __slots__ = ("deadline", "flag_path", "check_every", "_calls",
                 "_tripped")

    def __init__(self, deadline: Optional[float] = None,
                 flag_path: Optional[str] = None,
                 check_every: int = 32) -> None:
        self.deadline = deadline
        self.flag_path = flag_path
        self.check_every = max(1, check_every)
        self._calls = 0
        self._tripped = False

    def __call__(self) -> bool:
        if self._tripped:
            return True
        if self.deadline is not None and time.monotonic() >= self.deadline:
            self._tripped = True
            return True
        if self.flag_path is not None:
            self._calls += 1
            if self._calls >= self.check_every:
                self._calls = 0
                if os.path.exists(self.flag_path):
                    self._tripped = True
                    return True
        return False

    def __getstate__(self) -> Dict[str, Any]:
        # the latch and throttle counter are per-process scratch state
        return {"deadline": self.deadline, "flag_path": self.flag_path,
                "check_every": self.check_every}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.deadline = state["deadline"]
        self.flag_path = state["flag_path"]
        self.check_every = state["check_every"]
        self._calls = 0
        self._tripped = False


def is_process_safe_callback(callback: Optional[object]) -> bool:
    """True when a ``should_stop`` value may cross a process boundary."""
    return callback is None or isinstance(callback, StopSignal)


@dataclass(frozen=True)
class RestartJob:
    """Everything one worker needs to run one independent restart."""

    index: int
    schedule: Schedule
    fus: Tuple[FU, ...]
    regs: Tuple[Register, ...]
    #: improvement passes run back-to-back on the same binding, in order;
    #: each config carries its own independent child seed
    configs: Tuple[ImproveConfig, ...]
    weights: CostWeights = CostWeights()
    allow_split: bool = True
    #: optional decision-state snapshot (``Binding.clone_state`` /
    #: :class:`~repro.core.arraystate.CompactState`) restored on top of the
    #: constructive initial allocation before the first improvement pass —
    #: the warm-start seam used by ``repro.service`` to reuse a cached
    #: allocation of the same problem shape.  Compact states pickle as flat
    #: integer columns, so shipping one to a worker never deep-copies
    #: per-op objects.
    warm_state: Optional[Mapping[str, object]] = None


@dataclass
class RestartOutcome:
    """What one restart sends back to the parent process."""

    index: int
    #: :meth:`Binding.clone_state` snapshot of the restart's best binding
    state: Mapping[str, object]
    cost: CostBreakdown
    stats: List[ImproveStats] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def moves_per_sec(self) -> float:
        """Search throughput of this restart (0.0 when untimed)."""
        if self.seconds <= 0.0:
            return 0.0
        attempted = sum(s.moves_attempted for s in self.stats)
        return attempted / self.seconds


def run_restart(job: RestartJob) -> RestartOutcome:
    """Execute one restart job (used directly and as the pool worker)."""
    started = time.perf_counter()
    binding = initial_allocation(job.schedule, list(job.fus),
                                 list(job.regs), weights=job.weights,
                                 allow_split=job.allow_split)
    warm_restore_ns = 0
    if job.warm_state is not None:
        tick = time.perf_counter_ns()
        binding.restore_state(job.warm_state)
        warm_restore_ns = time.perf_counter_ns() - tick
    configs = job.configs
    if sanitize_enabled():
        # REPRO_SANITIZE=1 reaches workers through the environment even
        # when the job's configs were prepared before it was set
        configs = tuple(replace(config, sanitize=True)
                        for config in configs)
    stats = [improve(binding, config) for config in configs]
    if warm_restore_ns and stats and configs[0].profile_every:
        # the warm-start restore happens outside improve()'s own sampling
        # window; fold it into the first pass so phase reports see every
        # restore the restart performed
        stats[0].add_phase("restore", warm_restore_ns)
    return RestartOutcome(index=job.index, state=binding.clone_state(),
                          cost=binding.cost(), stats=stats,
                          seconds=time.perf_counter() - started)


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork start method, or ``None`` where it is unavailable.

    Fork keeps workers cheap (no re-import of the package per job) and is
    the only start method that works from interactive ``__main__`` scripts
    without an import guard; platforms without it (Windows, some sandboxes)
    use the deterministic in-process path instead.
    """
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except (ValueError, OSError) as exc:
        # ValueError: the interpreter build does not know the method;
        # OSError: locked-down sandboxes where querying process start
        # methods is itself forbidden.  Anything else is a real bug and
        # must surface, not silently degrade to the serial path.
        logger.warning("fork start method unavailable (%s); "
                       "restarts will run in-process", exc)
    return None


def run_restarts(jobs: Iterable[RestartJob],
                 workers: int = 1) -> List[RestartOutcome]:
    """Run every job and return outcomes in job order.

    ``workers=1`` (or a single job, or no usable fork context) runs
    in-process; anything else fans out over a process pool.  Either path
    produces identical outcomes because each job is self-contained.
    """
    job_list = list(jobs)
    workers = max(1, int(workers))
    context = _fork_context()
    # a live should_stop callback (deadline/cancellation closure) must keep
    # observing its caller's state, so those jobs never cross a process
    # boundary — the serial path runs them in-process.  A picklable
    # :class:`StopSignal` carries its own deadline/flag-file condition and
    # is explicitly process-safe.
    has_callback = any(not is_process_safe_callback(config.should_stop)
                       for job in job_list for config in job.configs)
    if (workers == 1 or len(job_list) <= 1 or context is None
            or has_callback):
        return [run_restart(job) for job in job_list]
    try:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(job_list)),
                                   mp_context=context)
    except (OSError, RuntimeError, PermissionError) as exc:
        # pool creation can fail in constrained environments (no /dev/shm,
        # process limits); the serial path computes the same result
        logger.warning("process pool unavailable (%s: %s); running %d "
                       "restart(s) in-process", type(exc).__name__, exc,
                       len(job_list))
        return [run_restart(job) for job in job_list]
    with pool:
        try:
            return list(pool.map(run_restart, job_list))
        except BrokenExecutor:
            # pool *infrastructure* died mid-run (a worker OOM-killed or
            # terminated by the platform) — recompute serially, the
            # outcome is identical.  A worker raising an ordinary
            # exception is NOT caught here: that is a bug in the search
            # itself and propagates to the caller with the worker's
            # traceback attached (concurrent.futures chains it as
            # __cause__), instead of being silently swallowed by a
            # serial re-run.
            logger.warning("process pool broke mid-run; recomputing %d "
                           "restart(s) in-process", len(job_list),
                           exc_info=True)
            return [run_restart(job) for job in job_list]


def best_outcome(outcomes: Sequence[RestartOutcome]) -> RestartOutcome:
    """The winning restart: lowest total cost, earliest index on ties.

    The index tie-break makes the winner independent of completion order,
    which keeps multi-worker runs bit-identical to serial ones.
    """
    if not outcomes:
        raise AllocationError("no restart outcomes to choose from")
    return min(outcomes, key=lambda o: (o.cost.total, o.index))


def rebuild_binding(job: RestartJob, outcome: RestartOutcome) -> Binding:
    """Materialize a full :class:`Binding` from a restart outcome."""
    binding = Binding(job.schedule, list(job.fus), list(job.regs),
                      weights=job.weights)
    binding.restore_state(outcome.state)
    return binding
