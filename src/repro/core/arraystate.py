"""Compact array-backed snapshots of the binding decision state.

:meth:`repro.core.binding.Binding.clone_state` returns a
:class:`CompactState`: six flat integer columns (interned through the
binding's :class:`~repro.core.interning.BindingTables`) plus the tiny
pass-through table, instead of a deep dict-of-dicts copy.  Cloning is a
handful of C-speed ``array`` slices, diffing two snapshots is an array
compare, and the whole object pickles compactly for the parallel restart
engine.

A snapshot cloned from a live binding also carries a
:class:`DerivedSnapshot` — shallow copies of the incrementally-maintained
derived state (occupancy, FU tokens, load counters, per-site event lists
and the connection-ledger refcount columns).  ``restore_state`` uses it to
diff-replay a same-binding restore without re-deriving any site;
cross-binding consumers (the sanitizer's shadow rebuild, ``duplicate``,
process-boundary warm starts) ignore it and re-derive from the decision
columns alone, which is what keeps the shadow-rebuild referee independent
of the live derived state.

For compatibility with the name-keyed JSON codecs
(:func:`repro.verify.sanitizer.encode_state`), a :class:`CompactState` is
also a read-only :class:`~collections.abc.Mapping` with the legacy
sections (``state["op_fu"]`` etc.), materialized on demand; ``placements``
materializes in live-dict insertion order (ascending ``seg_seq``), so a
name-keyed restore of ``state.to_mapping()`` reproduces the same dict
order a direct restore would.
"""

from __future__ import annotations

from array import array
from collections.abc import Mapping
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.interning import BindingTables

#: the legacy snapshot sections, in the order ``clone_state`` emitted them
_SECTIONS = ("op_fu", "op_swap", "placements", "read_src", "out_src",
             "pt_impl")

#: payload marker for the JSON codec (:meth:`CompactState.to_payload`)
PAYLOAD_FORMAT = "compact-state-v1"


class DerivedSnapshot:
    """Shallow clone-time copies of a binding's derived state.

    Everything here is redundant with the decision columns (it can be
    re-derived from them), so it is excluded from snapshot equality and
    from the JSON payload; it exists purely so a same-binding restore can
    bulk-copy instead of re-derive.  The site-event lists are shared, not
    copied — the flush engine replaces event lists wholesale and never
    mutates one in place, so sharing is safe.
    """

    __slots__ = ("reg_occ", "fu_tokens", "fu_load", "reg_load",
                 "fu_by_type", "counters", "site_events", "ledger")

    def __init__(self, reg_occ: Dict, fu_tokens: Dict, fu_load: Dict,
                 reg_load: Dict, fu_by_type: Dict,
                 counters: Tuple[int, int, float], site_events: Dict,
                 ledger: Tuple) -> None:
        self.reg_occ = reg_occ
        self.fu_tokens = fu_tokens
        self.fu_load = fu_load
        self.reg_load = reg_load
        self.fu_by_type = fu_by_type
        self.counters = counters
        self.site_events = site_events
        self.ledger = ledger


class CompactState(Mapping):
    """One binding decision state as dense-id integer columns.

    Columns (all indexed by the ids of ``tables``):

    * ``op_fu`` — FU id per op, ``-1`` when unbound;
    * ``op_swap`` — 0/1 operand-reversal flag per op (the legacy dicts'
      explicit-``False``-vs-absent distinction is semantically void and is
      deliberately collapsed);
    * ``read_src`` / ``out_src`` — register id per read/output site,
      ``-1`` when unset;
    * ``seg`` — :class:`~repro.core.interning.PlacementPool` id per value
      segment, ``0`` when unplaced;
    * ``seg_seq`` — the segment's insertion tick; ascending ``seg_seq``
      over placed segments *is* the placements dict's iteration order,
      which is what lets a diff-replay restore reproduce the exact dict
      order (and therefore the exact search trajectory) of a name-keyed
      restore.

    Equality compares decision content only: columns, decoded placements
    and the pass-through table — never ``seg_seq`` (iteration order is not
    a decision) and never the derived payload.
    """

    __slots__ = ("tables", "op_fu", "op_swap", "read_src", "out_src",
                 "seg", "seg_seq", "pt", "derived")

    def __init__(self, tables: BindingTables, op_fu: array, op_swap: array,
                 read_src: array, out_src: array, seg: array,
                 seg_seq: array, pt: Tuple,
                 derived: Optional[DerivedSnapshot] = None) -> None:
        self.tables = tables
        self.op_fu = op_fu
        self.op_swap = op_swap
        self.read_src = read_src
        self.out_src = out_src
        self.seg = seg
        self.seg_seq = seg_seq
        self.pt = pt  # ((value, dst_step, dst_reg), (src_reg, fu, port))...
        self.derived = derived

    # --------------------------------------------------- legacy dict views

    def __getitem__(self, key: str) -> Dict:
        if key == "op_fu":
            fu_names = self.tables.fu_names
            return {self.tables.op_names[i]: fu_names[f]
                    for i, f in enumerate(self.op_fu) if f >= 0}
        if key == "op_swap":
            return {self.tables.op_names[i]: True
                    for i, f in enumerate(self.op_swap) if f}
        if key == "placements":
            tuples = self.tables.pool.tuples
            seg = self.seg
            seg_keys = self.tables.seg_keys
            order = sorted((self.seg_seq[i], i)
                           for i, pid in enumerate(seg) if pid)
            return {seg_keys[i]: tuples[seg[i]] for _tick, i in order}
        if key == "read_src":
            reg_names = self.tables.reg_names
            return {self.tables.read_keys[i]: reg_names[r]
                    for i, r in enumerate(self.read_src) if r >= 0}
        if key == "out_src":
            reg_names = self.tables.reg_names
            return {self.tables.out_values[i]: reg_names[r]
                    for i, r in enumerate(self.out_src) if r >= 0}
        if key == "pt_impl":
            return dict(self.pt)
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return iter(_SECTIONS)

    def __len__(self) -> int:
        return len(_SECTIONS)

    def to_mapping(self) -> Dict[str, Dict]:
        """The full legacy name-keyed snapshot (restorable anywhere)."""
        return {section: self[section] for section in _SECTIONS}

    # -------------------------------------------------------------- equality

    def __eq__(self, other: Any) -> Any:
        if isinstance(other, CompactState):
            if not self.tables.same_problem(other.tables):
                return False
            if not (self.op_fu == other.op_fu
                    and self.op_swap == other.op_swap
                    and self.read_src == other.read_src
                    and self.out_src == other.out_src
                    and self.pt == other.pt):
                return False
            if self.tables.pool is other.tables.pool:
                return self.seg == other.seg
            mine = self.tables.pool.tuples
            theirs = other.tables.pool.tuples
            return all(mine[a] == theirs[b]
                       for a, b in zip(self.seg, other.seg))
        if isinstance(other, Mapping):
            return self._eq_mapping(other)
        return NotImplemented

    def _eq_mapping(self, other: Mapping) -> Any:
        """Content equality against a legacy name-keyed snapshot dict."""
        try:
            other_swap = {op for op, flag in other["op_swap"].items()
                          if flag}
            return (self["op_fu"] == dict(other["op_fu"])
                    and set(self["op_swap"]) == other_swap
                    and self["placements"] == {
                        key: tuple(regs)
                        for key, regs in other["placements"].items()}
                    and self["read_src"] == dict(other["read_src"])
                    and self["out_src"] == dict(other["out_src"])
                    and self["pt_impl"] == {
                        key: tuple(impl)
                        for key, impl in other["pt_impl"].items()})
        except (KeyError, TypeError, AttributeError):
            return NotImplemented

    # dict-valued equality is the only comparison snapshots need; they are
    # never hashed (defining __eq__ disables the inherited hash anyway)
    __hash__ = None  # type: ignore[assignment]

    # ------------------------------------------------------------- pickling

    def __getstate__(self) -> Tuple:
        # the derived payload only speeds up a same-binding restore, and
        # table identity never survives a process boundary — drop it so a
        # pickled snapshot ships just the decision columns
        return (self.tables, self.op_fu, self.op_swap, self.read_src,
                self.out_src, self.seg, self.seg_seq, self.pt)

    def __setstate__(self, state: Tuple) -> None:
        (self.tables, self.op_fu, self.op_swap, self.read_src,
         self.out_src, self.seg, self.seg_seq, self.pt) = state
        self.derived = None

    def __repr__(self) -> str:
        placed = sum(1 for pid in self.seg if pid)
        return (f"CompactState(ops={len(self.op_fu)}, segs={placed}/"
                f"{len(self.seg)}, pt={len(self.pt)}, "
                f"derived={self.derived is not None})")

    # ------------------------------------------------------------ JSON codec

    def to_payload(self) -> Dict[str, Any]:
        """JSON-able compact encoding (decision columns + tables, no
        derived state, no insertion order — a decoded payload restores in
        sorted-segment order, matching the legacy name-keyed codec)."""
        return {
            "format": PAYLOAD_FORMAT,
            "tables": {
                "ops": list(self.tables.op_names),
                "fus": list(self.tables.fu_names),
                "regs": list(self.tables.reg_names),
                "segs": [[value, step]
                         for value, step in self.tables.seg_keys],
                "reads": [[op, port] for op, port in self.tables.read_keys],
                "outs": list(self.tables.out_values),
            },
            "pool": [list(regs) for regs in self.tables.pool.tuples],
            "op_fu": list(self.op_fu),
            "op_swap": list(self.op_swap),
            "read_src": list(self.read_src),
            "out_src": list(self.out_src),
            "seg": list(self.seg),
            "pt": [[value, step, reg, list(impl)]
                   for (value, step, reg), impl in self.pt],
        }

    @classmethod
    def from_payload(cls, data: Dict[str, Any]) -> "CompactState":
        """Inverse of :meth:`to_payload`."""
        if data.get("format") != PAYLOAD_FORMAT:
            raise ValueError(
                f"not a {PAYLOAD_FORMAT} payload: {data.get('format')!r}")
        raw = data["tables"]
        tables = BindingTables(
            ops=raw["ops"], fus=raw["fus"], regs=raw["regs"],
            segs=[(value, step) for value, step in raw["segs"]],
            reads=[(op, port) for op, port in raw["reads"]],
            outs=raw["outs"])
        for regs in data["pool"]:
            tables.pool.intern(tuple(regs))
        n_segs = len(tables.seg_keys)
        seg_seq = array("q", bytes(8 * n_segs))
        ranks: List[int] = sorted(
            range(n_segs), key=tables.seg_keys.__getitem__)
        for rank, index in enumerate(ranks):
            seg_seq[index] = rank + 1
        return cls(
            tables=tables,
            op_fu=array("i", data["op_fu"]),
            op_swap=array("b", data["op_swap"]),
            read_src=array("i", data["read_src"]),
            out_src=array("i", data["out_src"]),
            seg=array("i", data["seg"]),
            seg_seq=seg_seq,
            pt=tuple(sorted(
                ((value, step, reg), tuple(impl))
                for value, step, reg, impl in data["pt"])),
        )
