"""Top-level allocation drivers.

:class:`SalsaAllocator` is the public entry point reproducing the paper's
two-phase flow (Sec. 4): constructive initial allocation followed by
randomized iterative improvement over the extended move set, with multiple
random restarts ("due to the random nature of the iterative improvement
scheme, multiple trials are sometimes necessary to find the best result",
Sec. 5).

:class:`TraditionalAllocator` is the baseline: the same engine restricted
to the traditional binding model (monolithic values, no copies, no
pass-throughs), standing in for the "best reported by other researchers"
column of Table 2.

The SALSA flow warm-starts its extended-model search from the traditional
optimum of each restart, so with equal budgets the extended model can only
match or improve on the traditional result — exactly the comparison the
paper makes.

Both allocators route their restarts through the parallel engine of
:mod:`repro.core.parallel`: :meth:`~SalsaAllocator.prepare_jobs` turns a
problem into independent :class:`~repro.core.parallel.RestartJob`\\ s whose
seeds come from a :class:`repro.rng.SeedStream` (one independent child
seed per improvement pass — never ``seed``/``seed + 1`` arithmetic, whose
adjacent restarts collide), and ``allocate(..)`` fans them out over
``workers`` processes.  Results are bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Mapping, Optional, Tuple

from repro.errors import AllocationError
from repro.cdfg.graph import CDFG
from repro.datapath.cost import CostBreakdown, CostWeights
from repro.datapath.units import FU, HardwareSpec, Register, make_registers
from repro.sched.explore import schedule_graph
from repro.sched.schedule import Schedule
from repro.rng import RngLike, SeedStream
from repro.alloc.checker import assert_legal
from repro.core.binding import Binding
from repro.core.improve import ImproveConfig, ImproveStats, improve
from repro.core.moves import MoveSet
from repro.core.parallel import (RestartJob, RestartOutcome, best_outcome,
                                 rebuild_binding, run_restarts)


@dataclass
class AllocationResult:
    """The outcome of an allocation run."""

    binding: Binding
    cost: CostBreakdown
    schedule: Schedule
    stats: List[ImproveStats] = field(default_factory=list)
    restarts: int = 1
    label: str = ""
    #: per-restart engine outcomes (cost, state snapshot, telemetry, time)
    outcomes: List[RestartOutcome] = field(default_factory=list)
    #: index into :attr:`outcomes` of the winning restart
    best_restart: int = 0

    @property
    def mux_count(self) -> int:
        return self.cost.mux_count

    @property
    def seconds(self) -> float:
        """Total search seconds across restarts (sum, not wall-clock)."""
        return sum(outcome.seconds for outcome in self.outcomes)

    def summary(self) -> str:
        return (f"{self.label or self.schedule.label}: "
                f"{self.cost} after {self.restarts} restart(s), "
                f"{len(self.binding.pt_impl)} pass-through(s)")


def _resolve(graph: CDFG, schedule: Optional[Schedule],
             spec: Optional[HardwareSpec], length: Optional[int],
             fu_counts: Optional[Mapping[str, int]],
             registers: Optional[int]) -> (Schedule, List[FU], List[Register]):
    if schedule is None:
        if spec is None:
            spec = HardwareSpec.non_pipelined()
        schedule = schedule_graph(graph, spec, length, fu_counts=fu_counts)
    fus = schedule.spec.make_fus(
        dict(fu_counts) if fu_counts is not None else schedule.min_fus())
    n_regs = registers if registers is not None else \
        schedule.min_registers()
    if n_regs < schedule.min_registers():
        raise AllocationError(
            f"{n_regs} registers requested but the schedule needs at least "
            f"{schedule.min_registers()}")
    return schedule, fus, make_registers(n_regs)


class _RestartAllocator:
    """Shared multi-restart driver: derive jobs, fan out, keep the best."""

    seed: RngLike
    restarts: int
    weights: CostWeights
    workers: int

    def _restart_configs(self, stream: SeedStream,
                         restart: int) -> Tuple[ImproveConfig, ...]:
        raise NotImplementedError

    def _allow_split(self) -> bool:
        return True

    def _label(self, schedule: Schedule) -> str:
        raise NotImplementedError

    def prepare_jobs(self, graph: CDFG,
                     schedule: Optional[Schedule] = None,
                     spec: Optional[HardwareSpec] = None,
                     length: Optional[int] = None,
                     fu_counts: Optional[Mapping[str, int]] = None,
                     registers: Optional[int] = None) \
            -> Tuple[Schedule, List[RestartJob]]:
        """Resolve the problem and derive one independent job per restart."""
        schedule, fus, regs = _resolve(graph, schedule, spec, length,
                                       fu_counts, registers)
        stream = SeedStream(self.seed)
        jobs = [RestartJob(index=restart, schedule=schedule,
                           fus=tuple(fus), regs=tuple(regs),
                           configs=self._restart_configs(stream, restart),
                           weights=self.weights,
                           allow_split=self._allow_split())
                for restart in range(self.restarts)]
        return schedule, jobs

    def allocate(self, graph: CDFG,
                 schedule: Optional[Schedule] = None,
                 spec: Optional[HardwareSpec] = None,
                 length: Optional[int] = None,
                 fu_counts: Optional[Mapping[str, int]] = None,
                 registers: Optional[int] = None,
                 workers: Optional[int] = None) -> AllocationResult:
        schedule, jobs = self.prepare_jobs(graph, schedule=schedule,
                                           spec=spec, length=length,
                                           fu_counts=fu_counts,
                                           registers=registers)
        outcomes = run_restarts(
            jobs, workers=self.workers if workers is None else workers)
        best = best_outcome(outcomes)
        binding = rebuild_binding(jobs[best.index], best)
        assert_legal(binding)
        all_stats = [s for outcome in outcomes for s in outcome.stats]
        return AllocationResult(binding, binding.cost(), schedule,
                                stats=all_stats, restarts=self.restarts,
                                label=self._label(schedule),
                                outcomes=outcomes,
                                best_restart=best.index)


class SalsaAllocator(_RestartAllocator):
    """Allocate with the extended (SALSA) binding model."""

    def __init__(self, seed: RngLike = 0, restarts: int = 3,
                 weights: CostWeights = CostWeights(),
                 config: Optional[ImproveConfig] = None,
                 warm_start_traditional: bool = True,
                 workers: int = 1) -> None:
        self.seed = seed
        self.restarts = max(1, restarts)
        self.weights = weights
        self.config = config if config is not None else ImproveConfig()
        self.warm_start_traditional = warm_start_traditional
        self.workers = max(1, workers)

    def _restart_configs(self, stream: SeedStream,
                         restart: int) -> Tuple[ImproveConfig, ...]:
        configs: List[ImproveConfig] = []
        if self.warm_start_traditional:
            configs.append(replace(self.config,
                                   seed=stream.child(restart, 0),
                                   move_set=MoveSet.traditional()))
        configs.append(replace(self.config, seed=stream.child(restart, 1)))
        return tuple(configs)

    def _label(self, schedule: Schedule) -> str:
        return f"salsa:{schedule.label}"


def salsa_from_traditional(trad: AllocationResult,
                           config: Optional[ImproveConfig] = None,
                           seed: RngLike = 0) -> AllocationResult:
    """Continue a traditional-model allocation with the extended move set.

    Because the search starts at the traditional optimum and iterative
    improvement never returns anything worse than its start, the result is
    *guaranteed* to match or beat the traditional allocation — the paper's
    extended-vs-traditional comparison in its purest form.
    """
    cfg = config if config is not None else ImproveConfig()
    binding = trad.binding.duplicate()
    stats = improve(binding, replace(cfg, seed=SeedStream(seed).child(0)))
    assert_legal(binding)
    return AllocationResult(binding, binding.cost(), trad.schedule,
                            stats=[stats], restarts=trad.restarts,
                            label=trad.label.replace("traditional",
                                                     "salsa+warm"))


class TraditionalAllocator(_RestartAllocator):
    """Baseline allocator restricted to the traditional binding model."""

    def __init__(self, seed: RngLike = 0, restarts: int = 3,
                 weights: CostWeights = CostWeights(),
                 config: Optional[ImproveConfig] = None,
                 strict: bool = False,
                 workers: int = 1) -> None:
        self.seed = seed
        self.restarts = max(1, restarts)
        self.weights = weights
        base = config if config is not None else ImproveConfig()
        self.config = replace(base, move_set=MoveSet.traditional())
        #: strict=True refuses register budgets where values cannot all be
        #: bound contiguously (the genuinely traditional behaviour); the
        #: default mirrors published tools that fall back to minimal
        #: splitting for loop-carried (cyclic) lifetimes
        self.strict = strict
        self.workers = max(1, workers)

    def _restart_configs(self, stream: SeedStream,
                         restart: int) -> Tuple[ImproveConfig, ...]:
        return (replace(self.config, seed=stream.child(restart, 0)),)

    def _allow_split(self) -> bool:
        return not self.strict

    def _label(self, schedule: Schedule) -> str:
        return f"traditional:{schedule.label}"
