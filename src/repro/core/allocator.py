"""Top-level allocation drivers.

:class:`SalsaAllocator` is the public entry point reproducing the paper's
two-phase flow (Sec. 4): constructive initial allocation followed by
randomized iterative improvement over the extended move set, with multiple
random restarts ("due to the random nature of the iterative improvement
scheme, multiple trials are sometimes necessary to find the best result",
Sec. 5).

:class:`TraditionalAllocator` is the baseline: the same engine restricted
to the traditional binding model (monolithic values, no copies, no
pass-throughs), standing in for the "best reported by other researchers"
column of Table 2.

The SALSA flow warm-starts its extended-model search from the traditional
optimum of each restart, so with equal budgets the extended model can only
match or improve on the traditional result — exactly the comparison the
paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import AllocationError
from repro.cdfg.graph import CDFG
from repro.datapath.cost import CostBreakdown, CostWeights
from repro.datapath.units import FU, HardwareSpec, Register, make_registers
from repro.sched.explore import schedule_graph
from repro.sched.schedule import Schedule
from repro.rng import RngLike, make_rng
from repro.alloc.checker import assert_legal
from repro.core.binding import Binding
from repro.core.improve import ImproveConfig, ImproveStats, improve
from repro.core.initial import initial_allocation
from repro.core.moves import MoveSet


@dataclass
class AllocationResult:
    """The outcome of an allocation run."""

    binding: Binding
    cost: CostBreakdown
    schedule: Schedule
    stats: List[ImproveStats] = field(default_factory=list)
    restarts: int = 1
    label: str = ""

    @property
    def mux_count(self) -> int:
        return self.cost.mux_count

    def summary(self) -> str:
        return (f"{self.label or self.schedule.label}: "
                f"{self.cost} after {self.restarts} restart(s), "
                f"{len(self.binding.pt_impl)} pass-through(s)")


def _resolve(graph: CDFG, schedule: Optional[Schedule],
             spec: Optional[HardwareSpec], length: Optional[int],
             fu_counts: Optional[Mapping[str, int]],
             registers: Optional[int]) -> (Schedule, List[FU], List[Register]):
    if schedule is None:
        if spec is None:
            spec = HardwareSpec.non_pipelined()
        schedule = schedule_graph(graph, spec, length, fu_counts=fu_counts)
    fus = schedule.spec.make_fus(
        dict(fu_counts) if fu_counts is not None else schedule.min_fus())
    n_regs = registers if registers is not None else \
        schedule.min_registers()
    if n_regs < schedule.min_registers():
        raise AllocationError(
            f"{n_regs} registers requested but the schedule needs at least "
            f"{schedule.min_registers()}")
    return schedule, fus, make_registers(n_regs)


class SalsaAllocator:
    """Allocate with the extended (SALSA) binding model."""

    def __init__(self, seed: RngLike = 0, restarts: int = 3,
                 weights: CostWeights = CostWeights(),
                 config: Optional[ImproveConfig] = None,
                 warm_start_traditional: bool = True) -> None:
        self.seed = seed
        self.restarts = max(1, restarts)
        self.weights = weights
        self.config = config if config is not None else ImproveConfig()
        self.warm_start_traditional = warm_start_traditional

    def allocate(self, graph: CDFG,
                 schedule: Optional[Schedule] = None,
                 spec: Optional[HardwareSpec] = None,
                 length: Optional[int] = None,
                 fu_counts: Optional[Mapping[str, int]] = None,
                 registers: Optional[int] = None) -> AllocationResult:
        schedule, fus, regs = _resolve(graph, schedule, spec, length,
                                       fu_counts, registers)
        rng = make_rng(self.seed)
        best: Optional[Binding] = None
        best_state = None
        best_cost: Optional[CostBreakdown] = None
        all_stats: List[ImproveStats] = []
        for _restart in range(self.restarts):
            binding = initial_allocation(schedule, fus, regs,
                                         weights=self.weights,
                                         allow_split=True)
            seed = rng.randrange(1 << 30)
            if self.warm_start_traditional:
                trad_cfg = replace(self.config, seed=seed,
                                   move_set=MoveSet.traditional())
                all_stats.append(improve(binding, trad_cfg))
            full_cfg = replace(self.config, seed=seed + 1,
                               move_set=self.config.move_set)
            all_stats.append(improve(binding, full_cfg))
            cost = binding.cost()
            if best_cost is None or cost.total < best_cost.total:
                best, best_cost = binding, cost
                best_state = binding.clone_state()
        assert best is not None and best_state is not None
        best.restore_state(best_state)
        assert_legal(best)
        return AllocationResult(best, best.cost(), schedule,
                                stats=all_stats, restarts=self.restarts,
                                label=f"salsa:{schedule.label}")


def salsa_from_traditional(trad: AllocationResult,
                           config: Optional[ImproveConfig] = None,
                           seed: RngLike = 0) -> AllocationResult:
    """Continue a traditional-model allocation with the extended move set.

    Because the search starts at the traditional optimum and iterative
    improvement never returns anything worse than its start, the result is
    *guaranteed* to match or beat the traditional allocation — the paper's
    extended-vs-traditional comparison in its purest form.
    """
    cfg = config if config is not None else ImproveConfig()
    binding = trad.binding.duplicate()
    stats = improve(binding, replace(cfg, seed=seed,
                                     move_set=cfg.move_set))
    assert_legal(binding)
    return AllocationResult(binding, binding.cost(), trad.schedule,
                            stats=[stats], restarts=trad.restarts,
                            label=trad.label.replace("traditional",
                                                     "salsa+warm"))


class TraditionalAllocator:
    """Baseline allocator restricted to the traditional binding model."""

    def __init__(self, seed: RngLike = 0, restarts: int = 3,
                 weights: CostWeights = CostWeights(),
                 config: Optional[ImproveConfig] = None,
                 strict: bool = False) -> None:
        self.seed = seed
        self.restarts = max(1, restarts)
        self.weights = weights
        base = config if config is not None else ImproveConfig()
        self.config = replace(base, move_set=MoveSet.traditional())
        #: strict=True refuses register budgets where values cannot all be
        #: bound contiguously (the genuinely traditional behaviour); the
        #: default mirrors published tools that fall back to minimal
        #: splitting for loop-carried (cyclic) lifetimes
        self.strict = strict

    def allocate(self, graph: CDFG,
                 schedule: Optional[Schedule] = None,
                 spec: Optional[HardwareSpec] = None,
                 length: Optional[int] = None,
                 fu_counts: Optional[Mapping[str, int]] = None,
                 registers: Optional[int] = None) -> AllocationResult:
        schedule, fus, regs = _resolve(graph, schedule, spec, length,
                                       fu_counts, registers)
        rng = make_rng(self.seed)
        best: Optional[Binding] = None
        best_state = None
        best_cost: Optional[CostBreakdown] = None
        all_stats: List[ImproveStats] = []
        for _restart in range(self.restarts):
            binding = initial_allocation(schedule, fus, regs,
                                         weights=self.weights,
                                         allow_split=not self.strict)
            cfg = replace(self.config, seed=rng.randrange(1 << 30))
            all_stats.append(improve(binding, cfg))
            cost = binding.cost()
            if best_cost is None or cost.total < best_cost.total:
                best, best_cost = binding, cost
                best_state = binding.clone_state()
        assert best is not None and best_state is not None
        best.restore_state(best_state)
        assert_legal(best)
        return AllocationResult(best, best.cost(), schedule,
                                stats=all_stats, restarts=self.restarts,
                                label=f"traditional:{schedule.label}")
