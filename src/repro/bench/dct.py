"""The Discrete Cosine Transform (DCT) benchmark CDFG.

The paper's larger benchmark (Table 3, Figure 5): an 8-point one-dimensional
DCT drawn from the Woudsma et al. "One-Dimensional Linear Picture
Transformer" patent, with **25 additions, 7 subtractions and 16
multiplications** (48 operations) — "a challenging problem for both
scheduling and allocation" (paper Sec. 5).

Figure 5 is not machine-readable from the paper text, so this module
reconstructs a fast even/odd-decomposition transform with *exactly* the
stated operation mix and comparable depth:

* stage 1 — input butterflies: ``s_i = x_i + x_{7-i}`` (4 add),
  ``t_i = x_i - x_{7-i}`` (4 sub);
* even half — the exact 4-point DCT of ``s`` (5 add, 3 sub, 6 mul),
  producing ``X0, X2, X4, X6``;
* odd half — a rotation bank over ``t`` using 4 shared pre-additions,
  10 constant multiplications and 12 accumulation additions, producing
  ``X1, X3, X5, X7`` (negative cosine entries are folded into the
  multiplier constants, which is why the odd half needs no subtractors).

Allocation cost in the paper's model depends only on graph structure (the
multiplier constants are cost-free), so this reconstruction exercises the
allocator exactly as the original figure would.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG
from repro.cdfg.validate import validate_cdfg


def _c(k: int) -> float:
    """cos(k*pi/16), the classic DCT rotation constants."""
    return math.cos(k * math.pi / 16.0)


def discrete_cosine_transform(name: str = "dct") -> CDFG:
    """Build the 48-op 8-point DCT CDFG (25 add / 7 sub / 16 mul)."""
    b = CDFGBuilder(name, cyclic=False)
    for i in range(8):
        b.input(f"x{i}")

    # stage 1: input butterflies ------------------------------------- 4A 4S
    for i in range(4):
        b.add(f"bs{i}", f"x{i}", f"x{7 - i}", f"s{i}")
        b.sub(f"bt{i}", f"x{i}", f"x{7 - i}", f"t{i}")

    # even half: exact 4-point DCT of s0..s3 ------------------------- 5A 3S 6M
    b.add("e0", "s0", "s3", "e0v")
    b.add("e1", "s1", "s2", "e1v")
    b.sub("f0", "s0", "s3", "f0v")
    b.sub("f1", "s1", "s2", "f1v")
    b.add("g0", "e0v", "e1v", "g0v")
    b.sub("g1", "e0v", "e1v", "g1v")
    b.mul("mX0", _c(4), "g0v", "X0")
    b.mul("mX4", _c(4), "g1v", "X4")
    b.mul("p0", _c(2), "f0v", "p0v")
    b.mul("p1", _c(6), "f1v", "p1v")
    b.mul("p2", _c(6), "f0v", "p2v")
    b.mul("p3", -_c(2), "f1v", "p3v")
    b.add("aX2", "p0v", "p1v", "X2")
    b.add("aX6", "p2v", "p3v", "X6")

    # odd half: rotation bank over t0..t3 ---------------------------- 16A 10M
    # shared pre-additions
    b.add("h0", "t0", "t3", "h0v")
    b.add("h1", "t1", "t2", "h1v")
    b.add("h2", "t0", "t1", "h2v")
    b.add("h3", "t2", "t3", "h3v")
    # ten constant products: one per t_i, one per h_j, plus two reuse taps
    odd_products: List[str] = []
    for i, coeff in enumerate((_c(1), _c(3), -_c(5), _c(7))):
        b.mul(f"q{i}", coeff, f"t{i}", f"q{i}v")
        odd_products.append(f"q{i}v")
    for j, coeff in enumerate((_c(5), -_c(7), _c(3), -_c(1))):
        b.mul(f"r{j}", coeff, f"h{j}v", f"r{j}v")
        odd_products.append(f"r{j}v")
    b.mul("w0", _c(7) - _c(3), "h0v", "w0v")
    b.mul("w1", _c(1) - _c(5), "h2v", "w1v")
    odd_products.extend(["w0v", "w1v"])
    # four 4-term accumulation trees (3 adds each)
    terms = {
        "X1": ("q0v", "r0v", "q1v", "w1v"),
        "X3": ("q2v", "r1v", "q3v", "w0v"),
        "X5": ("q0v", "r2v", "q2v", "w0v"),
        "X7": ("q1v", "r3v", "q3v", "w1v"),
    }
    for out, (a, c_, d, e) in terms.items():
        b.add(f"a{out}0", a, c_, f"{out}s0")
        b.add(f"a{out}1", d, e, f"{out}s1")
        b.add(f"a{out}2", f"{out}s0", f"{out}s1", out)

    for k in range(8):
        b.output(f"X{k}")
    graph = b.build()
    validate_cdfg(graph)
    return graph


def dct_invariants() -> Dict[str, object]:
    """The paper-stated invariants this reconstruction is pinned to."""
    return {
        "ops": 48,
        "adds": 25,
        "subs": 7,
        "muls": 16,
        "inputs": 8,
        "outputs": 8,
    }
