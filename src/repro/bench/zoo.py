"""Scenario zoo: parameterized CDFG families beyond the paper's EWF/DCT.

The paper's evaluation covers two fixed benchmarks.  The zoo widens that
surface with *generated* families whose shape is controlled by parameters
— FFT butterfly networks, FIR/IIR cascades of arbitrary order, lattice
filters (including the canonical fifth-order elliptic target), graphs
heavy in loop-carried state or predicated-select "conditionals",
multi-precision op mixes that exercise an ALU/multiplier split, and two
stress shapes (very long lifetimes; a single high-fan-out pivot value)
that specifically reward the extended model's value splits.

Every scenario is deterministic from its ``(family, params, seed)``
triple: structure comes from the parameters, and any randomized aspect
(filter coefficients, op-kind jitter) is drawn from a
:class:`~repro.rng.SeedStream` rooted at the scenario seed and salted with
the family id — never from shared RNG state.  Building the same scenario
twice, on any machine, yields a bit-identical CDFG, which is what lets
``python -m repro.bench --check`` gate against committed golden costs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG
from repro.cdfg.validate import validate_cdfg
from repro.datapath.units import ALU, MULTIPLIER, HardwareSpec
from repro.rng import SeedStream, make_rng


def _alu_mult_spec() -> HardwareSpec:
    """ALU + multiplier: the spec for families mixing logic/compare ops."""
    return HardwareSpec([ALU, MULTIPLIER])


def _coeff(rng: random.Random) -> float:
    """A well-conditioned filter coefficient (3 decimals, never ~0)."""
    value = round(rng.uniform(0.05, 1.95), 3)
    return value if value >= 0.05 else 0.05


def _clamp(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))


# ------------------------------------------------------------ family builders
#
# Each builder takes the scenario's SeedStream plus keyword parameters and
# returns a validated CDFG.  Randomized aspects draw child seeds from the
# stream so sibling aspects stay independent.

def build_fft(stream: SeedStream, *, points: int = 8) -> CDFG:
    """Radix-2 DIT butterfly network over *points* inputs.

    ``log2(points)`` stages of ``points/2`` butterflies; each butterfly is
    ``t = w*b; out0 = a + t; out1 = a - t`` with a seeded twiddle weight.
    """
    if points < 4 or points & (points - 1):
        raise ValueError("fft points must be a power of two >= 4")
    rng = make_rng(stream.child(1))
    b = CDFGBuilder(f"fft{points}", cyclic=False)
    current: List[str] = []
    for i in range(points):
        b.input(f"x{i}")
        current.append(f"x{i}")
    stages = points.bit_length() - 1
    for s in range(stages):
        half = 1 << s
        nxt = list(current)
        for base in range(0, points, half * 2):
            for j in range(base, base + half):
                a, c = current[j], current[j + half]
                b.mul(f"m{s}_{j}", _coeff(rng), c, f"t{s}_{j}")
                b.add(f"p{s}_{j}", a, f"t{s}_{j}", f"u{s}_{j}")
                b.sub(f"q{s}_{j}", a, f"t{s}_{j}", f"v{s}_{j}")
                nxt[j] = f"u{s}_{j}"
                nxt[j + half] = f"v{s}_{j}"
        current = nxt
    for name in current:
        b.output(name)
    graph = b.build()
    validate_cdfg(graph)
    return graph


def build_fir(stream: SeedStream, *, taps: int = 12) -> CDFG:
    """Transposed-form FIR of arbitrary order with seeded coefficients.

    Same structure as :func:`repro.bench.extras.fir_filter` — a delay line
    of loop-carried partial sums — but the tap weights come from the
    scenario seed instead of a fixed ramp.
    """
    if taps < 2:
        raise ValueError("fir needs at least 2 taps")
    rng = make_rng(stream.child(1))
    b = CDFGBuilder(f"fir{taps}", cyclic=True)
    b.input("x")
    for k in range(taps - 1):
        b.loop_value(f"z{k}")
    for k in range(taps):
        b.mul(f"m{k}", _coeff(rng), "x", f"p{k}")
    b.add("a0", "p0", "z0", "y")
    for k in range(taps - 2):
        b.add(f"a{k + 1}", f"p{k + 1}", f"z{k + 1}", f"z{k}")
    # deepest delay stage loads straight from the last product; model the
    # copy as +0.0 so it owns an operator like every other delay update
    b.add(f"a{taps - 1}", f"p{taps - 1}", 0.0, f"z{taps - 2}")
    b.output("y")
    graph = b.build()
    validate_cdfg(graph)
    return graph


def build_iir(stream: SeedStream, *, sections: int = 3) -> CDFG:
    """Cascade of *sections* biquads (direct form II transposed).

    Each section holds two loop-carried states and computes::

        y    = b0*w + s1
        s1'  = (b1*w - a1*y) + s2
        s2'  =  b2*w - a2*y

    (5 multiplications, 4 additions/subtractions); sections chain through
    ``y``.  Reads of ``s1``/``s2`` see the previous iteration — exactly
    the ``z^{-1}`` delays of the filter.
    """
    if sections < 1:
        raise ValueError("iir needs at least 1 section")
    rng = make_rng(stream.child(1))
    b = CDFGBuilder(f"iir{sections}", cyclic=True)
    b.input("x")
    w = "x"
    for i in range(sections):
        for state in (f"s1_{i}", f"s2_{i}"):
            b.loop_value(state)
        b0, b1, b2 = _coeff(rng), _coeff(rng), _coeff(rng)
        a1, a2 = _coeff(rng), _coeff(rng)
        b.mul(f"mb0_{i}", b0, w, f"tb0_{i}")
        b.add(f"ay_{i}", f"tb0_{i}", f"s1_{i}", f"y{i}")
        b.mul(f"mb1_{i}", b1, w, f"tb1_{i}")
        b.mul(f"ma1_{i}", a1, f"y{i}", f"ta1_{i}")
        b.sub(f"sd1_{i}", f"tb1_{i}", f"ta1_{i}", f"td1_{i}")
        b.add(f"as1_{i}", f"td1_{i}", f"s2_{i}", f"s1_{i}")
        b.mul(f"mb2_{i}", b2, w, f"tb2_{i}")
        b.mul(f"ma2_{i}", a2, f"y{i}", f"ta2_{i}")
        b.sub(f"sd2_{i}", f"tb2_{i}", f"ta2_{i}", f"s2_{i}")
        w = f"y{i}"
    b.output(w)
    graph = b.build()
    validate_cdfg(graph)
    return graph


def build_lattice(stream: SeedStream, *, order: int = 5) -> CDFG:
    """Lattice-ladder filter of the given *order* (one sample).

    ``order=5`` is the canonical fifth-order elliptic target of the
    allocation literature.  The all-pole lattice recursion

        f_{k-1} = f_k - kappa_k * g_{k-1}(n-1)
        g_k(n)  = g_{k-1}(n-1) + kappa_k * f_{k-1}

    runs from ``f_order = x`` down to ``f_0``; the ``z^{-1}`` between
    stages maps onto loop-carried ``g`` states.  A ladder of seeded tap
    weights sums the states into the output.
    """
    if order < 2:
        raise ValueError("lattice needs order >= 2")
    rng = make_rng(stream.child(1))
    kappa = [_coeff(rng) for _ in range(order + 1)]
    ladder = [_coeff(rng) for _ in range(order + 1)]
    b = CDFGBuilder(f"lattice{order}", cyclic=True)
    b.input("x")
    for k in range(order):
        b.loop_value(f"g{k}")

    f = "x"
    for k in range(order, 0, -1):
        b.mul(f"mk{k}", kappa[k], f"g{k - 1}", f"tk{k}")
        b.sub(f"sf{k}", f, f"tk{k}", f"f{k - 1}")
        b.mul(f"mg{k}", kappa[k], f"f{k - 1}", f"ug{k}")
        target = f"g{k}" if k < order else "gtop"
        b.add(f"ag{k}", f"g{k - 1}", f"ug{k}", target)
        f = f"f{k - 1}"
    # refresh the deepest delay from f_0 (copy modelled as +0.0)
    b.add("ag0", "f0", 0.0, "g0")

    # ladder tap sum: c_0*f_0 + sum(c_k * g_k) + c_order * gtop
    b.mul("ml0", ladder[0], "f0", "w0")
    acc = "w0"
    for k in range(1, order):
        b.mul(f"ml{k}", ladder[k], f"g{k}", f"w{k}")
        b.add(f"al{k}", acc, f"w{k}", f"y{k}")
        acc = f"y{k}"
    b.mul(f"ml{order}", ladder[order], "gtop", f"w{order}")
    b.add(f"al{order}", acc, f"w{order}", "y")
    b.output("y")
    graph = b.build()
    validate_cdfg(graph)
    return graph


def build_loopy(stream: SeedStream, *, chains: int = 4,
                depth: int = 3) -> CDFG:
    """Loop-carried-heavy graph: *chains* cross-coupled state updates.

    Every state reads its neighbour's previous-iteration value, then runs
    a *depth*-op chain (seeded mix of coefficient multiplies and input
    adds) before writing itself back — most values in flight are cyclic.
    """
    if chains < 2:
        raise ValueError("loopy needs at least 2 chains")
    if depth < 1:
        raise ValueError("loopy needs depth >= 1")
    rng = make_rng(stream.child(1))
    b = CDFGBuilder(f"loopy{chains}x{depth}", cyclic=True)
    b.input("x")
    for i in range(chains):
        b.loop_value(f"s{i}")
    for i in range(chains):
        prev = f"t{i}_0"
        if i % 2 == 0:
            b.add(f"c{i}", f"s{i}", f"s{(i + 1) % chains}", prev)
        else:
            b.sub(f"c{i}", f"s{i}", f"s{(i + 1) % chains}", prev)
        for j in range(1, depth):
            result = f"t{i}_{j}" if j < depth - 1 else f"s{i}"
            if rng.random() < 0.5:
                b.mul(f"o{i}_{j}", _coeff(rng), prev, result)
            else:
                b.add(f"o{i}_{j}", prev, "x", result)
            prev = result
        if depth == 1:
            # the coupling op itself is the state update
            b.add(f"w{i}", prev, "x", f"s{i}")
    b.add("yo", "s0", "s1", "y0")
    # always fold the input into the output — the seeded op mix above may
    # legitimately pick only coefficient multiplies, leaving x unread
    b.add("yx", "y0", "x", "y")
    b.output("y")
    graph = b.build()
    validate_cdfg(graph)
    return graph


def build_branchy(stream: SeedStream, *, diamonds: int = 4) -> CDFG:
    """Conditional-heavy graph as a chain of predicated-select diamonds.

    The CDFG model has no native control flow, so each "branch" is the
    standard predicated lowering ``v' = p*t + (1-p)*e`` with
    ``p = cmp(v, threshold)`` — seven ops per diamond, with the compare
    and selects landing on the ALU and the predicate products on the
    multiplier (spec: ALU + multiplier).
    """
    if diamonds < 1:
        raise ValueError("branchy needs at least 1 diamond")
    rng = make_rng(stream.child(1))
    b = CDFGBuilder(f"branchy{diamonds}", cyclic=False)
    b.input("x")
    v = "x"
    for i in range(diamonds):
        b.op(f"cmp{i}", "cmp", [v, _coeff(rng)], f"p{i}")
        b.mul(f"mt{i}", v, _coeff(rng), f"t{i}")
        b.add(f"ae{i}", v, _coeff(rng), f"e{i}")
        b.mul(f"ms{i}", f"p{i}", f"t{i}", f"st{i}")
        b.sub(f"sc{i}", 1.0, f"p{i}", f"np{i}")
        b.mul(f"me{i}", f"np{i}", f"e{i}", f"se{i}")
        b.add(f"am{i}", f"st{i}", f"se{i}", f"v{i}")
        v = f"v{i}"
    b.output(v)
    graph = b.build()
    validate_cdfg(graph)
    return graph


def build_multiprec(stream: SeedStream, *, words: int = 3) -> CDFG:
    """Multi-precision arithmetic: *words*-limb add + schoolbook products.

    Per limb: sum, carry-generate (``and``), carry-propagate (``xor``);
    a ripple carry chain (``and``/``or``); carry-adjusted limb sums; and
    one partial product per limb accumulated into a wide result.  The op
    mix forces the binder to juggle an ALU against a multiplier instead
    of the usual adder/multiplier split (spec: ALU + multiplier).
    """
    if words < 2:
        raise ValueError("multiprec needs at least 2 words")
    del stream  # structure is fully determined by the parameters
    b = CDFGBuilder(f"mp{words}", cyclic=False)
    for i in range(words):
        b.input(f"a{i}")
        b.input(f"b{i}")
    for i in range(words):
        b.add(f"s{i}", f"a{i}", f"b{i}", f"sum{i}")
        b.op(f"g{i}", "and", [f"a{i}", f"b{i}"], f"gen{i}")
        b.op(f"p{i}", "xor", [f"a{i}", f"b{i}"], f"prop{i}")
    carry = "gen0"
    for i in range(1, words):
        b.op(f"ca{i}", "and", [f"prop{i}", carry], f"cp{i}")
        b.op(f"co{i}", "or", [f"gen{i}", f"cp{i}"], f"c{i}")
        b.add(f"adj{i}", f"sum{i}", carry, f"lim{i}")
        carry = f"c{i}"
    for i in range(words):
        b.mul(f"pp{i}", f"a{i}", f"b{i}", f"h{i}")
    acc = "h0"
    for i in range(1, words):
        b.add(f"acc{i}", acc, f"h{i}", f"w{i}")
        acc = f"w{i}"
    # assemble the wide sum: low limb, adjusted middle limbs, final carry
    b.add("chk0", "sum0", "prop0", "k0")
    chk = "k0"
    for i in range(1, words - 1):
        b.add(f"chk{i}", chk, f"lim{i}", f"k{i}")
        chk = f"k{i}"
    b.add("chkc", chk, carry, "chk")
    b.output("chk")
    b.output(acc)
    b.output(f"lim{words - 1}")
    graph = b.build()
    validate_cdfg(graph)
    return graph


def build_longlife(stream: SeedStream, *, width: int = 6,
                   stretch: int = 8) -> CDFG:
    """Stress shape: *width* values produced early and consumed last.

    A *stretch*-deep multiply spine forces a long schedule while the early
    products sit live across all of it — lifetimes spanning the whole
    iteration, the worst case for contiguous register binding and the
    best case for value splits.
    """
    if width < 2 or stretch < 2:
        raise ValueError("longlife needs width >= 2 and stretch >= 2")
    rng = make_rng(stream.child(1))
    b = CDFGBuilder(f"ll{width}x{stretch}", cyclic=False)
    for i in range(width):
        b.input(f"i{i}")
    for i in range(width):
        b.mul(f"e{i}", _coeff(rng), f"i{i}", f"early{i}")
    b.add("spine0", "i0", "i1", "v0")
    v = "v0"
    for j in range(stretch):
        b.mul(f"spine{j + 1}", _coeff(rng), v, f"v{j + 1}")
        v = f"v{j + 1}"
    for i in range(width):
        b.add(f"late{i}", f"early{i}", v, f"out{i}")
        b.output(f"out{i}")
    graph = b.build()
    validate_cdfg(graph)
    return graph


def build_fanout(stream: SeedStream, *, readers: int = 12) -> CDFG:
    """Stress shape: one pivot value read by *readers* ops across time.

    The pivot's consumers are spread along a serial chain, so its single
    lifetime interferes with nearly everything — exactly the shape where
    splitting the value across registers pays off.
    """
    if readers < 2:
        raise ValueError("fanout needs at least 2 readers")
    rng = make_rng(stream.child(1))
    b = CDFGBuilder(f"fan{readers}", cyclic=False)
    b.input("x0")
    b.input("x1")
    b.add("piv", "x0", "x1", "p")
    v = "x0"
    for j in range(readers):
        if j % 2 == 1:
            b.mul(f"str{j}", _coeff(rng), v, f"m{j}")
            v = f"m{j}"
        b.add(f"rd{j}", v, "p", f"v{j}")
        v = f"v{j}"
    b.output(v)
    graph = b.build()
    validate_cdfg(graph)
    return graph


# ------------------------------------------------------------ family registry

@dataclass(frozen=True)
class Family:
    """One zoo family: builder, defaults, spec, and schedule knobs."""

    name: str
    #: stable id mixed into every seed derivation for the family
    fid: int
    builder: Callable[..., CDFG]
    defaults: Mapping[str, int]
    doc: str
    spec_factory: Callable[[], HardwareSpec] = HardwareSpec.non_pipelined
    #: control steps added over the critical path before scheduling
    length_slack: int = 1
    #: registers granted beyond the schedule's lifetime minimum
    extra_registers: int = 1
    #: map the fuzzer's ``n_ops`` size knob onto family parameters
    size_map: Optional[Callable[[int], Dict[str, int]]] = None

    def params_from_size(self, n_ops: int) -> Dict[str, int]:
        if self.size_map is None:
            return dict(self.defaults)
        return self.size_map(n_ops)


def _fft_size(n: int) -> Dict[str, int]:
    return {"points": 4 if n < 36 else 8 if n < 96 else 16}


FAMILIES: Dict[str, Family] = {}

for _family in (
    Family("fft", 1, build_fft, {"points": 8},
           "radix-2 butterfly network (3 ops per butterfly)",
           size_map=_fft_size),
    Family("fir", 2, build_fir, {"taps": 12},
           "transposed-form FIR cascade, seeded tap weights",
           length_slack=2,
           size_map=lambda n: {"taps": _clamp(n // 2, 3, 48)}),
    Family("iir", 3, build_iir, {"sections": 3},
           "biquad cascade with loop-carried z^-1 states",
           size_map=lambda n: {"sections": _clamp(n // 9, 1, 10)}),
    Family("lattice", 4, build_lattice, {"order": 5},
           "lattice-ladder filter; order 5 = fifth-order elliptic target",
           size_map=lambda n: {"order": _clamp(n // 7, 2, 14)}),
    Family("loopy", 5, build_loopy, {"chains": 4, "depth": 3},
           "cross-coupled loop-carried state updates",
           size_map=lambda n: {"chains": _clamp(n // 5, 2, 10), "depth": 3}),
    Family("branchy", 6, build_branchy, {"diamonds": 4},
           "predicated-select diamonds (cmp + select per branch)",
           spec_factory=_alu_mult_spec,
           size_map=lambda n: {"diamonds": _clamp(n // 7, 1, 10)}),
    Family("multiprec", 7, build_multiprec, {"words": 3},
           "multi-word add/multiply mix on an ALU + multiplier split",
           spec_factory=_alu_mult_spec,
           size_map=lambda n: {"words": _clamp(n // 7, 2, 10)}),
    Family("longlife", 8, build_longlife, {"width": 6, "stretch": 8},
           "early-produced values consumed after a long multiply spine",
           length_slack=4, extra_registers=2,
           size_map=lambda n: {"width": _clamp(n // 4, 2, 12),
                               "stretch": _clamp(n // 3, 4, 18)}),
    Family("fanout", 9, build_fanout, {"readers": 12},
           "one pivot value with consumers spread across the schedule",
           extra_registers=2,
           size_map=lambda n: {"readers": _clamp(n // 2, 4, 30)}),
):
    FAMILIES[_family.name] = _family


# ------------------------------------------------------------------ scenarios

@dataclass(frozen=True)
class Scenario:
    """A concrete zoo problem: ``(family, params, seed)``."""

    family: str
    params: Tuple[Tuple[str, int], ...] = ()
    seed: int = 0

    @classmethod
    def make(cls, family: str, seed: int = 0, **params: int) -> "Scenario":
        """Build a scenario, filling unspecified family defaults."""
        spec = FAMILIES.get(family)
        if spec is None:
            raise ValueError(f"unknown zoo family {family!r}; "
                             f"known: {', '.join(sorted(FAMILIES))}")
        merged = dict(spec.defaults)
        for key, value in params.items():
            if key not in merged:
                raise ValueError(
                    f"family {family!r} has no parameter {key!r}")
            merged[key] = int(value)
        return cls(family=family, seed=seed,
                   params=tuple(sorted(merged.items())))

    @property
    def definition(self) -> Family:
        return FAMILIES[self.family]

    @property
    def params_dict(self) -> Dict[str, int]:
        return dict(self.params)

    @property
    def name(self) -> str:
        """Stable identifier, e.g. ``lattice-order5-s0``."""
        parts = [self.family]
        parts += [f"{key}{value}" for key, value in self.params]
        parts.append(f"s{self.seed}")
        return "-".join(parts)

    def stream(self) -> SeedStream:
        """The scenario's seed stream (family-salted, structure-blind)."""
        return SeedStream(SeedStream(self.seed).child(self.definition.fid))

    def build(self) -> CDFG:
        """Materialize the CDFG (bit-identical for equal triples)."""
        return self.definition.builder(self.stream(), **self.params_dict)

    def spec(self) -> HardwareSpec:
        return self.definition.spec_factory()


def scenario_for_fuzz(family: str, n_ops: int, seed: int) -> Scenario:
    """The zoo scenario a fuzz case with size knob *n_ops* maps onto."""
    definition = FAMILIES.get(family)
    if definition is None:
        raise ValueError(f"unknown zoo family {family!r}")
    return Scenario.make(family, seed=seed,
                         **definition.params_from_size(max(4, n_ops)))


def default_suite(seed: int = 0) -> List[Scenario]:
    """One scenario per family at its canonical parameters."""
    return [Scenario.make(name, seed=seed)
            for name in sorted(FAMILIES, key=lambda n: FAMILIES[n].fid)]


__all__ = [
    "FAMILIES", "Family", "Scenario", "build_branchy", "build_fanout",
    "build_fft", "build_fir", "build_iir", "build_lattice",
    "build_longlife", "build_loopy", "build_multiprec", "default_suite",
    "scenario_for_fuzz",
]
