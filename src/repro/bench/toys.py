"""Small CDFGs reproducing the paper's illustrative figures.

* :func:`figure1_cdfg` — the ten-value CDFG of Figure 1/2 used to contrast
  the traditional and SALSA binding models;
* :func:`figure3_fragment` — the two-register/one-FU fragment where a
  pass-through binding removes a multiplexer input (Figure 3);
* :func:`figure4_fragment` — the one-value/two-consumer fragment where a
  value split removes interconnect (Figure 4).
"""

from __future__ import annotations

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG
from repro.cdfg.validate import validate_cdfg


def figure1_cdfg(name: str = "fig1") -> CDFG:
    """A small CDFG shaped like the paper's Figure 1: values v1..v10.

    Three control steps, operators feeding each other through stored
    values, with two values (v1, v4) living across multiple steps so the
    SALSA expansion of Figure 2 produces visible segments (v1.1, v4.1 ...).
    """
    b = CDFGBuilder(name, cyclic=False)
    for v in ("v1", "v2", "v3", "v4"):
        b.input(v)
    b.add("o1", "v1", "v2", "v5")
    b.add("o2", "v3", "v4", "v6")
    b.mul("o3", "v5", "v6", "v8")
    b.add("o4", "v1", "v6", "v9")
    b.add("o5", "v8", "v9", "v10")
    b.output("v10")
    graph = b.build()
    validate_cdfg(graph)
    return graph


def figure3_fragment(name: str = "fig3") -> CDFG:
    """Fragment for the pass-through demonstration of Figure 3.

    A value ``V1`` must move between registers mid-lifetime (its producer
    and a late consumer force segments into different registers when the
    register budget is tight), and an adder is idle at the transfer step so
    the slack node can be bound to it as a pass-through.
    """
    b = CDFGBuilder(name, cyclic=False)
    b.input("a").input("b").input("c")
    b.add("op1", "a", "b", "V1")     # V1 born early ...
    b.add("op2", "b", "c", "V2")
    b.add("op3", "V2", "c", "V3")
    b.add("op4", "V1", "V3", "V4")   # ... consumed late
    b.output("V4")
    graph = b.build()
    validate_cdfg(graph)
    return graph


def figure4_fragment(name: str = "fig4") -> CDFG:
    """Fragment for the value-split demonstration of Figure 4.

    One value ``V1`` feeding operators bound to two different functional
    units across different steps; storing a copy of ``V1`` in a second
    register can remove a multiplexer input.
    """
    b = CDFGBuilder(name, cyclic=False)
    b.input("a").input("b").input("c").input("d")
    b.add("p1", "a", "b", "V1")
    b.add("u1", "V1", "c", "W1")     # consumer on FU1
    b.add("u2", "V1", "d", "W2")     # consumer on FU2, later step
    b.add("u3", "W1", "W2", "W3")
    b.output("W3")
    graph = b.build()
    validate_cdfg(graph)
    return graph
