"""``python -m repro.bench`` — sweep the scenario zoo.

Runs zoo scenarios through the full schedule → SALSA binding → checker
pipeline and prints a per-scenario cost / moves-per-second table, plus a
machine-readable JSON report.  ``--check`` re-runs the scenarios recorded
in the committed golden file (``results/bench_zoo.json``) and gates the
deterministic quality numbers against it; ``--write-golden`` refreshes
the file after an intentional change.

Examples::

    python -m repro.bench                       # sweep defaults, seed 0
    python -m repro.bench --list                # show families
    python -m repro.bench --families fft,fir --seed 3
    python -m repro.bench --check               # golden gate (CI)
    python -m repro.bench --check --min-moves-per-sec 500
    python -m repro.bench --timing              # add clock_ns/depth columns
    python -m repro.bench --timing --check      # exact clock-period gate
    python -m repro.bench --write-golden        # refresh the goldens
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.runner import (BUDGETS, GOLDEN_PATH, check_rows,
                                load_golden, render_table,
                                results_document, run_suite, write_results)
from repro.bench.zoo import FAMILIES, Scenario, default_suite


def _parse_scenario(token: str) -> Scenario:
    """Parse ``family`` or ``family-key<int>-...-s<seed>`` back to a triple."""
    parts = token.split("-")
    family = parts[0]
    if family not in FAMILIES:
        raise argparse.ArgumentTypeError(
            f"unknown family {family!r} in scenario {token!r}")
    seed = 0
    params = {}
    for part in parts[1:]:
        key = part.rstrip("0123456789")
        digits = part[len(key):]
        if not key or not digits:
            raise argparse.ArgumentTypeError(
                f"bad scenario component {part!r} in {token!r}")
        if key == "s":
            seed = int(digits)
        else:
            params[key] = int(digits)
    try:
        return Scenario.make(family, seed=seed, **params)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="sweep the CDFG scenario zoo through the allocator")
    parser.add_argument("--list", action="store_true",
                        help="list zoo families and exit")
    parser.add_argument("--families", default="",
                        help="comma-separated families (default: all)")
    parser.add_argument("--scenarios", default="",
                        help="comma-separated scenario names, e.g. "
                             "lattice-order7-s2 (overrides --families)")
    parser.add_argument("--seed", type=int, default=0,
                        help="scenario seed for --families sweeps")
    parser.add_argument("--budget", choices=sorted(BUDGETS), default="fast",
                        help="search budget per scenario")
    parser.add_argument("--restarts", type=int, default=2,
                        help="allocator restarts per scenario")
    parser.add_argument("--method", choices=("list", "fds"), default="list",
                        help="scheduling method")
    parser.add_argument("--timing", action="store_true",
                        help="run static timing analysis per scenario and "
                             "add clock_period_ns / mux_depth_max columns")
    parser.add_argument("--json", default="",
                        help="write the sweep report to this path")
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed golden file")
    parser.add_argument("--golden", default=GOLDEN_PATH,
                        help=f"golden file path (default {GOLDEN_PATH})")
    parser.add_argument("--tolerance", type=float, default=0.0,
                        help="relative cost tolerance for --check")
    parser.add_argument("--min-moves-per-sec", type=float, default=None,
                        help="generous throughput floor for --check")
    parser.add_argument("--write-golden", action="store_true",
                        help="refresh the golden file from this sweep")
    return parser


def _selected_scenarios(args: argparse.Namespace) -> List[Scenario]:
    if args.scenarios:
        return [_parse_scenario(token.strip())
                for token in args.scenarios.split(",") if token.strip()]
    if args.families:
        names = [token.strip() for token in args.families.split(",")
                 if token.strip()]
        for name in names:
            if name not in FAMILIES:
                raise argparse.ArgumentTypeError(
                    f"unknown family {name!r}; "
                    f"known: {', '.join(sorted(FAMILIES))}")
        return [Scenario.make(name, seed=args.seed) for name in names]
    return default_suite(seed=args.seed)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        width = max(len(name) for name in FAMILIES)
        for name in sorted(FAMILIES, key=lambda n: FAMILIES[n].fid):
            family = FAMILIES[name]
            defaults = ", ".join(f"{k}={v}"
                                 for k, v in sorted(family.defaults.items()))
            print(f"{name.ljust(width)}  {family.doc}  [{defaults}]")
        return 0

    golden = None
    if args.check:
        try:
            golden = load_golden(args.golden)
        except (OSError, ValueError) as exc:
            print(f"cannot load golden file: {exc}", file=sys.stderr)
            return 2
        scenarios = [_parse_scenario(name)
                     for name in sorted(golden["rows"])]
    else:
        try:
            scenarios = _selected_scenarios(args)
        except argparse.ArgumentTypeError as exc:
            parser.error(str(exc))

    timing = args.timing
    if args.check and golden is not None and golden.get("timing") \
            and not timing:
        # a timing golden pins clock periods; gate them even when the
        # caller forgot the flag
        timing = True
    budget = BUDGETS[args.budget]
    rows = run_suite(scenarios, budget=budget, restarts=args.restarts,
                     method=args.method, timing=timing)
    print(render_table(rows))

    document = results_document(rows, budget_name=args.budget,
                                restarts=args.restarts, method=args.method)
    if args.json:
        write_results(document, args.json)
        print(f"wrote {args.json}")
    if args.write_golden:
        write_results(document, args.golden)
        print(f"refreshed golden file {args.golden}")
        return 0

    if args.check:
        assert golden is not None
        if golden.get("budget") != args.budget \
                or golden.get("restarts") != args.restarts \
                or golden.get("method") != args.method:
            print(f"golden file was recorded with budget="
                  f"{golden.get('budget')!r} restarts="
                  f"{golden.get('restarts')!r} method="
                  f"{golden.get('method')!r}; rerun with matching flags "
                  f"or --write-golden", file=sys.stderr)
            return 2
        problems = check_rows(rows, golden, tolerance=args.tolerance,
                              min_moves_per_sec=args.min_moves_per_sec)
        if problems:
            print(f"\n--check FAILED ({len(problems)} problem(s)):",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"\n--check OK: {len(rows)} scenario(s) match "
              f"{args.golden} (tolerance {args.tolerance:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
