"""The Elliptic Wave Filter (EWF) benchmark CDFG.

The paper's primary benchmark (Table 2): a fifth-order elliptic wave
digital filter with 34 operations — 26 additions and 8 constant-coefficient
multiplications — whose canonical critical path is 17 control steps under
the paper's hardware assumptions (1-step adders, 2-step multipliers).

The exact netlist of the historical benchmark is not machine-readable from
the paper; this module reconstructs it as a cascade of wave-digital-filter
two-port adaptors (the structure the benchmark derives from), pinned to the
published invariants:

* 34 operations = 26 ``add`` + 8 ``mul`` (every multiplication has one
  constant coefficient operand, excluded from allocation cost);
* one primary input ``inp``, one primary output ``outp``;
* loop-carried state values whose lifetimes wrap the iteration boundary;
* critical path exactly **17 control steps** with 2-step multipliers, so
  the paper's schedule points (17, 19, 21 steps; pipelined variants) are
  all exercised.

Each adaptor ``i`` computes::

    d_i = x_i + y_i          (add)
    m_i = c_i * d_i          (mul, constant coefficient)
    u_i = m_i + y_i          (add)
    v_i = m_i + x_i          (add)

Four adaptors form the spine (input to output), four more hang off the
spine's ``v`` taps, and two glue additions complete the op budget.  Six
adaptor outputs update the loop-carried state values read at the start of
the next iteration.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG
from repro.cdfg.validate import validate_cdfg

#: default adaptor coefficients (negative, as in wave-digital-filter
#: adaptors, which makes the feedback loops contractive — the filter is
#: BIBO-stable; the allocation experiments never look at these numbers)
EWF_COEFFICIENTS = (-0.245, -0.182, -0.415, -0.310,
                    -0.173, -0.366, -0.228, -0.457)


def elliptic_wave_filter(coefficients: Sequence[float] = EWF_COEFFICIENTS,
                         name: str = "ewf") -> CDFG:
    """Build the 34-op EWF loop-body CDFG."""
    if len(coefficients) != 8:
        raise ValueError("EWF needs exactly 8 adaptor coefficients")
    c = list(coefficients)
    b = CDFGBuilder(name, cyclic=True)
    b.input("inp")
    for sv in ("sv1", "sv2", "sv3", "sv4", "sv5", "sv6", "sv7"):
        b.loop_value(sv)

    def adaptor(i: int, x: str, y: str, u_out: str, v_out: str) -> None:
        b.add(f"d{i}", x, y, f"d{i}v")
        b.mul(f"m{i}", c[i - 1], f"d{i}v", f"m{i}v")
        b.add(f"u{i}", f"m{i}v", y, u_out)
        b.add(f"v{i}", f"m{i}v", x, v_out)

    # spine
    b.add("g1", "inp", "sv1", "x0")
    adaptor(1, "x0", "sv2", "u1v", "v1v")
    adaptor(2, "u1v", "sv3", "u2v", "v2v")
    adaptor(3, "u2v", "sv4", "u3v", "v3v")
    adaptor(4, "u3v", "sv5", "outp", "sv1")      # u4 -> output, v4 -> sv1

    # tower hanging off the spine taps
    adaptor(5, "v1v", "sv6", "u5v", "v5v")
    adaptor(6, "v2v", "u5v", "sv7", "v6v")       # u6 -> sv7
    adaptor(7, "u5v", "v3v", "sv2", "sv3")       # u7 -> sv2, v7 -> sv3
    adaptor(8, "v5v", "sv7", "sv4", "sv5")       # u8 -> sv4, v8 -> sv5
    b.add("g2", "x0", "v6v", "sv6")              # g2 -> sv6

    b.output("outp")
    graph = b.build()
    validate_cdfg(graph)
    return graph


def ewf_invariants() -> Dict[str, object]:
    """The published invariants this reconstruction is pinned to."""
    return {
        "ops": 34,
        "adds": 26,
        "muls": 8,
        "critical_path_nonpipelined": 17,
        "loop_values": 7,
        "inputs": ["inp"],
        "outputs": ["outp"],
    }
