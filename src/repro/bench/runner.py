"""Run zoo scenarios through schedule → SALSA binding → checker.

One :func:`run_scenario` call is the whole pipeline for one scenario:
build the CDFG, schedule it against the family's hardware spec, allocate
with the extended binding model, then re-verify the winning binding with
the independent legality checker.  The result row carries both the
*quality* numbers (mux count, weighted cost — deterministic for a given
scenario triple and budget, which is what the committed goldens pin) and
the *throughput* numbers (moves/second — machine-dependent, reported for
trend-watching but never gated exactly).
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.alloc.checker import check_binding
from repro.core import ImproveConfig, SalsaAllocator
from repro.rng import SeedStream
from repro.sched.asap import asap_length
from repro.sched.explore import schedule_graph
from repro.bench.zoo import Scenario

#: search budget for sweeps: small enough that the full suite runs in CI,
#: large enough that the extended moves (splits, passthroughs) engage
FAST_BUDGET = ImproveConfig(max_trials=2, moves_per_trial=300)

#: budget for overnight quality runs (allocator defaults)
FULL_BUDGET = ImproveConfig()

BUDGETS: Dict[str, ImproveConfig] = {"fast": FAST_BUDGET,
                                     "full": FULL_BUDGET}

#: committed golden results live here (regenerate with --write-golden)
GOLDEN_PATH = os.path.join("results", "bench_zoo.json")


@dataclass
class ScenarioRow:
    """One scenario's trip through the pipeline."""

    scenario: str
    family: str
    ops: int
    csteps: int
    fus: int
    registers: int
    mux_count: int
    cost_total: float
    checker_violations: int
    moves: int
    seconds: float
    #: filled by a ``--timing`` sweep (None otherwise, omitted from dicts
    #: so pre-timing goldens and reports keep their exact shape)
    clock_period_ns: Optional[float] = None
    mux_depth_max: Optional[int] = None

    @property
    def moves_per_sec(self) -> float:
        return self.moves / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["moves_per_sec"] = round(self.moves_per_sec, 1)
        data["seconds"] = round(self.seconds, 4)
        data["cost_total"] = round(self.cost_total, 6)
        if self.clock_period_ns is None:
            del data["clock_period_ns"]
            del data["mux_depth_max"]
        else:
            data["clock_period_ns"] = round(self.clock_period_ns, 6)
        return data


def run_scenario(scenario: Scenario,
                 budget: ImproveConfig = FAST_BUDGET,
                 restarts: int = 2,
                 method: str = "list",
                 timing: bool = False) -> ScenarioRow:
    """Build, schedule, allocate and re-check one scenario.

    With *timing*, the winning binding's netlist additionally goes through
    the static timing analyzer (:mod:`repro.timing.sta`) and the row gains
    deterministic ``clock_period_ns`` / ``mux_depth_max`` columns.
    """
    graph = scenario.build()
    spec = scenario.spec()
    definition = scenario.definition
    length = asap_length(graph, spec) + definition.length_slack
    schedule = schedule_graph(graph, spec, length=length, method=method,
                              label=scenario.name)
    registers = schedule.min_registers() + definition.extra_registers
    allocator = SalsaAllocator(
        seed=SeedStream(scenario.seed).child(definition.fid, 0xB),
        restarts=restarts, config=budget)
    started = time.perf_counter()
    result = allocator.allocate(graph, schedule=schedule, spec=spec,
                                registers=registers)
    seconds = time.perf_counter() - started
    # allocate() already asserts legality; run the checker once more so a
    # sweep explicitly exercises the verification stage per scenario
    violations = check_binding(result.binding)
    clock_period_ns: Optional[float] = None
    mux_depth_max: Optional[int] = None
    if timing:
        # deferred: repro.timing.rtlcheck imports back into repro.bench
        from repro.timing.sta import analyze_binding
        report = analyze_binding(result.binding)
        clock_period_ns = report.clock_period_ns
        mux_depth_max = report.mux_depth_max
    return ScenarioRow(
        scenario=scenario.name,
        family=scenario.family,
        ops=len(graph),
        csteps=schedule.length,
        fus=len(result.binding.fus),
        registers=registers,
        mux_count=result.cost.mux_count,
        cost_total=result.cost.total,
        checker_violations=len(violations),
        moves=sum(s.moves_attempted for s in result.stats),
        seconds=seconds,
        clock_period_ns=clock_period_ns,
        mux_depth_max=mux_depth_max,
    )


def run_suite(scenarios: Iterable[Scenario],
              budget: ImproveConfig = FAST_BUDGET,
              restarts: int = 2,
              method: str = "list",
              timing: bool = False) -> List[ScenarioRow]:
    return [run_scenario(scenario, budget=budget, restarts=restarts,
                         method=method, timing=timing)
            for scenario in scenarios]


# ---------------------------------------------------------------- reporting

_COLUMNS: Sequence[Tuple[str, str]] = (
    ("scenario", "scenario"), ("ops", "ops"), ("csteps", "steps"),
    ("fus", "FUs"), ("registers", "regs"), ("mux_count", "mux"),
    ("cost_total", "cost"), ("moves_per_sec", "moves/s"),
    ("seconds", "sec"),
)

#: appended after ``cost`` when the sweep ran with timing analysis
_TIMING_COLUMNS: Sequence[Tuple[str, str]] = (
    ("clock_period_ns", "clock_ns"), ("mux_depth_max", "depth"),
)


def _columns_for(rows: Sequence[ScenarioRow]) -> Sequence[Tuple[str, str]]:
    if any(row.clock_period_ns is not None for row in rows):
        head = [c for c in _COLUMNS if c[0] not in ("moves_per_sec",
                                                    "seconds")]
        tail = [c for c in _COLUMNS if c[0] in ("moves_per_sec", "seconds")]
        return tuple(head) + tuple(_TIMING_COLUMNS) + tuple(tail)
    return _COLUMNS


def render_table(rows: Sequence[ScenarioRow]) -> str:
    """Fixed-width sweep table (also valid GitHub-flavoured markdown)."""
    columns = _columns_for(rows)
    cells = [[header for _, header in columns]]
    for row in rows:
        data = row.to_dict()
        rendered = []
        for key, _ in columns:
            value = data.get(key)
            if value is None:
                rendered.append("-")
            elif key == "cost_total":
                rendered.append(f"{value:.2f}")
            elif key == "clock_period_ns":
                rendered.append(f"{value:.3f}")
            elif key == "moves_per_sec":
                rendered.append(f"{value:.0f}")
            elif key == "seconds":
                rendered.append(f"{value:.2f}")
            else:
                rendered.append(str(value))
        cells.append(rendered)
    widths = [max(len(line[col]) for line in cells)
              for col in range(len(columns))]
    lines = []
    for index, line in enumerate(cells):
        padded = [line[0].ljust(widths[0])]
        padded += [cell.rjust(width)
                   for cell, width in zip(line[1:], widths[1:])]
        lines.append("| " + " | ".join(padded) + " |")
        if index == 0:
            rule = ["-" * widths[0]] + ["-" * width for width in widths[1:]]
            lines.append("| " + " | ".join(rule) + " |")
    return "\n".join(lines)


def results_document(rows: Sequence[ScenarioRow],
                     budget_name: str, restarts: int,
                     method: str) -> Dict[str, Any]:
    """The machine-readable sweep report written under ``results/``."""
    return {
        "type": "bench_zoo",
        "budget": budget_name,
        "restarts": restarts,
        "method": method,
        "timing": any(row.clock_period_ns is not None for row in rows),
        "python": platform.python_version(),
        "rows": {row.scenario: row.to_dict() for row in rows},
    }


def write_results(document: Dict[str, Any], path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ------------------------------------------------------------- golden gating

#: row fields pinned exactly by the golden file (problem structure and
#: search outcome are both deterministic for a fixed scenario + budget)
_EXACT_FIELDS = ("family", "ops", "csteps", "fus", "registers",
                 "mux_count", "checker_violations")


def load_golden(path: str = GOLDEN_PATH) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("type") != "bench_zoo":
        raise ValueError(f"{path} is not a bench_zoo results document")
    return document


def check_rows(rows: Sequence[ScenarioRow], golden: Dict[str, Any],
               tolerance: float = 0.0,
               min_moves_per_sec: Optional[float] = None) -> List[str]:
    """Compare a fresh sweep against a golden document.

    Structural fields and mux counts must match exactly; the weighted cost
    is gated within *tolerance* (relative).  *min_moves_per_sec*, when
    given, is a deliberately generous smoke floor — it catches an
    order-of-magnitude throughput regression without flaking on machine
    noise.
    """
    problems: List[str] = []
    fresh = {row.scenario: row for row in rows}
    for name, want in sorted(golden["rows"].items()):
        row = fresh.get(name)
        if row is None:
            problems.append(f"{name}: missing from sweep")
            continue
        got = row.to_dict()
        for fieldname in _EXACT_FIELDS:
            if got[fieldname] != want[fieldname]:
                problems.append(
                    f"{name}: {fieldname} = {got[fieldname]!r}, "
                    f"golden {want[fieldname]!r}")
        want_cost = float(want["cost_total"])
        drift = abs(row.cost_total - want_cost)
        if drift > tolerance * max(1.0, abs(want_cost)) + 1e-9:
            problems.append(
                f"{name}: cost_total {row.cost_total:.6f} vs golden "
                f"{want_cost:.6f} (tolerance {tolerance:g})")
        if "clock_period_ns" in want:
            # the analyzed clock period is pure arithmetic over a
            # deterministic netlist: zero tolerance, always
            if got.get("clock_period_ns") != want["clock_period_ns"]:
                problems.append(
                    f"{name}: clock_period_ns = "
                    f"{got.get('clock_period_ns')!r}, golden "
                    f"{want['clock_period_ns']!r} (exact)")
            if got.get("mux_depth_max") != want["mux_depth_max"]:
                problems.append(
                    f"{name}: mux_depth_max = {got.get('mux_depth_max')!r}, "
                    f"golden {want['mux_depth_max']!r}")
        if min_moves_per_sec is not None \
                and row.moves_per_sec < min_moves_per_sec:
            problems.append(
                f"{name}: {row.moves_per_sec:.0f} moves/s below floor "
                f"{min_moves_per_sec:g}")
    extra = sorted(set(fresh) - set(golden["rows"]))
    for name in extra:
        problems.append(f"{name}: not in golden file (refresh with "
                        f"--write-golden)")
    return problems


__all__ = [
    "BUDGETS", "FAST_BUDGET", "FULL_BUDGET", "GOLDEN_PATH", "ScenarioRow",
    "check_rows", "load_golden", "render_table", "results_document",
    "run_scenario", "run_suite", "write_results",
]
