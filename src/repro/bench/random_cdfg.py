"""Random CDFG generation for stress and property-based testing.

Generates layered acyclic data-flow graphs (optionally with loop-carried
feedback values) whose structure resembles filter/transform kernels: each
operation reads values produced earlier or primary inputs, a configurable
fraction of operands are constant coefficients, and dangling values are
exported as outputs.

Cyclic generation is careful to keep anti-dependences acyclic: loop values
are consumed only by the *first* operations and produced only by the
*last* operations, and loop-value producers never read loop values.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG
from repro.cdfg.validate import validate_cdfg
from repro.rng import RngLike, make_rng


def random_cdfg(n_ops: int = 20,
                n_inputs: int = 3,
                kinds: Sequence[str] = ("add", "add", "mul", "sub"),
                const_fraction: float = 0.25,
                loop_fraction: float = 0.0,
                seed: RngLike = 0,
                name: Optional[str] = None) -> CDFG:
    """Generate a connected random CDFG with *n_ops* operations."""
    if n_ops < 2:
        raise ValueError("need at least two operations")
    if n_inputs < 1:
        raise ValueError("need at least one input")
    rng = make_rng(seed)
    cyclic = loop_fraction > 0
    b = CDFGBuilder(name or f"rand{n_ops}", cyclic=cyclic)

    inputs = [f"in{i}" for i in range(n_inputs)]
    for v in inputs:
        b.input(v)

    n_loop = min(max(1, round(n_ops * loop_fraction)), n_ops // 2) \
        if cyclic else 0
    if n_loop + n_inputs > n_ops - n_loop:
        raise ValueError(
            f"{n_inputs} inputs + {n_loop} loop values need at least "
            f"{n_inputs + 2 * n_loop} operations, got {n_ops}")
    loop_names = [f"lv{i}" for i in range(n_loop)]
    for v in loop_names:
        b.loop_value(v)

    #: values a later op may read (never includes loop values for the
    #: producer tail, see below)
    plain: List[str] = list(inputs)
    consumed = set()
    produced: List[str] = []
    first_producer_index = n_ops - n_loop

    for i in range(n_ops):
        kind = rng.choice(list(kinds))
        is_loop_producer = i >= first_producer_index
        if i < n_loop:
            # head ops consume the loop-carried state (previous iteration)
            left = loop_names[i]
        elif i - n_loop < n_inputs and not is_loop_producer:
            # guarantee every primary input is consumed at least once
            left = inputs[i - n_loop]
            consumed.add(left)
        else:
            left = rng.choice(plain)
            consumed.add(left)
        if rng.random() < const_fraction or (is_loop_producer and not plain):
            right: object = round(rng.uniform(-1.0, 1.0), 3)
        else:
            right = rng.choice(plain)
            consumed.add(right)
        result = loop_names[i - first_producer_index] \
            if is_loop_producer else f"w{i}"
        b.op(f"op{i}", kind, [left, right], result)
        if not is_loop_producer:
            plain.append(result)
            produced.append(result)

    dangling = [v for v in produced if v not in consumed]
    if not dangling and produced:
        dangling = [produced[-1]]
    for v in dangling:
        b.output(v)

    graph = b.build()
    validate_cdfg(graph)
    return graph
