"""Additional classic HLS benchmark CDFGs.

These are not in the paper's evaluation but are standard in the allocation
literature it cites (HAL differential equation from Paulin [2], FIR filter,
AR lattice filter) and are used by the extra example scenarios and the
wider test-suite.
"""

from __future__ import annotations

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG
from repro.cdfg.validate import validate_cdfg


def hal_diffeq(name: str = "diffeq") -> CDFG:
    """Paulin's HAL differential-equation benchmark (one Euler step).

    Solves ``y'' + 3xy' + 3y = 0`` numerically: the loop body computes

        x1 = x + dx
        u1 = u - 3*x*u*dx - 3*y*dx
        y1 = y + u*dx

    with ``x, y, u`` loop-carried; 6 multiplications, 2 additions, 2
    subtractions per iteration (the loop-exit comparison is omitted, as in
    most allocation papers).
    """
    b = CDFGBuilder(name, cyclic=True)
    b.input("dx")
    for sv in ("x", "y", "u"):
        b.loop_value(sv)

    b.mul("m1", 3.0, "x", "t1")        # 3x
    b.mul("m2", "u", "dx", "t2")       # u*dx
    b.mul("m3", 3.0, "y", "t3")        # 3y
    b.mul("m4", "t1", "t2", "t4")      # 3x*u*dx
    b.mul("m5", "dx", "t3", "t5")      # 3y*dx
    b.sub("s1", "u", "t4", "t6")       # u - 3x*u*dx
    b.sub("s2", "t6", "t5", "u")       # u1
    b.mul("m6", "u", "dx", "t7")       # u*dx for the y update (old u, as in
    b.add("a1", "x", "dx", "x")        # the canonical HAL data-flow graph)
    b.add("a2", "y", "t7", "y")        # y1

    b.output("y")
    graph = b.build()
    validate_cdfg(graph)
    return graph


def fir_filter(taps: int = 8, name: str = "fir") -> CDFG:
    """A *taps*-point transposed-form FIR filter loop body.

    Structure: ``acc_k = x*c_k + z_k`` with a delay line ``z_k`` of
    loop-carried partial sums — `taps` multiplications and `taps - 1`
    additions per sample.
    """
    if taps < 2:
        raise ValueError("FIR needs at least 2 taps")
    b = CDFGBuilder(name, cyclic=True)
    b.input("x")
    for k in range(taps - 1):
        b.loop_value(f"z{k}")

    for k in range(taps):
        b.mul(f"m{k}", 0.1 * (k + 1), "x", f"p{k}")
    # y = p0 + z0 ; new z_k = p_{k+1} + z_{k+1} ; last z = p_{taps-1}
    b.add("a0", "p0", "z0", "y")
    for k in range(taps - 2):
        b.add(f"a{k + 1}", f"p{k + 1}", f"z{k + 1}", f"z{k}")
    # the deepest delay stage is loaded straight from the last product:
    # model it as an addition with a zero constant so it owns an operator
    b.add(f"a{taps - 1}", f"p{taps - 1}", 0.0, f"z{taps - 2}")

    b.output("y")
    graph = b.build()
    validate_cdfg(graph)
    return graph


def ar_lattice(name: str = "ar") -> CDFG:
    """The AR (auto-regressive) lattice filter benchmark.

    The classic 28-op version: 16 multiplications and 12 additions in two
    lattice stages, acyclic (one sample of the filter).
    """
    b = CDFGBuilder(name, cyclic=False)
    for i in range(4):
        b.input(f"in{i}")

    def stage(tag: str, a: str, c: str, outs) -> None:
        """One lattice rotation: 4 muls + 2 adds per (a, c) pair, twice."""
        b.mul(f"{tag}m0", 0.3, a, f"{tag}p0")
        b.mul(f"{tag}m1", 0.5, c, f"{tag}p1")
        b.mul(f"{tag}m2", 0.7, a, f"{tag}p2")
        b.mul(f"{tag}m3", 0.9, c, f"{tag}p3")
        b.add(f"{tag}a0", f"{tag}p0", f"{tag}p1", outs[0])
        b.add(f"{tag}a1", f"{tag}p2", f"{tag}p3", outs[1])

    stage("s0", "in0", "in1", ("l0", "l1"))
    stage("s1", "in2", "in3", ("l2", "l3"))
    b.add("c0", "l0", "l2", "c0v")
    b.add("c1", "l1", "l3", "c1v")
    stage("s2", "c0v", "c1v", ("l4", "l5"))
    stage("s3", "l4", "l5", ("out0", "out1"))
    b.add("c2", "l4", "out0", "out2")
    b.add("c3", "l5", "out1", "out3")

    for k in range(4):
        b.output(f"out{k}")
    graph = b.build()
    validate_cdfg(graph)
    return graph
