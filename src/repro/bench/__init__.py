"""Benchmark CDFGs: EWF and DCT (the paper's evaluation) plus classics."""

from repro.bench.ewf import EWF_COEFFICIENTS, elliptic_wave_filter, \
    ewf_invariants
from repro.bench.dct import discrete_cosine_transform, dct_invariants
from repro.bench.extras import ar_lattice, fir_filter, hal_diffeq
from repro.bench.toys import figure1_cdfg, figure3_fragment, figure4_fragment
from repro.bench.random_cdfg import random_cdfg
from repro.bench.zoo import FAMILIES, Scenario, default_suite, \
    scenario_for_fuzz

__all__ = [
    "EWF_COEFFICIENTS", "FAMILIES", "Scenario", "ar_lattice",
    "dct_invariants", "default_suite", "discrete_cosine_transform",
    "elliptic_wave_filter", "ewf_invariants", "figure1_cdfg",
    "figure3_fragment", "figure4_fragment", "fir_filter", "hal_diffeq",
    "random_cdfg", "scenario_for_fuzz",
]
