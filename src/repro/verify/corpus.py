"""Crash bucketing and reproducer emission for the differential fuzzer.

Failures are grouped by a *failure signature* — stage, exception type, and
a normalized message with identifiers and numbers abstracted away — so a
single root cause maps to one bucket no matter which random graph tripped
it.  Each bucket remembers its first (and, after shrinking, smallest)
failing case and can be written to disk as a runnable reproducer:

* ``results/fuzz/buckets.json`` — every bucket with its cases;
* ``results/fuzz/repro_<signature>.py`` — a standalone script that replays
  the shrunk case and exits 1 while the failure still reproduces.

The nightly CI lane keeps ``buckets.json`` from previous runs as the
known-failure baseline and fails only when a *new* signature appears.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

_QUOTED = re.compile(r"'[^']*'|\"[^\"]*\"")
_HEXNUM = re.compile(r"0x[0-9a-fA-F]+")
_NUMBER = re.compile(r"-?\d+(?:\.\d+)?(?:e-?\d+)?")
_SPACE = re.compile(r"\s+")


def normalize_message(message: str) -> str:
    """Strip run-specific detail (names, numbers) from an error message."""
    text = _QUOTED.sub("<id>", message)
    text = _HEXNUM.sub("<n>", text)
    text = _NUMBER.sub("<n>", text)
    return _SPACE.sub(" ", text).strip()


def failure_signature(stage: str, exc_type: str, message: str) -> str:
    """Stable bucket key for one failure mode.

    Only the headline (first line) of the message participates: detail
    lines carry per-case diffs that would split one root cause into many
    buckets.
    """
    headline = message.splitlines()[0] if message else ""
    normalized = normalize_message(headline)
    digest = hashlib.sha256(
        f"{stage}|{exc_type}|{normalized}".encode()).hexdigest()[:10]
    return f"{stage}-{exc_type}-{digest}"


@dataclass
class Bucket:
    """All observed failures sharing one signature."""

    signature: str
    stage: str
    exc_type: str
    example_message: str
    #: serialized :class:`~repro.verify.fuzz.FuzzCase` dicts, first hit first
    cases: List[Dict[str, Any]] = field(default_factory=list)
    #: smallest still-failing case found by the shrinker (serialized)
    shrunk: Optional[Dict[str, Any]] = None
    hits: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "signature": self.signature,
            "stage": self.stage,
            "exc_type": self.exc_type,
            "example_message": self.example_message,
            "cases": list(self.cases),
            "shrunk": self.shrunk,
            "hits": self.hits,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Bucket":
        return cls(signature=data["signature"], stage=data["stage"],
                   exc_type=data["exc_type"],
                   example_message=data["example_message"],
                   cases=list(data["cases"]), shrunk=data.get("shrunk"),
                   hits=data.get("hits", len(data["cases"])))


class Corpus:
    """A set of failure buckets accumulated over one or more fuzz runs."""

    def __init__(self) -> None:
        self.buckets: Dict[str, Bucket] = {}

    def __len__(self) -> int:
        return len(self.buckets)

    def add(self, signature: str, stage: str, exc_type: str, message: str,
            case: Dict[str, Any],
            shrunk: Optional[Dict[str, Any]] = None) -> bool:
        """Record one failure; returns True when the bucket is new."""
        bucket = self.buckets.get(signature)
        new = bucket is None
        if bucket is None:
            bucket = self.buckets[signature] = Bucket(
                signature=signature, stage=stage, exc_type=exc_type,
                example_message=message)
        bucket.hits += 1
        if case not in bucket.cases:
            bucket.cases.append(case)
        if shrunk is not None:
            bucket.shrunk = shrunk
        return new

    def signatures(self) -> List[str]:
        return sorted(self.buckets)

    def new_signatures(self, known: Set[str]) -> List[str]:
        """Buckets not present in the *known* baseline set."""
        return sorted(set(self.buckets) - set(known))

    def summary(self) -> str:
        """Deterministic multi-line description of the corpus."""
        if not self.buckets:
            return "corpus: no failures"
        lines = [f"corpus: {len(self.buckets)} bucket(s)"]
        for signature in self.signatures():
            bucket = self.buckets[signature]
            lines.append(
                f"  {signature}: {bucket.hits} hit(s), stage "
                f"{bucket.stage}, {bucket.exc_type}: "
                f"{normalize_message(bucket.example_message)[:100]}")
        return "\n".join(lines)

    # -------------------------------------------------------- persistence

    def to_dict(self) -> Dict[str, Any]:
        return {"format": "repro.fuzz-corpus/1",
                "buckets": [self.buckets[s].to_dict()
                            for s in self.signatures()]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Corpus":
        corpus = cls()
        for entry in data.get("buckets", []):
            bucket = Bucket.from_dict(entry)
            corpus.buckets[bucket.signature] = bucket
        return corpus

    def save(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "Corpus":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    @staticmethod
    def known_signatures(path: Optional[str]) -> Set[str]:
        """Signatures recorded in a baseline file; empty when absent."""
        if not path or not os.path.exists(path):
            return set()
        return set(Corpus.load(path).buckets)

    # -------------------------------------------------------- reproducers

    def write_reproducers(self, out_dir: str,
                          inject: Optional[str] = None,
                          sanitize_every: int = 8) -> List[str]:
        """Write ``buckets.json`` plus one runnable script per bucket."""
        os.makedirs(out_dir, exist_ok=True)
        paths: List[str] = []
        buckets_path = os.path.join(out_dir, "buckets.json")
        self.save(buckets_path)
        paths.append(buckets_path)
        for signature in self.signatures():
            bucket = self.buckets[signature]
            case = bucket.shrunk or (bucket.cases[0] if bucket.cases
                                     else None)
            if case is None:
                continue
            script = os.path.join(out_dir, f"repro_{signature}.py")
            with open(script, "w") as handle:
                handle.write(_reproducer_script(bucket, case, inject,
                                                sanitize_every))
            paths.append(script)
        return paths


def _reproducer_script(bucket: Bucket, case: Dict[str, Any],
                       inject: Optional[str], sanitize_every: int) -> str:
    case_json = json.dumps(case, indent=2, sort_keys=True)
    return f'''"""Auto-generated fuzz reproducer — bucket {bucket.signature}.

Stage: {bucket.stage}
Exception: {bucket.exc_type}
Message: {normalize_message(bucket.example_message)[:200]}

Run with ``PYTHONPATH=src python {os.path.basename("repro_" + bucket.signature + ".py")}``;
exits 1 while the failure still reproduces, 0 once it is fixed.
"""

import json
import sys

from repro.verify.fuzz import FuzzCase, run_case

CASE = json.loads("""{case_json}""")
INJECT = {inject!r}
SANITIZE_EVERY = {sanitize_every}


def main() -> int:
    failure = run_case(FuzzCase.from_dict(CASE), inject=INJECT,
                       sanitize_every=SANITIZE_EVERY)
    if failure is None:
        print("no longer reproduces: {bucket.signature}")
        return 0
    print(f"reproduced {{failure.signature}} at stage {{failure.stage}}:")
    print(f"  {{failure.exc_type}}: {{failure.message}}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
'''
