"""Failure classification for the serving layer's retry policy.

The job manager (:mod:`repro.service.jobs`) retries a failed search with a
fresh seed only when retrying can plausibly help.  The split:

* **retryable** — the failure depends on the particular random walk or on
  transient process state: a :class:`~repro.verify.sanitizer.SanitizerError`
  (the sanitizer already filed a reproducer; a different seed takes a
  different trajectory through the move space), a crashed worker process,
  or resource exhaustion (``MemoryError``, pool breakage, ``OSError``);
* **fatal** — the failure is a deterministic property of the request
  itself (infeasible register budget, malformed CDFG, bad config), so the
  same error would come back on every retry and the client should see it
  immediately.

``KeyboardInterrupt``/``SystemExit`` are neither: they must propagate.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.errors import ReproError
from repro.verify.sanitizer import SanitizerError

RETRYABLE = "retryable"
FATAL = "fatal"

#: transient process/runtime failures worth a fresh-seed retry
_TRANSIENT_TYPES = (BrokenProcessPool, BrokenExecutor, ConnectionError,
                    MemoryError, OSError)


def classify_failure(exc: BaseException) -> str:
    """``"retryable"`` or ``"fatal"`` for the service retry policy."""
    if isinstance(exc, SanitizerError):
        # seed-dependent by construction: the sanitizer trips on one
        # specific move trajectory, and it has already serialized the
        # reproducer for offline debugging
        return RETRYABLE
    if isinstance(exc, ReproError):
        # deterministic library errors (infeasible problem, bad config,
        # malformed input) reproduce identically under any seed
        return FATAL
    if isinstance(exc, _TRANSIENT_TYPES):
        return RETRYABLE
    return FATAL


def is_retryable(exc: BaseException) -> bool:
    return classify_failure(exc) == RETRYABLE
