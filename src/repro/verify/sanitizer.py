"""Shadow-state sanitizer for the incremental binding engine.

The allocator's hot loop trusts two delicate mechanisms: every move is a
list of primitive mutations with *undo closures*, and only dirty connection
sites are re-derived on :meth:`~repro.core.binding.Binding.flush`.  A stale
site or a bad undo silently corrupts the mux count the whole search
optimizes.  This module is the opt-in referee for that machinery:

* **shadow-rebuild equivalence** — every N accepted moves a fresh
  :class:`~repro.core.binding.Binding` is rebuilt from
  :meth:`~repro.core.binding.Binding.clone_state` and its derived state
  (occupancy maps, FU tokens, per-site events, per-connection ledger
  refcounts) plus its :class:`~repro.datapath.cost.CostBreakdown` must be
  bit-identical to the live binding's;
* **apply→rollback round-trips** — a probed move that gets rolled back must
  restore the exact prior raw *and* derived state;
* the full legality checker (:func:`repro.alloc.checker.check_binding`,
  which includes ``ledger.verify()``) runs at every shadow check.

Violations raise :class:`SanitizerError` carrying the offending move and a
serialized reproducer (the decision-state snapshot plus context), which the
fuzzer (:mod:`repro.verify.fuzz`) buckets and shrinks.

Enable it with ``ImproveConfig.sanitize`` / ``AnnealConfig.sanitize`` or
globally with the ``REPRO_SANITIZE=1`` environment variable (read by
``improve``, ``anneal`` and the parallel restart engine).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError

SANITIZE_ENV = "REPRO_SANITIZE"
_FALSY = ("", "0", "false", "no", "off")


def sanitize_enabled(flag: bool = False) -> bool:
    """True when sanitizing is requested by *flag* or the environment."""
    if flag:
        return True
    return os.environ.get(SANITIZE_ENV, "").strip().lower() not in _FALSY


# ------------------------------------------------------------- state codecs

def encode_state(state: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-able encoding of a :meth:`Binding.clone_state` snapshot."""
    return {
        "op_fu": dict(state["op_fu"]),
        "op_swap": dict(state["op_swap"]),
        "placements": [[value, step, list(regs)]
                       for (value, step), regs
                       in sorted(state["placements"].items())],
        "read_src": [[op_name, port, reg]
                     for (op_name, port), reg
                     in sorted(state["read_src"].items())],
        "out_src": dict(state["out_src"]),
        "pt_impl": [[value, step, reg, list(impl)]
                    for (value, step, reg), impl
                    in sorted(state["pt_impl"].items())],
    }


def decode_state(data: Dict[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`encode_state` (restorable via ``restore_state``)."""
    return {
        "op_fu": dict(data["op_fu"]),
        "op_swap": dict(data["op_swap"]),
        "placements": {(value, step): tuple(regs)
                       for value, step, regs in data["placements"]},
        "read_src": {(op_name, port): reg
                     for op_name, port, reg in data["read_src"]},
        "out_src": dict(data["out_src"]),
        "pt_impl": {(value, step, reg): tuple(impl)
                    for value, step, reg, impl in data["pt_impl"]},
    }


class SanitizerError(ReproError):
    """A shadow-state or round-trip invariant was violated.

    Carries enough structure to reproduce the failure offline:
    the context label of the search that tripped it, the offending move
    (name and attempt index), the individual violations, and the encoded
    decision-state snapshot at the moment of the failure.
    """

    def __init__(self, message: str, *, context: str = "",
                 move_name: Optional[str] = None,
                 move_index: Optional[int] = None,
                 problems: Optional[List[str]] = None,
                 state: Optional[Dict[str, Any]] = None) -> None:
        self.context = context
        self.move_name = move_name
        self.move_index = move_index
        self.problems = list(problems or [])
        self.reproducer: Dict[str, Any] = {
            "context": context,
            "move_name": move_name,
            "move_index": move_index,
            "problems": self.problems,
            "state": encode_state(state) if state is not None else None,
        }
        detail = f"sanitizer: {message}"
        if move_name is not None:
            detail += f" (move {move_name!r} at attempt {move_index})"
        if self.problems:
            detail += "\n  " + "\n  ".join(self.problems[:12])
        super().__init__(detail)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.reproducer, indent=indent, sort_keys=True)


def _diff_snapshots(live: Dict[str, Any], other: Dict[str, Any],
                    other_name: str) -> List[str]:
    """Human-readable differences between two derived snapshots."""
    problems: List[str] = []
    for section in sorted(set(live) | set(other)):
        a, b = live.get(section, {}), other.get(section, {})
        if a == b:
            continue
        keys = [k for k in set(a) | set(b) if a.get(k) != b.get(k)]
        for key in sorted(keys, key=repr)[:3]:
            problems.append(
                f"{section}[{key!r}]: live={a.get(key)!r} "
                f"{other_name}={b.get(key)!r}")
        if len(keys) > 3:
            problems.append(
                f"{section}: {len(keys) - 3} more differing entries")
    return problems


class ShadowSanitizer:
    """Per-search sanitizer driven by the improvement loops.

    The engine calls :meth:`pre_move` before trying a move,
    :meth:`after_rollback` when it reverts one, and :meth:`after_accept`
    when it keeps one.  Probing density is controlled by *every*: every
    ``every``-th attempt is snapshotted for the round-trip check, and every
    ``every``-th acceptance triggers a full shadow rebuild.
    """

    def __init__(self, binding: "Any", every: int = 64,
                 context: str = "") -> None:
        self.binding = binding
        self.every = max(1, int(every))
        self.context = context
        self.checks_run = 0
        self.probes_run = 0
        self._attempts = 0
        self._accepts = 0
        self._probe: Optional[Tuple[int, Dict[str, Any], Dict[str, Any]]] = \
            None

    # ---------------------------------------------------------------- hooks

    def pre_move(self, move_name: str, move_index: int) -> None:
        """Maybe snapshot the state a rollback must restore exactly."""
        self._attempts += 1
        if self._attempts % self.every == 0:
            self._probe = (move_index, self.binding.clone_state(),
                           self.binding.derived_snapshot())
        else:
            self._probe = None

    def after_rollback(self, move_name: str, move_index: int) -> None:
        """Check a rolled-back probed move restored the prior state."""
        if self._probe is None or self._probe[0] != move_index:
            return
        _index, raw_before, derived_before = self._probe
        self._probe = None
        self.probes_run += 1
        problems: List[str] = []
        raw_after = self.binding.clone_state()
        if raw_after != raw_before:
            problems.extend(_diff_snapshots(
                raw_before, raw_after, "after-rollback"))
        derived_after = self.binding.derived_snapshot()
        if derived_after != derived_before:
            problems.extend(_diff_snapshots(
                derived_before, derived_after, "after-rollback"))
        if problems:
            raise SanitizerError(
                "apply/rollback round-trip did not restore the prior state",
                context=self.context, move_name=move_name,
                move_index=move_index, problems=problems, state=raw_before)

    def after_accept(self, move_name: str, move_index: int) -> None:
        """Maybe run the full shadow-rebuild check after an acceptance."""
        self._accepts += 1
        if self._accepts % self.every == 0:
            self.check(move_name=move_name, move_index=move_index)

    # ---------------------------------------------------------------- checks

    def check(self, move_name: Optional[str] = None,
              move_index: Optional[int] = None) -> None:
        """Full shadow-rebuild equivalence + legality check (unconditional).

        Rebuilds a fresh binding from the live decision state and asserts
        the incremental ledger, occupancy maps, site events and cost are
        bit-identical, then runs the independent legality checker.
        """
        from repro.core.binding import Binding
        from repro.alloc.checker import check_binding

        self.checks_run += 1
        binding = self.binding
        raw = binding.clone_state()
        live = binding.derived_snapshot()
        problems: List[str] = []

        shadow = Binding(binding.schedule, list(binding.fus.values()),
                         list(binding.regs.values()),
                         weights=binding.weights)
        try:
            shadow.restore_state(raw)
        except ReproError as exc:
            problems.append(f"decision state not replayable: {exc}")
        else:
            problems.extend(_diff_snapshots(
                live, shadow.derived_snapshot(), "shadow"))
            live_cost = binding.cost()
            shadow_cost = shadow.cost()
            if live_cost != shadow_cost:
                problems.append(
                    f"cost diverged: live {live_cost} vs shadow "
                    f"{shadow_cost}")

        # incremental-counter cross-check: the O(1) running totals behind
        # cost()/total_cost() must be bit-identical to a from-scratch
        # re-derivation of the same CostBreakdown (the oracle for the
        # allocator's fast accept path)
        scratch_cost = binding.cost_from_scratch()
        live_cost = binding.cost()
        if live_cost != scratch_cost:
            problems.append(
                f"incremental cost diverged from scratch rebuild: "
                f"live {live_cost} vs scratch {scratch_cost}")
        fast_total = binding.total_cost()
        if fast_total != scratch_cost.total:
            problems.append(
                f"total_cost() fast path diverged: fast {fast_total!r} vs "
                f"scratch {scratch_cost.total!r}")

        # mux-depth bit-identity: the ledger's O(1) incremental depth total
        # must equal the estimate sta.py derives from the emitted netlist's
        # mux trees (Σ ceil(log2(#sources))); an incomplete binding has no
        # netlist, so the cross-check only runs once one can be built
        from repro.datapath.netlist import build_netlist
        from repro.timing.sta import netlist_mux_depth
        try:
            netlist = build_netlist(binding)
        except ReproError:
            pass
        else:
            sta_depth = netlist_mux_depth(netlist)
            if sta_depth != binding.ledger.mux_depth:
                problems.append(
                    f"mux depth diverged: ledger {binding.ledger.mux_depth} "
                    f"vs sta {sta_depth}")

        # independent referee: structural legality + ledger.verify()
        problems.extend(check_binding(binding))

        if problems:
            raise SanitizerError(
                "shadow-rebuild equivalence violated",
                context=self.context, move_name=move_name,
                move_index=move_index, problems=problems, state=raw)


def make_sanitizer(binding: "Any", enabled: bool, every: int,
                   context: str = "") -> Optional[ShadowSanitizer]:
    """A sanitizer when enabled by *enabled* or the environment, else None."""
    if not sanitize_enabled(enabled):
        return None
    return ShadowSanitizer(binding, every=every, context=context)
