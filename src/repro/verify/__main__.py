"""Command-line entry point of the differential fuzzer.

Examples::

    # quick local run, 30 seconds, fixed seed, reproducers in results/fuzz
    PYTHONPATH=src python -m repro.verify --budget 30s --seed 0

    # nightly CI lane: date-derived seed, fail only on NEW failure buckets
    PYTHONPATH=src python -m repro.verify --budget 300s --seed from-date \\
        --known results/fuzz/buckets.json

Exit status is 0 for a clean run (or when every failure falls into a known
bucket from ``--known``), 1 when a new failure bucket appeared.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.verify.fuzz import FuzzCase, FuzzConfig, FuzzFailure, run_fuzz


def parse_budget(text: str) -> float:
    """Parse a time budget: ``300``, ``300s``, ``5m``, ``1h``."""
    text = text.strip().lower()
    scale = 1.0
    if text.endswith("s"):
        text = text[:-1]
    elif text.endswith("m"):
        text, scale = text[:-1], 60.0
    elif text.endswith("h"):
        text, scale = text[:-1], 3600.0
    try:
        seconds = float(text) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad budget {text!r}")
    if seconds <= 0:
        raise argparse.ArgumentTypeError("budget must be positive")
    return seconds


def parse_seed(text: str) -> int:
    """An integer seed, or ``from-date`` for a daily deterministic seed."""
    if text.strip().lower() == "from-date":
        return int(time.strftime("%Y%m%d"))
    try:
        return int(text, 0)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seed must be an integer or 'from-date', got {text!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential fuzzer for the SALSA allocation pipeline")
    parser.add_argument("--budget", type=parse_budget, default=None,
                        metavar="TIME",
                        help="wall-clock budget, e.g. 30s, 5m (default: "
                             "none; falls back to --max-cases)")
    parser.add_argument("--max-cases", type=int, default=None, metavar="N",
                        help="stop after N cases (default 20 when no "
                             "--budget is given)")
    parser.add_argument("--seed", type=parse_seed, default=0,
                        help="root seed (integer) or 'from-date'")
    parser.add_argument("--out", default="results/fuzz", metavar="DIR",
                        help="directory for reproducers and buckets.json "
                             "(default results/fuzz)")
    parser.add_argument("--known", default=None, metavar="FILE",
                        help="baseline buckets.json; only NEW buckets fail "
                             "the run")
    parser.add_argument("--min-ops", type=int, default=6)
    parser.add_argument("--max-ops", type=int, default=18)
    parser.add_argument("--zoo-fraction", type=float, default=0.35,
                        metavar="F",
                        help="fraction of cases drawn from structured "
                             "repro.bench.zoo scenarios instead of random "
                             "CDFGs (default 0.35; 0 disables)")
    parser.add_argument("--sanitize-every", type=int, default=8,
                        metavar="N", help="sanitizer probe density")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip minimizing failing cases")
    parser.add_argument("--inject", choices=["undo"], default=None,
                        help="test-only fault injection")
    parser.add_argument("--restore-churn", type=int, default=0,
                        metavar="N",
                        help="every Nth improvement trial, round-trip the "
                             "binding through clone/restore to stress the "
                             "diff-replay restore path (0 disables)")
    parser.add_argument("--rtl-check", action="store_true",
                        help="per case, additionally round-trip the SALSA "
                             "binding through RTL emission and the "
                             "cycle-accurate netlist simulator "
                             "(repro.timing.rtlcheck)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress lines")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = FuzzConfig(
        seed=args.seed,
        budget_seconds=args.budget,
        max_cases=args.max_cases,
        min_ops=args.min_ops,
        max_ops=args.max_ops,
        zoo_fraction=args.zoo_fraction,
        sanitize_every=args.sanitize_every,
        shrink=not args.no_shrink,
        out_dir=args.out,
        known_buckets=args.known,
        inject=args.inject,
        restore_churn=args.restore_churn,
        rtl_check=args.rtl_check,
    )

    def progress(case: FuzzCase, failure: Optional[FuzzFailure]) -> None:
        if args.quiet:
            return
        verdict = "ok" if failure is None else \
            f"FAIL {failure.signature}"
        shape = case.family if case.family else "random"
        print(f"case {case.index:4d} {shape:<9s} ops={case.n_ops:3d} "
              f"sched={case.scheduler:<4s} seed={case.seed}: {verdict}",
              flush=True)

    report = run_fuzz(config, progress=progress)
    print(report.summary())
    print(f"elapsed: {report.elapsed:.1f}s; reproducers in "
          f"{args.out}" if report.reproducer_paths else
          f"elapsed: {report.elapsed:.1f}s")
    if report.new_buckets:
        print(f"NEW failure bucket(s): {', '.join(report.new_buckets)}")
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
