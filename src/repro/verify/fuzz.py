"""Budgeted differential fuzzing of the full allocation pipeline.

Each *case* is sampled deterministically from a root seed (all randomness
flows through :class:`repro.rng.SeedStream` — a case index alone pins the
graph, the scheduler, and every search seed).  A case:

1. generates a random CDFG (:func:`repro.bench.random_cdfg.random_cdfg`)
   across sizes, with or without loop-carried values;
2. schedules it with one of ASAP / resource-constrained list scheduling /
   force-directed scheduling;
3. runs **both** allocators (traditional baseline and extended SALSA) with
   the shadow-state sanitizer on, so every accepted move is audited against
   a fresh rebuild of the binding;
4. cross-checks each result with the RTL-vs-CDFG-interpreter differential
   simulator (:func:`repro.datapath.simulate.verify_binding`);
5. asserts cost-model invariants: warm-started improvement never ends worse
   than its start, multiplexer merging never increases mux cost, and
   unbinding+rebinding a pass-through restores the exact cost and derived
   state (pass-through removal round-trips).

Failures are bucketed by signature (:mod:`repro.verify.corpus`), greedily
shrunk to a smallest reproducer (:mod:`repro.verify.shrink`), and emitted
as runnable scripts.  ``python -m repro.verify`` is the CLI entry point.

The module also hosts the test-only fault-injection hook
(:class:`BrokenUndoMoveSet`, ``inject="undo"``) used to prove the pipeline
end-to-end: an injected bad undo closure must be caught by the sanitizer,
shrunk, and emitted as a reproducer.
"""

from __future__ import annotations

import time
from dataclasses import MISSING, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.rng import SeedStream, make_rng
from repro.bench.random_cdfg import random_cdfg
from repro.bench.zoo import FAMILIES as ZOO_FAMILIES
from repro.bench.zoo import scenario_for_fuzz
from repro.cdfg.graph import CDFG
from repro.core.allocator import (AllocationResult, SalsaAllocator,
                                  TraditionalAllocator,
                                  salsa_from_traditional)
from repro.core.improve import ImproveConfig
from repro.core.moves import MoveSet
from repro.datapath.muxmerge import merge_muxes
from repro.datapath.netlist import build_netlist
from repro.datapath.simulate import verify_binding
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.sched.schedule import Schedule
from repro.verify.corpus import Corpus, failure_signature
from repro.verify.shrink import ShrinkResult, shrink_case

_SCHEDULERS = ("asap", "list", "fds")


# ----------------------------------------------------------------- the case

@dataclass(frozen=True)
class FuzzCase:
    """A fully deterministic description of one fuzz case."""

    index: int
    seed: int
    n_ops: int
    n_inputs: int
    const_fraction: float
    loop_fraction: float
    scheduler: str          # "asap" | "list" | "fds"
    length_slack: int       # extra steps past the critical path
    extra_registers: int    # registers beyond the schedule minimum
    restarts: int
    max_trials: int
    moves_per_trial: int
    uphill: int
    iterations: int         # differential-simulation iterations
    #: zoo family name for a structured case ("" = random CDFG); the
    #: family reuses ``n_ops`` as its size knob so the shrinker's integer
    #: bisection shrinks structured cases too
    family: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index, "seed": self.seed, "n_ops": self.n_ops,
            "n_inputs": self.n_inputs,
            "const_fraction": self.const_fraction,
            "loop_fraction": self.loop_fraction,
            "scheduler": self.scheduler,
            "length_slack": self.length_slack,
            "extra_registers": self.extra_registers,
            "restarts": self.restarts, "max_trials": self.max_trials,
            "moves_per_trial": self.moves_per_trial,
            "uphill": self.uphill, "iterations": self.iterations,
            "family": self.family,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzCase":
        """Rebuild a case; fields absent from *data* (reproducers written
        before the field existed) keep their dataclass defaults."""
        values: Dict[str, Any] = {}
        for name, spec in cls.__dataclass_fields__.items():
            if name in data:
                values[name] = data[name]
            elif spec.default is not MISSING:
                values[name] = spec.default
            else:
                values[name] = data[name]  # KeyError: genuinely required
        return cls(**values)


@dataclass
class FuzzFailure:
    """One failing case with its classification."""

    case: FuzzCase
    stage: str
    exc_type: str
    message: str

    @property
    def signature(self) -> str:
        return failure_signature(self.stage, self.exc_type, self.message)


@dataclass
class FuzzConfig:
    """Knobs of one fuzzing run."""

    seed: int = 0
    budget_seconds: Optional[float] = None
    max_cases: Optional[int] = None
    min_ops: int = 6
    max_ops: int = 18
    #: fraction of cases built from structured zoo scenarios
    #: (:mod:`repro.bench.zoo`) instead of purely random CDFGs — the
    #: random generator explores unusual shapes, the zoo guarantees the
    #: realistic ones (filters, butterflies, ALU op mixes) every run
    zoo_fraction: float = 0.35
    sanitize_every: int = 8
    shrink: bool = True
    shrink_attempts: int = 48
    out_dir: Optional[str] = None
    known_buckets: Optional[str] = None
    #: test-only fault injection ("undo" breaks one move's undo closure)
    inject: Optional[str] = None
    #: when > 0, every Nth improvement trial round-trips the binding
    #: through clone/restore (``ImproveConfig.restore_churn``), stressing
    #: the diff-replay restore path under the sanitizer
    restore_churn: int = 0
    #: additionally run the RTL round-trip lane per case: interpret the
    #: CDFG, simulate the emitted netlist cycle-accurately, diff outputs,
    #: and lint the generated Verilog (:mod:`repro.timing.rtlcheck`)
    rtl_check: bool = False


# ------------------------------------------------------------ fault injection

class BrokenUndoMoveSet(MoveSet):
    """Test-only move set whose victim move cannot be rolled back cleanly.

    From the *arm_at*-th application of the victim move onward, the victim
    additionally toggles one operand-swap flag *outside* all rollback
    bookkeeping: the extra mutation is in neither the returned undo-closure
    list (breaking engines that revert via undo closures, like ``anneal``)
    nor the binding's write journal (breaking engines that revert via
    ``Binding.abort_move``, like ``improve``).  The binding stays legal —
    the toggle is an ordinary primitive — but rolling the move back leaves
    it silently different from the pre-move state, exactly the
    incomplete-rollback class of bug the shadow-state sanitizer exists to
    catch.  Never use outside tests and fuzz fault-injection runs.
    """

    def __init__(self, victim: str = "R2", arm_at: int = 1) -> None:
        super().__init__()
        self.victim = victim
        self.arm_at = max(1, int(arm_at))
        self.applications = 0

    def enabled_moves(self):
        table = super().enabled_moves()
        return [(name, self._wrap(fn) if name == self.victim else fn,
                 weight) for name, fn, weight in table]

    def _wrap(self, fn):
        def buggy(binding, rng):
            undos = fn(binding, rng)
            if undos:
                self.applications += 1
                if self.applications >= self.arm_at and \
                        binding.commutative_ops:
                    op = binding.commutative_ops[0]
                    raw = binding._raw_journal
                    binding._raw_journal = None  # hide from abort_move
                    try:
                        binding.set_op_swap(  # undo deliberately dropped
                            op, not binding.op_swap.get(op, False))
                    finally:
                        binding._raw_journal = raw
            return undos
        return buggy


def _injected_move_set(inject: Optional[str]) -> Optional[MoveSet]:
    if inject is None:
        return None
    if inject == "undo":
        return BrokenUndoMoveSet()
    raise ValueError(f"unknown fault injection {inject!r}")


# ------------------------------------------------------------- case sampling

def sample_case(stream: SeedStream, index: int,
                config: FuzzConfig) -> FuzzCase:
    """Deterministically derive case *index* of the run."""
    rng = make_rng(stream.child(index, 0))
    n_ops = rng.randrange(config.min_ops, max(config.min_ops,
                                              config.max_ops) + 1)
    cyclic = rng.random() < 0.3
    family = ""
    if rng.random() < config.zoo_fraction:
        family = rng.choice(sorted(ZOO_FAMILIES))
    return FuzzCase(
        family=family,
        index=index,
        seed=stream.child(index, 1),
        n_ops=n_ops,
        n_inputs=rng.randrange(1, 4),
        const_fraction=round(rng.uniform(0.0, 0.4), 3),
        loop_fraction=round(rng.uniform(0.1, 0.3), 3) if cyclic else 0.0,
        scheduler=rng.choice(list(_SCHEDULERS)),
        length_slack=rng.randrange(0, 3),
        extra_registers=rng.randrange(0, 3),
        restarts=rng.randrange(1, 3),
        max_trials=rng.randrange(2, 4),
        moves_per_trial=rng.randrange(60, 161),
        uphill=rng.randrange(0, 7),
        iterations=rng.randrange(2, 5),
    )


def build_problem(case: FuzzCase) -> Tuple[CDFG, Schedule]:
    """Materialize the CDFG and schedule of a case (clamped to validity).

    Clamping (rather than raising) keeps every shrunk parameter vector
    buildable, so the shrinker can explore aggressively.
    """
    n_ops = max(2, case.n_ops)
    if case.family:
        # structured case: the zoo scenario fixes graph and hardware spec;
        # scenario_for_fuzz clamps n_ops onto valid family parameters so
        # every shrunk size stays buildable
        scenario = scenario_for_fuzz(case.family, n_ops, case.seed)
        graph = scenario.build()
        spec = scenario.spec()
    else:
        n_inputs = max(1, min(case.n_inputs, n_ops))
        loop_fraction = case.loop_fraction
        if loop_fraction > 0:
            n_loop = min(max(1, round(n_ops * loop_fraction)), n_ops // 2)
            if n_loop + n_inputs > n_ops - n_loop:
                loop_fraction = 0.0  # the loop head/tail would not fit
        graph = random_cdfg(n_ops=n_ops, n_inputs=n_inputs,
                            const_fraction=case.const_fraction,
                            loop_fraction=loop_fraction, seed=case.seed,
                            name=f"fuzz{case.index}")
        spec = HardwareSpec.non_pipelined()
    if case.scheduler == "asap":
        schedule = schedule_graph(graph, spec, None, method="list")
    elif case.scheduler == "fds":
        from repro.sched.asap import asap_length
        length = asap_length(graph, spec) + case.length_slack
        schedule = schedule_graph(graph, spec, length, method="fds")
    else:
        from repro.sched.asap import asap_length
        length = asap_length(graph, spec) + case.length_slack
        schedule = schedule_graph(graph, spec, length, method="list")
    return graph, schedule


# --------------------------------------------------------------- case replay

def _improve_config(case: FuzzCase, sanitize_every: int,
                    move_set: Optional[MoveSet],
                    restore_churn: int = 0) -> ImproveConfig:
    config = ImproveConfig(
        max_trials=max(1, case.max_trials),
        moves_per_trial=max(1, case.moves_per_trial),
        uphill_per_trial=max(0, case.uphill),
        idle_trials_stop=2,
        sanitize=True,
        sanitize_every=max(1, sanitize_every),
        restore_churn=max(0, restore_churn))
    if move_set is not None:
        config = replace(config, move_set=move_set)
    return config


def _check_invariants(case: FuzzCase, trad: AllocationResult,
                      salsa: AllocationResult,
                      sanitize_every: int) -> None:
    # warm-started improvement never ends worse than its start
    warm = salsa_from_traditional(
        trad, config=_improve_config(case, sanitize_every, None),
        seed=case.seed)
    if warm.cost.total > trad.cost.total + 1e-9:
        raise AssertionError(
            f"warm-started improvement worsened cost: {trad.cost.total} "
            f"-> {warm.cost.total}")

    for result in (trad, salsa):
        # mux merging must never increase mux cost or instance count
        report = merge_muxes(build_netlist(result.binding))
        if report.after_eq21 > report.before_eq21 or \
                report.after_instances > report.before_instances:
            raise AssertionError(
                f"mux merge increased cost on {result.label}: {report}")

    # pass-through removal round-trips: unbind + undo restores everything
    binding = salsa.binding
    for key in sorted(binding.pt_impl):
        before_cost = binding.cost()
        before_derived = binding.derived_snapshot()
        undo = binding.set_pt(key[0], key[1], key[2], None)
        binding.flush()
        undo()
        binding.flush()
        if binding.cost() != before_cost or \
                binding.derived_snapshot() != before_derived:
            raise AssertionError(
                f"pass-through removal did not round-trip for {key}")


def run_case(case: FuzzCase,
             inject: Optional[str] = None,
             sanitize_every: int = 8,
             restore_churn: int = 0,
             rtl_check: bool = False) -> Optional[FuzzFailure]:
    """Replay one case; ``None`` on success, the failure otherwise."""
    stage = "generate"
    try:
        _graph, schedule = build_problem(case)
        registers = schedule.min_registers() + max(0, case.extra_registers)

        stage = "traditional"
        trad = TraditionalAllocator(
            seed=case.seed, restarts=max(1, case.restarts),
            config=_improve_config(
                case, sanitize_every, None,
                restore_churn=restore_churn)).allocate(
                schedule.graph, schedule=schedule, registers=registers)
        stage = "traditional-simulate"
        verify_binding(trad.binding, iterations=max(1, case.iterations),
                       seed=case.seed)

        stage = "salsa"
        salsa = SalsaAllocator(
            seed=case.seed, restarts=max(1, case.restarts),
            config=_improve_config(
                case, sanitize_every, _injected_move_set(inject),
                restore_churn=restore_churn)).allocate(
                schedule.graph, schedule=schedule, registers=registers)
        stage = "salsa-simulate"
        verify_binding(salsa.binding, iterations=max(1, case.iterations),
                       seed=case.seed)

        if rtl_check:
            stage = "rtl-roundtrip"
            # deferred: repro.timing.rtlcheck reaches back into the bench
            # scenario machinery this module also imports
            from repro.timing.rtlcheck import roundtrip_binding
            report = roundtrip_binding(
                salsa.binding, name=_case_brief(case),
                family=case.family, iterations=max(1, case.iterations),
                seed=case.seed)
            if not report.ok:
                raise AssertionError(str(report))

        stage = "invariants"
        _check_invariants(case, trad, salsa, sanitize_every)
    except Exception as exc:  # noqa: BLE001 - the fuzzer traps everything
        return FuzzFailure(case=case, stage=stage,
                           exc_type=type(exc).__name__, message=str(exc))
    return None


# ----------------------------------------------------------------- the loop

@dataclass
class FuzzReport:
    """Everything one fuzzing run produced."""

    config: FuzzConfig
    cases_run: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    corpus: Corpus = field(default_factory=Corpus)
    shrinks: Dict[str, ShrinkResult] = field(default_factory=dict)
    new_buckets: List[str] = field(default_factory=list)
    elapsed: float = 0.0
    reproducer_paths: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """Deterministic run summary (wall-clock intentionally excluded)."""
        lines = [f"fuzz: {self.cases_run} case(s) run, "
                 f"{len(self.failures)} failure(s), "
                 f"{len(self.corpus)} bucket(s), "
                 f"{len(self.new_buckets)} new"]
        lines.append(self.corpus.summary())
        for signature in sorted(self.shrinks):
            shrunk = self.shrinks[signature]
            lines.append(
                f"  shrunk {signature}: {shrunk.reductions} reduction(s) "
                f"in {shrunk.attempts} replay(s) -> "
                f"{_case_brief(shrunk.case)}")
        return "\n".join(lines)

    @property
    def exit_code(self) -> int:
        """0 when clean or all failures are known buckets, 1 otherwise."""
        return 1 if self.new_buckets else 0


def _case_brief(case: FuzzCase) -> str:
    shape = f"zoo:{case.family}" if case.family else "random"
    return (f"case(index={case.index}, {shape}, ops={case.n_ops}, "
            f"sched={case.scheduler}, restarts={case.restarts}, "
            f"trials={case.max_trials}x{case.moves_per_trial})")


def run_fuzz(config: FuzzConfig,
             progress=None) -> FuzzReport:
    """Run the fuzzing loop until the case or time budget is exhausted."""
    started = time.perf_counter()
    report = FuzzReport(config=config)
    stream = SeedStream(config.seed)
    max_cases = config.max_cases
    if max_cases is None and config.budget_seconds is None:
        max_cases = 20  # neither budget given: bounded default

    index = 0
    while True:
        if max_cases is not None and index >= max_cases:
            break
        if config.budget_seconds is not None and \
                time.perf_counter() - started >= config.budget_seconds:
            break
        case = sample_case(stream, index, config)
        index += 1
        report.cases_run += 1
        failure = run_case(case, inject=config.inject,
                           sanitize_every=config.sanitize_every,
                           restore_churn=config.restore_churn,
                           rtl_check=config.rtl_check)
        if progress is not None:
            progress(case, failure)
        if failure is None:
            continue
        report.failures.append(failure)
        shrunk_dict: Optional[Dict[str, Any]] = None
        if config.shrink:
            target = failure.signature

            def replay(candidate: FuzzCase) -> Optional[str]:
                result = run_case(candidate, inject=config.inject,
                                  sanitize_every=config.sanitize_every,
                                  restore_churn=config.restore_churn,
                                  rtl_check=config.rtl_check)
                return None if result is None else result.signature

            shrunk = shrink_case(failure.case, target, replay,
                                 max_attempts=config.shrink_attempts)
            report.shrinks[target] = shrunk
            shrunk_dict = shrunk.case.to_dict()
        report.corpus.add(failure.signature, failure.stage,
                          failure.exc_type, failure.message,
                          failure.case.to_dict(), shrunk=shrunk_dict)

    known = Corpus.known_signatures(config.known_buckets)
    report.new_buckets = report.corpus.new_signatures(known)
    if config.out_dir is not None:
        report.reproducer_paths = report.corpus.write_reproducers(
            config.out_dir, inject=config.inject,
            sanitize_every=config.sanitize_every)
    report.elapsed = time.perf_counter() - started
    return report
