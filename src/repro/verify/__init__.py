"""Differential fuzzing and shadow-state sanitizing (``repro.verify``).

The correctness tooling of the reproduction, built on the two strongest
oracles the library owns:

* :mod:`repro.verify.sanitizer` — opt-in shadow-state sanitizer for the
  incremental binding engine (shadow-rebuild equivalence, apply/rollback
  round-trips, full legality checks), enabled per-config or via
  ``REPRO_SANITIZE=1``;
* :mod:`repro.verify.fuzz` — budgeted differential fuzzer: random CDFGs
  across sizes and schedulers, both allocators with sanitize on,
  netlist-simulation-vs-interpreter differential checking, and cost-model
  invariants;
* :mod:`repro.verify.shrink` — greedy minimization of a failing case to
  its smallest still-failing form;
* :mod:`repro.verify.corpus` — failure-signature bucketing and runnable
  reproducer emission (``results/fuzz/``).

Run the fuzzer from the command line::

    PYTHONPATH=src python -m repro.verify --budget 30s --seed 0

All randomness is routed through :class:`repro.rng.SeedStream`, so a run is
reproducible end-to-end from its root seed.

This ``__init__`` imports the sanitizer eagerly (the core engines depend on
it) but loads the fuzzing stack lazily, so ``repro.core`` modules can import
``repro.verify.sanitizer`` without creating an import cycle through the
allocators the fuzzer drives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.verify.classify import (FATAL, RETRYABLE, classify_failure,
                                   is_retryable)
from repro.verify.sanitizer import (SANITIZE_ENV, SanitizerError,
                                    ShadowSanitizer, decode_state,
                                    encode_state, make_sanitizer,
                                    sanitize_enabled)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.verify import corpus, fuzz, shrink  # noqa: F401

_LAZY_SUBMODULES = ("corpus", "fuzz", "shrink")

__all__ = [
    "FATAL", "RETRYABLE", "SANITIZE_ENV", "SanitizerError",
    "ShadowSanitizer", "classify_failure", "corpus", "decode_state",
    "encode_state", "fuzz", "is_retryable", "make_sanitizer",
    "sanitize_enabled", "shrink",
]


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        import importlib

        return importlib.import_module(f"repro.verify.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
