"""Greedy minimization of a failing fuzz case.

A failing case is fully described by its :class:`~repro.verify.fuzz.FuzzCase`
(root seed, graph-shape parameters, scheduler, and search budgets) — replay
is deterministic, so shrinking is a search over that parameter vector for
the smallest case that still fails *with the same signature*.  The shrinker
walks each dimension greedily: it first tries the dimension's floor (the
biggest possible reduction), then bisects toward the current value,
accepting any candidate that preserves the failure, and repeats passes
until a fixpoint or the attempt budget runs out.

Smaller reproducers matter twice over: they replay in milliseconds in CI,
and a 6-op graph with one trial of a dozen moves is something a human can
actually step through.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # imported lazily: fuzz imports shrink, not vice versa
    from repro.verify.fuzz import FuzzCase

#: dimensions shrunk toward a floor, in the order tried; budgets first
#: (cheapest wins), then graph shape
_INT_DIMENSIONS: Tuple[Tuple[str, int], ...] = (
    ("restarts", 1),
    ("max_trials", 1),
    ("moves_per_trial", 8),
    ("uphill", 0),
    ("iterations", 1),
    ("extra_registers", 0),
    ("length_slack", 0),
    ("n_ops", 2),
    ("n_inputs", 1),
)

_FLOAT_DIMENSIONS: Tuple[Tuple[str, float], ...] = (
    ("loop_fraction", 0.0),
    ("const_fraction", 0.0),
)


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    case: "FuzzCase"           # the smallest still-failing case
    attempts: int = 0          # replays spent
    reductions: int = 0        # accepted shrink steps
    trace: List[str] = field(default_factory=list)


def shrink_case(case: "FuzzCase", target_signature: str,
                replay: Callable[["FuzzCase"], Optional[str]],
                max_attempts: int = 64) -> ShrinkResult:
    """Minimize *case* while ``replay(case) == target_signature``.

    *replay* runs a candidate and returns its failure signature (or ``None``
    when it passes); candidates failing with a *different* signature are
    rejected too, so the reproducer stays pinned to the original bug.
    """
    result = ShrinkResult(case=case)

    def still_fails(candidate: "FuzzCase") -> bool:
        if result.attempts >= max_attempts:
            return False
        result.attempts += 1
        return replay(candidate) == target_signature

    progress = True
    while progress and result.attempts < max_attempts:
        progress = False
        for name, floor in _INT_DIMENSIONS:
            progress |= _shrink_int(result, name, floor, still_fails)
        for name, floor in _FLOAT_DIMENSIONS:
            progress |= _shrink_float(result, name, floor, still_fails)
    return result


def _accept(result: ShrinkResult, name: str, old: object,
            candidate: "FuzzCase") -> None:
    new = getattr(candidate, name)
    result.case = candidate
    result.reductions += 1
    result.trace.append(f"{name}: {old} -> {new}")


def _shrink_int(result: ShrinkResult, name: str, floor: int,
                still_fails: Callable[["FuzzCase"], bool]) -> bool:
    current = getattr(result.case, name)
    if current <= floor:
        return False
    # floor first (largest cut), then bisection toward the current value
    candidate = replace(result.case, **{name: floor})
    if still_fails(candidate):
        _accept(result, name, current, candidate)
        return True
    progressed = False
    low, high = floor, current
    while high - low > 1:
        mid = (low + high) // 2
        candidate = replace(result.case, **{name: mid})
        if still_fails(candidate):
            _accept(result, name, high, candidate)
            high = mid
            progressed = True
        else:
            low = mid
    return progressed


def _shrink_float(result: ShrinkResult, name: str, floor: float,
                  still_fails: Callable[["FuzzCase"], bool]) -> bool:
    current = getattr(result.case, name)
    if current <= floor + 1e-12:
        return False
    candidate = replace(result.case, **{name: floor})
    if still_fails(candidate):
        _accept(result, name, current, candidate)
        return True
    candidate = replace(result.case, **{name: round(current / 2, 4)})
    if still_fails(candidate):
        _accept(result, name, current, candidate)
        return True
    return False
