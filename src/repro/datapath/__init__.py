"""Datapath substrate: units, interconnect ledger, netlist, simulation."""

from repro.datapath.units import (ADDER, ALU, FU, FUType, HardwareSpec,
                                  MULTIPLIER, PIPELINED_MULTIPLIER,
                                  Register, make_registers)
from repro.datapath.cost import CostBreakdown, CostWeights
from repro.datapath.interconnect import (ConnectionLedger, fu_in, fu_out,
                                         in_port, out_port, reg_in, reg_out)
from repro.datapath.netlist import (IssueEntry, Mux, Netlist, OutEntry,
                                    WriteEntry, build_netlist)
from repro.datapath.muxmerge import MergeReport, MergedMux, merge_muxes
from repro.datapath.simulate import (DatapathSimulator, SimTrace,
                                     simulate_binding, verify_binding)
from repro.datapath.rtl import netlist_to_verilog

__all__ = [
    "ADDER", "ALU", "ConnectionLedger", "CostBreakdown", "CostWeights",
    "DatapathSimulator", "FU", "FUType", "HardwareSpec", "IssueEntry",
    "MULTIPLIER", "MergeReport", "MergedMux", "Mux", "Netlist", "OutEntry",
    "PIPELINED_MULTIPLIER", "Register", "SimTrace", "WriteEntry",
    "build_netlist", "fu_in", "fu_out", "in_port", "make_registers",
    "merge_muxes", "netlist_to_verilog", "out_port", "reg_in", "reg_out",
    "simulate_binding", "verify_binding",
]
