"""Datapath netlist construction from a finished binding.

Turns a legal :class:`~repro.core.binding.Binding` into an explicit
structural description: registers, functional units, the multiplexer in
front of every multi-source sink, and the per-control-step control tables
(operation issues, register writes, output samples) that the simulator
(:mod:`repro.datapath.simulate`), the mux-merging post-pass
(:mod:`repro.datapath.muxmerge`) and the RTL emitter
(:mod:`repro.datapath.rtl`) all consume.

Timing recap: an operation issuing at step ``t`` latches operands during
``t`` and drives its FU output at the end of step ``t + delay - 1``; all
register writes happen simultaneously at the end of a step; output ports
sample during a step (before that step's writes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DatapathError
from repro.cdfg.nodes import Const
from repro.datapath.interconnect import (Endpoint, fu_in, fu_out, in_port,
                                         out_port, reg_in, reg_out)


@dataclass(frozen=True)
class IssueEntry:
    """An operation issuing on a functional unit at some step."""

    step: int
    fu: str
    op: str
    kind: str
    #: per logical operand: ("reg", name) or ("const", value)
    operand_srcs: Tuple[Tuple, ...]
    #: physical port of each logical operand (after operand reversal)
    ports: Tuple[int, ...]
    end_step: int


@dataclass(frozen=True)
class WriteEntry:
    """A register write at the end of some step."""

    step: int            # write happens at the END of this step
    reg: str
    #: ("op_result", op) | ("reg", src_reg) | ("pt", src_reg, fu, port)
    #: | ("in_port", value, next_iteration: bool)
    source: Tuple
    value: str           # the CDFG value being written (for tracing)


@dataclass(frozen=True)
class OutEntry:
    """An output-port sample."""

    step: int            # sampled during this step ...
    value: str
    #: ("reg", name) | ("op_result", op)  (port-captured: at end of step)
    source: Tuple
    at_end: bool         # True for port-captured values
    #: 1 when the sample lands one iteration after the value was produced
    #: (a loop-carried output whose producer finishes at the last step)
    iteration_offset: int = 0


@dataclass(frozen=True)
class Mux:
    """A physical multiplexer in front of one sink."""

    sink: Endpoint
    sources: Tuple[Endpoint, ...]

    @property
    def eq21(self) -> int:
        """Equivalent 2-1 multiplexer count of this mux."""
        return max(0, len(self.sources) - 1)


@dataclass
class Netlist:
    """A complete structural datapath + control description."""

    name: str
    length: int
    cyclic: bool
    fus: List[str]
    regs: List[str]
    muxes: List[Mux] = field(default_factory=list)
    connections: List[Tuple[Endpoint, Endpoint]] = field(default_factory=list)
    issues: List[IssueEntry] = field(default_factory=list)
    writes: List[WriteEntry] = field(default_factory=list)
    outs: List[OutEntry] = field(default_factory=list)
    #: (value, reg) registers that must be preloaded before step 0 of the
    #: first iteration (loop-carried state and arrival-step-0 inputs)
    preloads: List[Tuple[str, str]] = field(default_factory=list)

    def mux_eq21(self) -> int:
        return sum(m.eq21 for m in self.muxes)

    def selection_schedule(self) -> Dict[Endpoint, Dict[int, Endpoint]]:
        """Per-sink, per-step selected source (for mux merging)."""
        sel: Dict[Endpoint, Dict[int, Endpoint]] = {}

        def record(sink: Endpoint, step: int, src: Endpoint) -> None:
            per_step = sel.setdefault(sink, {})
            if per_step.get(step, src) != src:
                raise DatapathError(
                    f"sink {sink} selects two sources at step {step}: "
                    f"{per_step[step]} and {src}")
            per_step[step] = src

        for issue in self.issues:
            for operand, port in zip(issue.operand_srcs, issue.ports):
                if operand[0] == "reg":
                    record(fu_in(issue.fu, port), issue.step,
                           reg_out(operand[1]))
        for write in self.writes:
            src = write.source
            if src[0] == "op_result":
                producer_fu = self._fu_of_op(src[1])
                record(reg_in(write.reg), write.step, fu_out(producer_fu))
            elif src[0] == "reg":
                record(reg_in(write.reg), write.step, reg_out(src[1]))
            elif src[0] == "pt":
                _src_reg, fu_name, port = src[1], src[2], src[3]
                record(fu_in(fu_name, port), write.step, reg_out(src[1]))
                record(reg_in(write.reg), write.step, fu_out(fu_name))
            elif src[0] == "in_port":
                record(reg_in(write.reg), write.step, in_port(src[1]))
        return sel

    def _fu_of_op(self, op_name: str) -> str:
        for issue in self.issues:
            if issue.op == op_name:
                return issue.fu
        raise DatapathError(f"no issue entry for operation {op_name!r}")


def build_netlist(binding) -> Netlist:
    """Construct the :class:`Netlist` of a complete, legal binding."""
    graph = binding.graph
    schedule = binding.schedule
    length = binding.length
    netlist = Netlist(
        name=graph.name,
        length=length,
        cyclic=graph.cyclic,
        fus=sorted(binding.fus),
        regs=sorted(binding.regs),
    )

    # --- issues -----------------------------------------------------------
    for op_name, op in graph.ops.items():
        fu_name = binding.op_fu.get(op_name)
        if fu_name is None:
            raise DatapathError(f"operation {op_name!r} unbound")
        swap = binding.op_swap.get(op_name, False)
        srcs: List[Tuple] = []
        ports: List[int] = []
        for idx, operand in enumerate(op.operands):
            if isinstance(operand, Const):
                srcs.append(("const", operand.value))
            else:
                reg = binding.read_src.get((op_name, idx))
                if reg is None:
                    raise DatapathError(
                        f"operation {op_name!r} port {idx} has no read "
                        f"source")
                srcs.append(("reg", reg))
            ports.append((1 - idx) if (swap and op.arity == 2) else idx)
        netlist.issues.append(IssueEntry(
            step=schedule.start[op_name], fu=fu_name, op=op_name,
            kind=op.kind, operand_srcs=tuple(srcs), ports=tuple(ports),
            end_step=schedule.end(op_name)))

    # --- writes, preloads, outputs -------------------------------------------
    for vname, val in graph.values.items():
        interval = binding.interval(vname)
        if binding.port_captured(vname):
            producer = val.producer
            if val.is_output and producer is not None:
                netlist.outs.append(OutEntry(
                    step=schedule.end(producer), value=vname,
                    source=("op_result", producer), at_end=True))
            continue

        birth_regs = binding.segment_regs(vname, interval.birth)
        if val.is_input:
            arrival = val.arrival_step
            if arrival == 0 and not graph.cyclic:
                netlist.preloads.extend((vname, r) for r in birth_regs)
            else:
                boundary = (arrival - 1) % length
                next_iter = arrival == 0  # written for the next iteration
                for reg in birth_regs:
                    netlist.writes.append(WriteEntry(
                        step=boundary, reg=reg,
                        source=("in_port", vname, next_iter), value=vname))
                if graph.cyclic and arrival == 0:
                    netlist.preloads.extend((vname, r) for r in birth_regs)
        else:
            producer = val.producer
            if producer is None:
                raise DatapathError(f"value {vname!r} has no producer")
            write_step = (schedule.end(producer)) % length
            for reg in birth_regs:
                netlist.writes.append(WriteEntry(
                    step=write_step, reg=reg,
                    source=("op_result", producer), value=vname))

        # transfers along the lifetime
        steps = interval.steps
        for idx in range(1, len(steps)):
            src_step, dst_step = steps[idx - 1], steps[idx]
            prev = binding.segment_regs(vname, src_step)
            for dst in binding.segment_regs(vname, dst_step):
                if dst in prev:
                    continue
                impl = binding.pt_impl.get((vname, dst_step, dst))
                if impl is not None:
                    source = ("pt", impl[0], impl[1], impl[2])
                else:
                    source = ("reg", prev[0])
                netlist.writes.append(WriteEntry(
                    step=src_step, reg=dst, source=source, value=vname))

        # loop-carried preload: the first segment of the wrapped suffix must
        # contain the previous iteration's value before step 0
        if val.loop_carried:
            carried = _carried_in_step(interval)
            if carried is not None:
                for reg in binding.segment_regs(vname, carried):
                    netlist.preloads.append((vname, reg))

        if val.is_output:
            sample = binding.out_sample_step(vname)
            reg = binding.out_src.get(vname)
            if reg is None:
                raise DatapathError(f"output {vname!r} has no sample source")
            offset = 0
            if val.loop_carried and val.producer is not None and \
                    schedule.end(val.producer) == length - 1:
                # born exactly at the iteration boundary: the sample at
                # step 0 reads the *previous* iteration's result
                offset = 1
            netlist.outs.append(OutEntry(
                step=sample, value=vname, source=("reg", reg),
                at_end=False, iteration_offset=offset))

    # --- muxes and connections -----------------------------------------------
    for sink in binding.ledger.sinks():
        sources = binding.ledger.sources_of(sink)
        for src in sources:
            netlist.connections.append((src, sink))
        if len(sources) > 1:
            netlist.muxes.append(Mux(sink=sink, sources=tuple(sources)))

    return netlist


def _carried_in_step(interval) -> Optional[int]:
    """First live step of the wrapped (next-iteration) part of a loop
    value's interval, or ``None`` if nothing is carried across."""
    steps = interval.steps
    if not steps:
        return None
    if interval.birth == steps[0] and steps[0] == 0 and interval.wraps is False:
        # birth wrapped to step 0 (producer finished at the last step):
        # the whole interval is the carried-in part
        return steps[0]
    for idx in range(1, len(steps)):
        if steps[idx] < steps[idx - 1]:
            return steps[idx]
    # no wrap inside the interval; if it starts at 0 it is all carried-in
    return steps[0] if steps[0] == 0 else None
