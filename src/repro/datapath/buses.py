"""Bus-oriented interconnect extraction (paper Sec. 7, future work).

"First, extensions to interconnection allocation should be investigated to
improve on the point-to-point model currently used."  This module provides
that extension as a post-pass: the point-to-point connections of a
finished allocation are merged onto shared **buses**.

A bus carries at most one value per control step, so two connections can
share a bus iff they never need to transport *different* source signals in
the same step.  Using the netlist's per-step selection schedule, each
connection gets an activity profile ``{step: source}``; compatible
connections (profiles that never disagree on a step's source) are packed
greedily onto buses, largest-traffic connection first — a classic
conflict-graph coloring in the style of the bus-oriented allocators the
paper cites ([6], Haroun & Elmasry).

Cost model: a bus with *d* distinct drivers costs ``d - 1`` equivalent 2-1
multiplexers (the driver selector); every sink that listens to more than
one bus/wire still pays its own input selector.  The report compares this
against the point-to-point mux count so the trade-off is visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datapath.interconnect import Endpoint
from repro.datapath.netlist import Netlist


@dataclass
class Bus:
    """One shared interconnect line."""

    name: str
    #: connections routed over this bus
    connections: List[Tuple[Endpoint, Endpoint]] = field(default_factory=list)
    #: per-step driving source
    schedule: Dict[int, Endpoint] = field(default_factory=dict)

    @property
    def drivers(self) -> List[Endpoint]:
        return sorted({src for src, _snk in self.connections})

    @property
    def readers(self) -> List[Endpoint]:
        return sorted({snk for _src, snk in self.connections})

    @property
    def driver_mux_eq21(self) -> int:
        return max(0, len(self.drivers) - 1)


@dataclass
class BusReport:
    """Result of :func:`extract_buses`."""

    buses: List[Bus]
    point_to_point_wires: int
    point_to_point_eq21: int
    bus_eq21: int

    @property
    def bus_count(self) -> int:
        return len(self.buses)

    def __str__(self) -> str:
        return (f"buses: {self.point_to_point_wires} point-to-point wires "
                f"-> {self.bus_count} buses; eq-2:1 "
                f"{self.point_to_point_eq21} (p2p) vs {self.bus_eq21} (bus)")


def _connection_profiles(netlist: Netlist) \
        -> Dict[Tuple[Endpoint, Endpoint], Dict[int, Endpoint]]:
    """Steps at which each connection actively carries its source."""
    selection = netlist.selection_schedule()
    profiles: Dict[Tuple[Endpoint, Endpoint], Dict[int, Endpoint]] = {}
    for src, snk in netlist.connections:
        profile: Dict[int, Endpoint] = {}
        per_step = selection.get(snk)
        if per_step is None:
            # single-source sink: it is fed whenever anything selects it;
            # conservatively treat it as active at every step
            profile = {step: src for step in range(netlist.length)}
        else:
            for step, chosen in per_step.items():
                if chosen == src:
                    profile[step] = src
        profiles[(src, snk)] = profile
    return profiles


def extract_buses(netlist: Netlist) -> BusReport:
    """Pack the netlist's connections onto shared buses."""
    profiles = _connection_profiles(netlist)
    order = sorted(profiles, key=lambda c: (-len(profiles[c]), c))

    buses: List[Bus] = []
    for connection in order:
        profile = profiles[connection]
        placed = False
        for bus in buses:
            if all(bus.schedule.get(step, src) == src
                   for step, src in profile.items()):
                bus.connections.append(connection)
                bus.schedule.update(profile)
                placed = True
                break
        if not placed:
            bus = Bus(name=f"bus{len(buses)}")
            bus.connections.append(connection)
            bus.schedule.update(profile)
            buses.append(bus)

    # sink selectors: a sink pays (number of distinct buses it reads) - 1
    sink_buses: Dict[Endpoint, set] = {}
    for bus in buses:
        for _src, snk in bus.connections:
            sink_buses.setdefault(snk, set()).add(bus.name)
    sink_eq21 = sum(max(0, len(b) - 1) for b in sink_buses.values())
    bus_eq21 = sink_eq21 + sum(bus.driver_mux_eq21 for bus in buses)

    return BusReport(
        buses=buses,
        point_to_point_wires=len(netlist.connections),
        point_to_point_eq21=netlist.mux_eq21(),
        bus_eq21=bus_eq21,
    )
