"""Control-unit extraction from an allocated datapath.

Allocation decisions determine the control signals a datapath needs each
control step: multiplexer selects, register write enables, FU operation
selects, and output-port strobes.  This module derives the complete
**control word table** from a netlist, packs it into fields, and reports
controller cost estimates (word width, distinct words, ROM bits) — the
"controller effects" dimension the follow-up literature (Huang & Wolf,
DAC'92 sibling paper 18.x) studies, and a practical necessity for anyone
using the allocator's output.

The table is also emitted as a one-hot FSM in Verilog so the datapath
module from :mod:`repro.datapath.rtl` has a driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import DatapathError
from repro.datapath.interconnect import Endpoint
from repro.datapath.netlist import Netlist


@dataclass(frozen=True)
class ControlField:
    """One field of the control word.

    Width 0 is legal: a single-source mux or an always-idle FU needs no
    control bits at all.  Such a field still appears in the table (so the
    per-sink accounting stays complete) but packs no bits into the word
    and emits no wire in the Verilog controller.
    """

    name: str
    width: int
    #: per-step value of the field (defaults to 0 when inactive)
    values: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.width < 0:
            raise DatapathError(
                f"control field {self.name!r}: negative width {self.width}")
        limit = 1 << self.width
        for step, value in enumerate(self.values):
            if not 0 <= value < limit:
                raise DatapathError(
                    f"control field {self.name!r}: value {value} at step "
                    f"{step} does not fit in {self.width} bits")


@dataclass
class ControlTable:
    """The complete per-step control specification of a datapath."""

    length: int
    fields: List[ControlField] = field(default_factory=list)

    @property
    def word_width(self) -> int:
        return sum(f.width for f in self.fields)

    def words(self) -> List[int]:
        """The packed control word of every step (MSB = first field)."""
        packed = []
        for step in range(self.length):
            word = 0
            for f in self.fields:
                word = (word << f.width) | f.values[step]
            packed.append(word)
        return packed

    def distinct_words(self) -> int:
        return len(set(self.words()))

    def rom_bits(self) -> int:
        """Bits of a simple ROM implementation (steps x word width)."""
        return self.length * self.word_width

    def summary(self) -> str:
        return (f"controller: {self.length} steps, "
                f"{len(self.fields)} fields, {self.word_width}-bit word, "
                f"{self.distinct_words()} distinct words, "
                f"{self.rom_bits()} ROM bits")


def _select_width(n_sources: int) -> int:
    return max(1, (n_sources - 1).bit_length()) if n_sources > 1 else 0


def extract_control(netlist: Netlist) -> ControlTable:
    """Build the control table of *netlist*."""
    table = ControlTable(length=netlist.length)
    selection = netlist.selection_schedule()

    # mux select fields
    for mux in netlist.muxes:
        sources = list(mux.sources)
        width = _select_width(len(sources))
        per_step = [0] * netlist.length
        for step, src in selection.get(mux.sink, {}).items():
            per_step[step % netlist.length] = sources.index(src)
        table.fields.append(ControlField(
            name=f"sel_{_endpoint_label(mux.sink)}", width=width,
            values=tuple(per_step)))

    # register write enables
    write_steps: Dict[str, set] = {}
    for write in netlist.writes:
        write_steps.setdefault(write.reg, set()).add(write.step)
    for reg in netlist.regs:
        steps = write_steps.get(reg, set())
        table.fields.append(ControlField(
            name=f"we_{reg}", width=1,
            values=tuple(1 if s in steps else 0
                         for s in range(netlist.length))))

    # FU operation selects (idle / one code per distinct kind, plus a
    # pass-through code when the unit forwards values)
    pt_steps: Dict[str, set] = {}
    for write in netlist.writes:
        if write.source[0] == "pt":
            pt_steps.setdefault(write.source[2], set()).add(write.step)
    for fu in netlist.fus:
        issues = [i for i in netlist.issues if i.fu == fu]
        kinds = sorted({i.kind for i in issues})
        codes = {kind: idx + 1 for idx, kind in enumerate(kinds)}
        pass_code = len(codes) + 1 if pt_steps.get(fu) else None
        n_codes = 1 + len(codes) + (1 if pass_code else 0)
        # an always-idle FU (n_codes == 1) legitimately gets a 0-bit field
        width = _select_width(n_codes)
        per_step = [0] * netlist.length
        for issue in issues:
            per_step[issue.step] = codes[issue.kind]
        for step in pt_steps.get(fu, ()):
            per_step[step] = pass_code
        table.fields.append(ControlField(
            name=f"op_{fu}", width=width, values=tuple(per_step)))

    # output strobes
    for out in netlist.outs:
        per_step = [0] * netlist.length
        per_step[out.step % netlist.length] = 1
        table.fields.append(ControlField(
            name=f"oe_{out.value}", width=1, values=tuple(per_step)))

    return table


def _endpoint_label(endpoint: Endpoint) -> str:
    if endpoint[0] == "fu_in":
        return f"{endpoint[1]}_a{endpoint[2]}"
    if endpoint[0] == "reg_in":
        return f"{endpoint[1]}"
    return "_".join(str(part) for part in endpoint)


def controller_to_verilog(table: ControlTable,
                          name: str = "controller") -> str:
    """Emit the control table as a one-hot-state Verilog FSM."""
    # width-0 fields are bookkeeping-only (single-source muxes, idle FUs):
    # they carry no information, so no wire is emitted for them
    emitted = [f for f in table.fields if f.width > 0]
    lines = [f"// generated by repro.datapath.controller",
             f"// {table.summary()}",
             f"module {name} (",
             "  input  wire clk,",
             "  input  wire rst,"]
    for index, f in enumerate(emitted):
        comma = "," if index + 1 < len(emitted) else ""
        if f.width == 1:
            lines.append(f"  output reg {f.name}{comma}")
        else:
            lines.append(f"  output reg [{f.width - 1}:0] {f.name}{comma}")
    lines.append(");")
    lines.append("")
    steps = table.length
    lines.append(f"  reg [{steps - 1}:0] state;  // one-hot")
    lines.append("  always @(posedge clk) begin")
    lines.append(f"    if (rst) state <= {steps}'d1;")
    lines.append("    else state <= {state[" + str(steps - 2) +
                 ":0], state[" + str(steps - 1) + "]};")
    lines.append("  end")
    lines.append("")
    lines.append("  always @* begin")
    for f in emitted:
        lines.append(f"    {f.name} = {f.width}'d0;")
    lines.append("    case (1'b1)")
    for step in range(steps):
        active = [f"      state[{step}]: begin"]
        body = []
        for f in emitted:
            if f.values[step]:
                body.append(f"        {f.name} = "
                            f"{f.width}'d{f.values[step]};")
        if body:
            lines.extend(active + body + ["      end"])
    lines.append("      default: ;")
    lines.append("    endcase")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines)
