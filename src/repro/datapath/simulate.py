"""Cycle-accurate simulation of an allocated datapath.

Executes a :class:`~repro.datapath.netlist.Netlist` register by register,
step by step, and (in :func:`verify_binding`) checks every sampled output
against the CDFG reference interpreter.  This is the strongest correctness
statement the library makes about an allocation: whatever sequence of
moves produced the binding, the resulting hardware still computes exactly
the behaviour the CDFG specifies — segments, copies, pass-throughs,
operand reversals and all.

Step semantics (matching DESIGN.md Sec. 3):

1. during step ``t``: output ports with ``at_end=False`` sample their
   register; operations issuing at ``t`` latch their operands;
2. end of step ``t``: operations ending at ``t`` produce results;
   ``at_end`` output ports capture them; then **all** register writes for
   boundary ``t`` commit simultaneously (transfer sources are read from
   the pre-write register state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import DatapathError
from repro.cdfg.graph import CDFG
from repro.cdfg.interp import OP_SEMANTICS, run_iterations
from repro.datapath.netlist import Netlist, build_netlist


@dataclass
class SimTrace:
    """Simulation results: per-iteration sampled outputs."""

    outputs: List[Dict[str, float]] = field(default_factory=list)
    final_regs: Dict[str, float] = field(default_factory=dict)


class DatapathSimulator:
    """Executes a netlist on concrete input streams."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._issues_at: Dict[int, list] = {}
        self._ends_at: Dict[int, list] = {}
        for issue in netlist.issues:
            self._issues_at.setdefault(issue.step, []).append(issue)
            self._ends_at.setdefault(issue.end_step, []).append(issue)
        self._writes_at: Dict[int, list] = {}
        for write in netlist.writes:
            self._writes_at.setdefault(write.step, []).append(write)
        self._outs_at: Dict[int, list] = {}
        for out in netlist.outs:
            self._outs_at.setdefault(out.step, []).append(out)

    def run(self, input_streams: Mapping[str, Sequence[float]],
            initial_values: Mapping[str, float],
            iterations: int) -> SimTrace:
        """Simulate *iterations* iterations of the schedule.

        *initial_values* provides the iteration-0 contents of loop-carried
        values (and, for acyclic runs, nothing).  For cyclic netlists with
        arrival-step-0 inputs, ``input_streams[v][i]`` is consumed by
        iteration *i*.
        """
        netlist = self.netlist
        regs: Dict[str, float] = {name: 0.0 for name in netlist.regs}
        latches: Dict[str, Tuple[float, ...]] = {}
        results: Dict[str, float] = {}
        trace = SimTrace(outputs=[{} for _ in range(iterations)])

        def input_value(value: str, iteration: int) -> float:
            stream = input_streams.get(value)
            if stream is None or iteration >= len(stream):
                raise DatapathError(
                    f"input stream for {value!r} too short "
                    f"(iteration {iteration})")
            return float(stream[iteration])

        # preloads: initial loop state and iteration-0 step-0 inputs
        for value, reg in netlist.preloads:
            if value in initial_values:
                regs[reg] = float(initial_values[value])
            else:
                regs[reg] = input_value(value, 0)

        for iteration in range(iterations):
            for step in range(netlist.length):
                # --- during the step -----------------------------------
                for out in self._outs_at.get(step, []):
                    if out.at_end:
                        continue
                    target = iteration - out.iteration_offset
                    if 0 <= target < iterations:
                        trace.outputs[target][out.value] = regs[out.source[1]]
                for issue in self._issues_at.get(step, []):
                    operands = []
                    for src in issue.operand_srcs:
                        if src[0] == "const":
                            operands.append(src[1])
                        else:
                            operands.append(regs[src[1]])
                    latches[issue.op] = tuple(operands)

                # --- end of the step ------------------------------------
                for issue in self._ends_at.get(step, []):
                    fn = OP_SEMANTICS[issue.kind]
                    results[issue.op] = fn(*latches[issue.op])
                for out in self._outs_at.get(step, []):
                    if not out.at_end:
                        continue
                    target = iteration - out.iteration_offset
                    if 0 <= target < iterations:
                        trace.outputs[target][out.value] = \
                            results[out.source[1]]
                pending: List[Tuple[str, float]] = []
                for write in self._writes_at.get(step, []):
                    src = write.source
                    if src[0] == "op_result":
                        pending.append((write.reg, results[src[1]]))
                    elif src[0] == "reg":
                        pending.append((write.reg, regs[src[1]]))
                    elif src[0] == "pt":
                        pending.append((write.reg, regs[src[1]]))
                    elif src[0] == "in_port":
                        _tag, value, next_iter = src
                        target = iteration + 1 if next_iter else iteration
                        if target < iterations or not netlist.cyclic:
                            if target < iterations:
                                pending.append(
                                    (write.reg, input_value(value, target)))
                    else:
                        raise DatapathError(f"unknown write source {src}")
                for reg, val in pending:
                    regs[reg] = val

        trace.final_regs = dict(regs)
        return trace


def simulate_binding(binding, input_streams: Mapping[str, Sequence[float]],
                     initial_values: Mapping[str, float],
                     iterations: int) -> SimTrace:
    """Convenience wrapper: build the netlist and simulate it."""
    return DatapathSimulator(build_netlist(binding)).run(
        input_streams, initial_values, iterations)


def verify_binding(binding, iterations: int = 4, seed=0,
                   tol: float = 1e-9) -> SimTrace:
    """Simulate the allocated datapath on random stimuli and compare every
    sampled output against the CDFG interpreter.

    Raises :class:`DatapathError` on the first mismatch; returns the trace
    on success.  This is the library's end-to-end proof that a binding
    implements its CDFG.  *seed* is any :data:`repro.rng.RngLike`; stimuli
    are drawn through :func:`repro.rng.make_rng` so differential fuzz runs
    stay reproducible end-to-end.
    """
    from repro.rng import make_rng

    graph: CDFG = binding.graph
    rng = make_rng(seed)
    if not graph.cyclic:
        iterations = 1
    # a loop-carried output born exactly at the iteration boundary is only
    # observable one iteration later, so run the hardware one extra
    # iteration and compare the first `iterations` samples
    sim_iterations = iterations + (1 if graph.cyclic else 0)
    streams = {name: [round(rng.uniform(-4.0, 4.0), 3)
                      for _ in range(sim_iterations)]
               for name in graph.inputs}
    state = {name: round(rng.uniform(-4.0, 4.0), 3)
             for name in graph.loop_values}

    expected = run_iterations(graph, streams, state, iterations)
    trace = simulate_binding(binding, streams, state, sim_iterations)

    for it in range(iterations):
        for vname in graph.outputs:
            want = expected[it][vname]
            got = trace.outputs[it].get(vname)
            if got is None:
                raise DatapathError(
                    f"output {vname!r} never sampled in iteration {it}")
            if abs(got - want) > tol * max(1.0, abs(want)):
                raise DatapathError(
                    f"output {vname!r} iteration {it}: datapath produced "
                    f"{got!r}, interpreter says {want!r}")
    return trace
