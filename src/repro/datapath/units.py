"""Functional-unit and register hardware model.

The paper's evaluation (Sec. 5) assumes: adders take one control step,
multipliers take two, and pipelined multipliers have a latency (data
introduction interval) of one control step while still taking two steps to
produce a result.  Adder units may additionally implement *pass-through*
operations — forwarding an input value unmodified (Sec. 2).

A :class:`FUType` describes a class of functional units; a :class:`FU` is
one physical instance.  :class:`HardwareSpec` bundles the available types
with the operator-kind -> type mapping used by scheduling and binding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class FUType:
    """A class of functional units.

    Attributes
    ----------
    name:
        Type identifier (``"adder"``, ``"mult"``, ``"pmult"`` ...).
    ops:
        Operator kinds this unit can execute (excluding ``"pass"``, which
        is governed by ``can_passthrough``).
    delay:
        Control steps from operand read to result write.
    pipelined:
        When True the unit accepts a new operation every control step (it
        only occupies its issue slot); otherwise it is busy for ``delay``
        consecutive steps.
    can_passthrough:
        Whether an idle unit of this type may forward a value unmodified
        (a bindable slack node, paper Sec. 2).
    area:
        Relative area weight used by the allocation cost function.
    """

    name: str
    ops: FrozenSet[str]
    delay: int
    pipelined: bool = False
    can_passthrough: bool = False
    area: float = 1.0

    def __post_init__(self) -> None:
        if self.delay < 1:
            raise ConfigError(f"FU type {self.name!r}: delay must be >= 1")
        if not self.ops:
            raise ConfigError(f"FU type {self.name!r}: empty op set")

    def supports(self, kind: str) -> bool:
        return kind in self.ops or (kind == "pass" and self.can_passthrough)


@dataclass(frozen=True)
class FU:
    """One physical functional-unit instance, e.g. ``adder0``."""

    name: str
    fu_type: FUType

    @property
    def type_name(self) -> str:
        return self.fu_type.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Register:
    """One physical register instance."""

    name: str
    area: float = 1.0

    def __str__(self) -> str:
        return self.name


# -- canonical unit types (paper Sec. 5 hardware assumptions) ------------------

ADDER = FUType("adder", frozenset({"add", "sub"}), delay=1,
               pipelined=False, can_passthrough=True, area=1.0)
MULTIPLIER = FUType("mult", frozenset({"mul"}), delay=2,
                    pipelined=False, can_passthrough=False, area=4.0)
PIPELINED_MULTIPLIER = FUType("pmult", frozenset({"mul"}), delay=2,
                              pipelined=True, can_passthrough=False, area=5.0)
ALU = FUType("alu", frozenset({"add", "sub", "and", "or", "xor", "cmp",
                               "neg", "not"}),
             delay=1, pipelined=False, can_passthrough=True, area=1.5)


class HardwareSpec:
    """Available FU types plus the operator-kind -> type assignment.

    The paper performs no module selection: each operator kind is executed
    by exactly one FU type, chosen up front.
    """

    def __init__(self, fu_types: Iterable[FUType]) -> None:
        self.fu_types: Dict[str, FUType] = {}
        self.kind_to_type: Dict[str, str] = {}
        for fu_type in fu_types:
            if fu_type.name in self.fu_types:
                raise ConfigError(f"duplicate FU type {fu_type.name!r}")
            self.fu_types[fu_type.name] = fu_type
            for kind in fu_type.ops:
                if kind in self.kind_to_type:
                    raise ConfigError(
                        f"operator kind {kind!r} claimed by both "
                        f"{self.kind_to_type[kind]!r} and {fu_type.name!r}")
                self.kind_to_type[kind] = fu_type.name

    @classmethod
    def non_pipelined(cls) -> "HardwareSpec":
        """Paper default: 1-step adders, 2-step non-pipelined multipliers."""
        return cls([ADDER, MULTIPLIER])

    @classmethod
    def pipelined(cls) -> "HardwareSpec":
        """Paper "P" rows: 1-step adders, pipelined multipliers (latency 1)."""
        return cls([ADDER, PIPELINED_MULTIPLIER])

    # -- queries -------------------------------------------------------------

    def type_for_kind(self, kind: str) -> FUType:
        if kind == "pass":
            # explicit No-Op (slack) operators run on any unit that can
            # pass values through (paper Sec. 2)
            for name in sorted(self.fu_types):
                if self.fu_types[name].can_passthrough:
                    return self.fu_types[name]
            raise ConfigError("no pass-through-capable FU type available")
        try:
            return self.fu_types[self.kind_to_type[kind]]
        except KeyError:
            raise ConfigError(
                f"no FU type executes operator kind {kind!r}") from None

    def type_named(self, name: str) -> FUType:
        try:
            return self.fu_types[name]
        except KeyError:
            raise ConfigError(f"no FU type named {name!r}") from None

    def delays(self) -> Dict[str, int]:
        """Operator-kind -> delay mapping (``pass`` always takes one step)."""
        delays = {kind: self.fu_types[tname].delay
                  for kind, tname in self.kind_to_type.items()}
        delays["pass"] = 1
        return delays

    def passthrough_types(self) -> List[FUType]:
        """FU types allowed to implement pass-through transfers."""
        return [t for t in self.fu_types.values() if t.can_passthrough]

    def make_fus(self, counts: Mapping[str, int]) -> List[FU]:
        """Instantiate ``counts[type_name]`` units of each type.

        Instances are named ``<type><index>`` (``adder0``, ``mult1`` ...).
        """
        fus: List[FU] = []
        for type_name in sorted(counts):
            fu_type = self.type_named(type_name)
            count = counts[type_name]
            if count < 0:
                raise ConfigError(
                    f"negative FU count for type {type_name!r}")
            for index in range(count):
                fus.append(FU(f"{type_name}{index}", fu_type))
        return fus

    def __repr__(self) -> str:
        return f"HardwareSpec({sorted(self.fu_types)})"


def make_registers(count: int, prefix: str = "R") -> List[Register]:
    """Create *count* registers named ``R0 .. R<count-1>``."""
    if count < 0:
        raise ConfigError("register count must be non-negative")
    return [Register(f"{prefix}{index}") for index in range(count)]
