"""Point-to-point interconnect model with incremental cost maintenance.

The paper evaluates allocations under a point-to-point interconnection
style: module outputs connect to module inputs through a single level of
multiplexers, and interconnect cost is the number of **equivalent 2-to-1
multiplexers** — a sink (module input) driven by *k* distinct sources costs
``k - 1`` (Sec. 1, 4).  Because the iterative allocator re-evaluates cost
after every move, the ledger maintains the mux total incrementally: adding
or removing one connection use is O(1).

Sources and sinks are plain tuples:

===================  =============================================
``("fu_out", f)``    output of functional unit *f*
``("reg_out", r)``   output of register *r*
``("in_port", v)``   primary input port carrying value *v*
``("fu_in", f, p)``  input port *p* (0/1) of functional unit *f*
``("reg_in", r)``    data input of register *r*
``("out_port", v)``  primary output port sampling value *v*
===================  =============================================

A connection may be *used* by many events (the same register feeding the
same FU port in several control steps); the ledger reference-counts uses so
that removing one use does not delete a connection that another control
step still needs.

Internally the refcounts live in slot-indexed integer columns, not a
``dict``: each distinct pair ever seen is interned to a dense *slot* id and
each sink to a dense sink id, and the hot state is two flat lists of ints
(``uses`` per slot, ``fanin`` per sink).  Slots are append-only for the
life of the ledger, which is what makes :meth:`snapshot` two list copies
and :meth:`restore` two slice assignments — any slot allocated after a
snapshot necessarily had zero uses when it was taken.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Tuple

from repro.errors import DatapathError

Endpoint = Tuple  # ("fu_out", name) etc.
Connection = Tuple[Endpoint, Endpoint]

#: snapshot payload: (uses column, fanin column, mux total, wire total,
#: depth total)
LedgerSnapshot = Tuple[List[int], List[int], int, int, int]


def fu_out(fu: str) -> Endpoint:
    return ("fu_out", fu)


def reg_out(reg: str) -> Endpoint:
    return ("reg_out", reg)


def in_port(value: str) -> Endpoint:
    return ("in_port", value)


def fu_in(fu: str, port: int) -> Endpoint:
    return ("fu_in", fu, port)


def reg_in(reg: str) -> Endpoint:
    return ("reg_in", reg)


def out_port(value: str) -> Endpoint:
    return ("out_port", value)


class ConnectionLedger:
    """Reference-counted (source, sink) connection set with O(1) mux total."""

    def __init__(self) -> None:
        #: (src, sink) -> slot id (append-only intern table)
        self._slot_ids: Dict[Connection, int] = {}
        #: slot id -> pair
        self._pairs: List[Connection] = []
        #: slot id -> number of events using this connection (0 = absent)
        self._uses: List[int] = []
        #: slot id -> sink id of the pair's sink
        self._slot_sink: List[int] = []
        #: sink -> sink id (append-only intern table)
        self._sink_ids: Dict[Endpoint, int] = {}
        #: sink id -> sink
        self._sinks: List[Endpoint] = []
        #: sink id -> number of *distinct* live sources driving it
        self._fanin: List[int] = []
        self._mux_total = 0
        self._wire_total = 0
        #: Σ_sink ceil(log2(fanin)) — total 2-1 mux-tree levels (delay proxy)
        self._depth_total = 0

    # -- mutation -------------------------------------------------------------

    def add_pair(self, pair: Connection) -> None:
        """Record one more use of the ``(src, sink)`` connection *pair*.

        The pair tuple itself is the intern key, so hot callers that
        already hold one (the site-event lists are lists of pairs) pay no
        re-packing.
        """
        slot = self._slot_ids.get(pair)
        if slot is None:
            sink = pair[1]
            sink_id = self._sink_ids.get(sink)
            if sink_id is None:
                sink_id = len(self._sinks)
                self._sink_ids[sink] = sink_id
                self._sinks.append(sink)
                self._fanin.append(0)
            slot = len(self._pairs)
            self._slot_ids[pair] = slot
            self._pairs.append(pair)
            self._uses.append(0)
            self._slot_sink.append(sink_id)
        uses = self._uses
        count = uses[slot]
        uses[slot] = count + 1
        if count == 0:
            self._wire_total += 1
            fanin = self._fanin
            sink_id = self._slot_sink[slot]
            sink_fanin = fanin[sink_id] + 1
            fanin[sink_id] = sink_fanin
            if sink_fanin > 1:
                self._mux_total += 1
                # ceil(log2(n)) == (n-1).bit_length() for n >= 2, 0 below;
                # the fanin step k -> k+1 moves tree depth by the difference
                self._depth_total += ((sink_fanin - 1).bit_length() -
                                      (sink_fanin - 2).bit_length())

    def remove_pair(self, pair: Connection) -> None:
        """Drop one use; the connection goes dead when uses reach zero."""
        slot = self._slot_ids.get(pair)
        if slot is None or self._uses[slot] <= 0:
            raise DatapathError(f"removing non-existent connection {pair}")
        uses = self._uses
        count = uses[slot] - 1
        uses[slot] = count
        if count == 0:
            self._wire_total -= 1
            fanin = self._fanin
            sink_id = self._slot_sink[slot]
            sink_fanin = fanin[sink_id] - 1
            fanin[sink_id] = sink_fanin
            if sink_fanin > 0:
                self._mux_total -= 1
                self._depth_total -= (sink_fanin.bit_length() -
                                      (sink_fanin - 1).bit_length())

    def add(self, src: Endpoint, sink: Endpoint) -> None:
        """Record one more use of the connection *src* -> *sink*."""
        self.add_pair((src, sink))

    def remove(self, src: Endpoint, sink: Endpoint) -> None:
        """Drop one use; deletes the connection when uses reach zero."""
        self.remove_pair((src, sink))

    def add_events(self, events: Iterable[Connection]) -> None:
        add_pair = self.add_pair
        for pair in events:
            add_pair(pair)

    def remove_events(self, events: Iterable[Connection]) -> None:
        remove_pair = self.remove_pair
        for pair in events:
            remove_pair(pair)

    # -- bulk state -----------------------------------------------------------

    def snapshot(self) -> LedgerSnapshot:
        """O(slots) copy of the refcount columns for :meth:`restore`.

        Valid only against the same ledger instance: the payload stores no
        keys, just counts per slot/sink id.
        """
        return (self._uses[:], self._fanin[:], self._mux_total,
                self._wire_total, self._depth_total)

    def restore(self, snap: LedgerSnapshot) -> None:
        """Rewind this ledger's counts to a :meth:`snapshot` of **itself**.

        Slots and sink ids allocated after the snapshot are zeroed — they
        had zero uses when it was taken (slots are append-only and never
        reused).
        """
        uses, fanin, mux_total, wire_total, depth_total = snap
        live_uses = self._uses
        live_uses[:len(uses)] = uses
        for slot in range(len(uses), len(live_uses)):
            live_uses[slot] = 0
        live_fanin = self._fanin
        live_fanin[:len(fanin)] = fanin
        for sink_id in range(len(fanin), len(live_fanin)):
            live_fanin[sink_id] = 0
        self._mux_total = mux_total
        self._wire_total = wire_total
        self._depth_total = depth_total

    # -- queries --------------------------------------------------------------

    @property
    def mux_count(self) -> int:
        """Total equivalent 2-1 multiplexers: Σ_sink max(0, fanin-1)."""
        return self._mux_total

    @property
    def wire_count(self) -> int:
        """Number of distinct point-to-point connections."""
        return self._wire_total

    @property
    def mux_depth(self) -> int:
        """Total mux-tree levels: Σ_sink ceil(log2(max(1, fanin))).

        A sink with fanin *k* needs a tree of ``ceil(log2(k))`` 2-1 mux
        levels on its critical path; the sum over all sinks is the O(1)
        delay proxy the ``latency`` cost weight prices.  Maintained
        incrementally at fanin transitions in :meth:`add_pair` /
        :meth:`remove_pair`.
        """
        return self._depth_total

    def fanin(self, sink: Endpoint) -> int:
        sink_id = self._sink_ids.get(sink)
        return 0 if sink_id is None else self._fanin[sink_id]

    def sources_of(self, sink: Endpoint) -> List[Endpoint]:
        """Distinct sources driving *sink*, sorted for determinism."""
        pairs = self._pairs
        return sorted({pairs[slot][0]
                       for slot, count in enumerate(self._uses)
                       if count and pairs[slot][1] == sink})

    def sinks(self) -> List[Endpoint]:
        return sorted(sink for sink_id, sink in enumerate(self._sinks)
                      if self._fanin[sink_id] > 0)

    def connections(self) -> List[Connection]:
        """All distinct live connections, sorted."""
        pairs = self._pairs
        return sorted(pairs[slot] for slot, count in enumerate(self._uses)
                      if count)

    def uses(self, src: Endpoint, sink: Endpoint) -> int:
        slot = self._slot_ids.get((src, sink))
        return 0 if slot is None else self._uses[slot]

    def use_counts(self) -> Dict[Connection, int]:
        """Snapshot of every live connection's reference count.

        The sanitizer and the legality checker compare this against a
        from-scratch re-derivation: totals (``mux_count``/``wire_count``)
        can agree while an individual connection's count is off, so the
        per-connection map is the stronger oracle.
        """
        pairs = self._pairs
        return {pairs[slot]: count
                for slot, count in enumerate(self._uses) if count}

    def verify(self) -> None:
        """Cross-check the incremental counters (used by tests)."""
        pairs = self._pairs
        fanin = Counter(pairs[slot][1]
                        for slot, count in enumerate(self._uses) if count)
        live_fanin = {sink: self._fanin[sink_id]
                      for sink, sink_id in self._sink_ids.items()
                      if self._fanin[sink_id]}
        if fanin != live_fanin:
            raise DatapathError("ledger fanin counters out of sync")
        mux = sum(max(0, n - 1) for n in fanin.values())
        if mux != self._mux_total:
            raise DatapathError(
                f"ledger mux total out of sync: {self._mux_total} != {mux}")
        wires = sum(1 for count in self._uses if count)
        if wires != self._wire_total:
            raise DatapathError(
                f"ledger wire total out of sync: "
                f"{self._wire_total} != {wires}")
        depth = sum((n - 1).bit_length() for n in fanin.values() if n > 1)
        if depth != self._depth_total:
            raise DatapathError(
                f"ledger mux-depth total out of sync: "
                f"{self._depth_total} != {depth}")

    def __repr__(self) -> str:
        return (f"ConnectionLedger(wires={self.wire_count}, "
                f"mux={self.mux_count}, depth={self.mux_depth})")
