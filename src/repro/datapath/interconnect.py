"""Point-to-point interconnect model with incremental cost maintenance.

The paper evaluates allocations under a point-to-point interconnection
style: module outputs connect to module inputs through a single level of
multiplexers, and interconnect cost is the number of **equivalent 2-to-1
multiplexers** — a sink (module input) driven by *k* distinct sources costs
``k - 1`` (Sec. 1, 4).  Because the iterative allocator re-evaluates cost
after every move, the ledger maintains the mux total incrementally: adding
or removing one connection use is O(1).

Sources and sinks are plain tuples:

===================  =============================================
``("fu_out", f)``    output of functional unit *f*
``("reg_out", r)``   output of register *r*
``("in_port", v)``   primary input port carrying value *v*
``("fu_in", f, p)``  input port *p* (0/1) of functional unit *f*
``("reg_in", r)``    data input of register *r*
``("out_port", v)``  primary output port sampling value *v*
===================  =============================================

A connection may be *used* by many events (the same register feeding the
same FU port in several control steps); the ledger reference-counts uses so
that removing one use does not delete a connection that another control
step still needs.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Tuple

from repro.errors import DatapathError

Endpoint = Tuple  # ("fu_out", name) etc.
Connection = Tuple[Endpoint, Endpoint]


def fu_out(fu: str) -> Endpoint:
    return ("fu_out", fu)


def reg_out(reg: str) -> Endpoint:
    return ("reg_out", reg)


def in_port(value: str) -> Endpoint:
    return ("in_port", value)


def fu_in(fu: str, port: int) -> Endpoint:
    return ("fu_in", fu, port)


def reg_in(reg: str) -> Endpoint:
    return ("reg_in", reg)


def out_port(value: str) -> Endpoint:
    return ("out_port", value)


class ConnectionLedger:
    """Reference-counted (source, sink) connection set with O(1) mux total."""

    def __init__(self) -> None:
        # plain dicts, not Counters: the hot loop hits add/remove tens of
        # thousands of times per second and Counter.__delitem__ alone is
        # measurable there
        #: (src, sink) -> number of events using this connection
        self._uses: Dict[Connection, int] = {}
        #: sink -> number of *distinct* sources driving it
        self._fanin: Dict[Endpoint, int] = {}
        self._mux_total = 0

    # -- mutation -------------------------------------------------------------

    def add_pair(self, pair: Connection) -> None:
        """Record one more use of the ``(src, sink)`` connection *pair*.

        The pair tuple itself is the refcount key, so hot callers that
        already hold one (the site-event lists are lists of pairs) pay no
        re-packing.
        """
        uses = self._uses
        count = uses.get(pair)
        if count is None:
            uses[pair] = 1
            sink = pair[1]
            fanin = self._fanin
            sink_fanin = fanin.get(sink, 0) + 1
            fanin[sink] = sink_fanin
            if sink_fanin > 1:
                self._mux_total += 1
        else:
            uses[pair] = count + 1

    def remove_pair(self, pair: Connection) -> None:
        """Drop one use; deletes the connection when uses reach zero."""
        uses = self._uses
        count = uses.get(pair, 0)
        if count <= 0:
            raise DatapathError(f"removing non-existent connection {pair}")
        if count == 1:
            del uses[pair]
            sink = pair[1]
            fanin = self._fanin
            sink_fanin = fanin[sink] - 1
            if sink_fanin > 0:
                fanin[sink] = sink_fanin
                self._mux_total -= 1
            else:
                del fanin[sink]
        else:
            uses[pair] = count - 1

    def add(self, src: Endpoint, sink: Endpoint) -> None:
        """Record one more use of the connection *src* -> *sink*."""
        self.add_pair((src, sink))

    def remove(self, src: Endpoint, sink: Endpoint) -> None:
        """Drop one use; deletes the connection when uses reach zero."""
        self.remove_pair((src, sink))

    def add_events(self, events: Iterable[Connection]) -> None:
        add_pair = self.add_pair
        for pair in events:
            add_pair(pair)

    def remove_events(self, events: Iterable[Connection]) -> None:
        remove_pair = self.remove_pair
        for pair in events:
            remove_pair(pair)

    # -- queries --------------------------------------------------------------

    @property
    def mux_count(self) -> int:
        """Total equivalent 2-1 multiplexers: Σ_sink max(0, fanin-1)."""
        return self._mux_total

    @property
    def wire_count(self) -> int:
        """Number of distinct point-to-point connections."""
        return len(self._uses)

    def fanin(self, sink: Endpoint) -> int:
        return self._fanin.get(sink, 0)

    def sources_of(self, sink: Endpoint) -> List[Endpoint]:
        """Distinct sources driving *sink*, sorted for determinism."""
        return sorted({src for (src, snk) in self._uses if snk == sink})

    def sinks(self) -> List[Endpoint]:
        return sorted(self._fanin)

    def connections(self) -> List[Connection]:
        """All distinct connections, sorted."""
        return sorted(self._uses)

    def uses(self, src: Endpoint, sink: Endpoint) -> int:
        return self._uses.get((src, sink), 0)

    def use_counts(self) -> Dict[Connection, int]:
        """Snapshot of every connection's reference count.

        The sanitizer and the legality checker compare this against a
        from-scratch re-derivation: totals (``mux_count``/``wire_count``)
        can agree while an individual connection's count is off, so the
        per-connection map is the stronger oracle.
        """
        return dict(self._uses)

    def verify(self) -> None:
        """Cross-check the incremental counters (used by tests)."""
        fanin = Counter(sink for (_src, sink) in self._uses)
        if fanin != self._fanin:
            raise DatapathError("ledger fanin counters out of sync")
        mux = sum(max(0, n - 1) for n in fanin.values())
        if mux != self._mux_total:
            raise DatapathError(
                f"ledger mux total out of sync: {self._mux_total} != {mux}")

    def __repr__(self) -> str:
        return (f"ConnectionLedger(wires={self.wire_count}, "
                f"mux={self.mux_count})")
