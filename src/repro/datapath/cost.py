"""Allocation cost model: weighted sum of FU, register and interconnect cost.

"The cost of a data path allocation is usually taken to be a weighted sum
of the number of functional units, registers, and interconnection elements"
(paper Sec. 1).  Since scheduling fixes the FU and register minima, "much
of the effort in allocation involves minimizing interconnection cost" —
the default weights therefore make one equivalent 2-1 multiplexer the unit
and price FUs/registers high enough that the search never trades several
muxes for an extra unit, plus a small wire term to break mux ties toward
fewer physical connections.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostWeights:
    """Weights of the allocation cost function (paper Sec. 4)."""

    fu: float = 16.0        # per unit of FU area
    register: float = 8.0   # per register used
    mux: float = 1.0        # per equivalent 2-1 multiplexer
    wire: float = 0.05      # per distinct point-to-point connection
    latency: float = 0.0    # per mux-tree level summed over sinks


def weighted_total(weights: CostWeights, fu_area: float,
                   register_count: int, mux_count: int,
                   wire_count: int, mux_depth: int = 0) -> float:
    """The weighted sum of the cost components.

    Both :attr:`CostBreakdown.total` and the allocator's O(1) fast path
    (``Binding.total_cost``) evaluate this one expression, so the two are
    bit-identical by construction — same inputs, same float operations in
    the same order.

    ``mux_depth`` is the delay proxy: Σ over sinks of ceil(log2(fanin)),
    the number of 2-1 mux levels a signal traverses, summed over the
    whole interconnect.  At the default ``latency`` weight of 0.0 the
    term contributes an exact ``+ 0.0``, so every pre-timing cost value
    (goldens, paper tables, cache keys) is preserved bit-for-bit.
    """
    return (weights.fu * fu_area + weights.register * register_count +
            weights.mux * mux_count + weights.wire * wire_count +
            weights.latency * mux_depth)


@dataclass(frozen=True)
class CostBreakdown:
    """A fully-evaluated allocation cost."""

    fu_count: int
    fu_area: float
    register_count: int
    mux_count: int
    wire_count: int
    weights: CostWeights = CostWeights()
    mux_depth: int = 0

    @property
    def total(self) -> float:
        return weighted_total(self.weights, self.fu_area,
                              self.register_count, self.mux_count,
                              self.wire_count, self.mux_depth)

    def __str__(self) -> str:
        return (f"cost(total={self.total:.2f}: fu={self.fu_count} "
                f"(area {self.fu_area:g}), regs={self.register_count}, "
                f"mux={self.mux_count}, wires={self.wire_count}, "
                f"depth={self.mux_depth})")
