"""Multiplexer merging post-pass (paper Sec. 4).

"After allocation improvement, the number of multiplexers can be reduced
by merging together compatible multiplexers.  This is done using a simple
heuristic in which an arbitrary multiplexer is selected and combined with
as many other compatible multiplexers as possible" — repeated until every
multiplexer has been considered.

Two multiplexers are *compatible* when, at every control step where both
are active, they select the same source — then one physical multiplexer
can produce the shared signal and fan out to both sinks.  The merged mux's
source set is the union of the two; the saving is in physical multiplexer
instances and in equivalent 2-1 elements:
``(|A|-1) + (|B|-1)  ->  (|A ∪ B| - 1)``.

Note the paper's headline metric (equivalent 2-1 muxes in Tables 2/3) is
measured *before* merging; merging is reported separately (our ablation C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datapath.interconnect import Endpoint
from repro.datapath.netlist import Mux, Netlist


@dataclass
class MergedMux:
    """A physical multiplexer shared by one or more sinks."""

    sinks: Tuple[Endpoint, ...]
    sources: Tuple[Endpoint, ...]
    #: per-step selection (union of the members' schedules)
    schedule: Dict[int, Endpoint] = field(default_factory=dict)

    @property
    def eq21(self) -> int:
        return max(0, len(self.sources) - 1)


@dataclass
class MergeReport:
    """Before/after statistics of the merging pass."""

    before_instances: int
    after_instances: int
    before_eq21: int
    after_eq21: int
    merged: List[MergedMux] = field(default_factory=list)

    def __str__(self) -> str:
        return (f"mux merge: {self.before_instances} -> "
                f"{self.after_instances} instances, eq-2:1 "
                f"{self.before_eq21} -> {self.after_eq21}")


def _compatible(a: Dict[int, Endpoint], b: Dict[int, Endpoint]) -> bool:
    """True when the two selection schedules never disagree."""
    if len(b) < len(a):
        a, b = b, a
    return all(b.get(step, src) == src for step, src in a.items())


def merge_muxes(netlist: Netlist) -> MergeReport:
    """Greedily merge compatible multiplexers of *netlist*."""
    selection = netlist.selection_schedule()
    pending: List[MergedMux] = []
    for mux in netlist.muxes:
        pending.append(MergedMux(
            sinks=(mux.sink,),
            sources=tuple(mux.sources),
            schedule=dict(selection.get(mux.sink, {}))))

    before_instances = len(pending)
    before_eq21 = sum(m.eq21 for m in pending)

    merged: List[MergedMux] = []
    while pending:
        seed = pending.pop(0)
        changed = True
        while changed:
            changed = False
            for index, other in enumerate(pending):
                if not _compatible(seed.schedule, other.schedule):
                    continue
                combined_sources = tuple(sorted(
                    set(seed.sources) | set(other.sources)))
                # merge only when it actually saves hardware
                if len(combined_sources) - 1 >= seed.eq21 + other.eq21 + 1:
                    continue
                schedule = dict(seed.schedule)
                schedule.update(other.schedule)
                seed = MergedMux(
                    sinks=tuple(sorted(set(seed.sinks) | set(other.sinks))),
                    sources=combined_sources,
                    schedule=schedule)
                pending.pop(index)
                changed = True
                break
        merged.append(seed)

    return MergeReport(
        before_instances=before_instances,
        after_instances=len(merged),
        before_eq21=before_eq21,
        after_eq21=sum(m.eq21 for m in merged),
        merged=merged)
