"""Run-to-run statistics of the randomized allocator.

The paper notes that "due to the random nature of the iterative
improvement scheme, multiple trials are sometimes necessary to find the
best result, increasing the actual CPU time required" (Sec. 5).  This
module quantifies that: it runs the allocator across many seeds and
reports the distribution of final mux counts, the expected best-of-k, and
how many restarts are needed to be within one multiplexer of the observed
optimum with given confidence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.cdfg.graph import CDFG
from repro.sched.schedule import Schedule
from repro.core import (ImproveConfig, ImproveStats, MoveCounters,
                        SalsaAllocator, TraditionalAllocator, run_restarts)


@dataclass
class SeedStudy:
    """Mux-count distribution of an allocator across seeds."""

    label: str
    mux_counts: List[int] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def best(self) -> int:
        return min(self.mux_counts)

    @property
    def worst(self) -> int:
        return max(self.mux_counts)

    @property
    def mean(self) -> float:
        return sum(self.mux_counts) / len(self.mux_counts)

    @property
    def spread(self) -> int:
        return self.worst - self.best

    def expected_best_of(self, k: int) -> float:
        """Expected best mux count when keeping the best of *k* runs.

        Computed exactly from the empirical distribution: for a sample of
        size n, E[min of k draws] = sum over sorted values of the
        probability that the minimum equals that value.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        values = sorted(self.mux_counts)
        n = len(values)
        expectation = 0.0
        for index, value in enumerate(values):
            # P(min >= values[index]) = ((n - index) / n)^k
            p_ge = ((n - index) / n) ** k
            p_ge_next = ((n - index - 1) / n) ** k if index + 1 < n else 0.0
            expectation += value * (p_ge - p_ge_next)
        return expectation

    def restarts_for_near_best(self, tolerance: int = 1,
                               confidence: float = 0.9) -> int:
        """Smallest k with P(best-of-k <= best + tolerance) >= confidence."""
        good = sum(1 for m in self.mux_counts
                   if m <= self.best + tolerance)
        p = good / len(self.mux_counts)
        if p >= 1.0:
            return 1
        k = 1
        while 1.0 - (1.0 - p) ** k < confidence:
            k += 1
            if k > 1000:
                break
        return k

    def summary(self) -> str:
        return (f"{self.label}: best {self.best}, mean {self.mean:.1f}, "
                f"worst {self.worst} over {len(self.mux_counts)} seeds; "
                f"E[best-of-3] = {self.expected_best_of(3):.1f}; "
                f"{self.restarts_for_near_best()} restart(s) for 90% "
                f"chance of best+1 ({self.seconds:.1f}s)")


def seed_study(graph: CDFG, schedule: Schedule,
               registers: Optional[int] = None,
               seeds: Sequence[int] = tuple(range(10)),
               traditional: bool = False,
               config: Optional[ImproveConfig] = None,
               workers: int = 1) -> SeedStudy:
    """Allocate once per seed (single restart each) and collect stats.

    Routes through the parallel restart engine: each seed becomes one
    independent :class:`~repro.core.parallel.RestartJob`, so *workers* > 1
    fans the whole study out over processes with bit-identical results.
    """
    cfg = config if config is not None else \
        ImproveConfig(max_trials=6, moves_per_trial=400)
    cls = TraditionalAllocator if traditional else SalsaAllocator
    label = f"{'trad' if traditional else 'salsa'}:{schedule.label}"
    study = SeedStudy(label=label)
    started = time.monotonic()
    jobs = []
    for index, seed in enumerate(seeds):
        allocator = cls(seed=seed, restarts=1, config=cfg)
        _schedule, seed_jobs = allocator.prepare_jobs(
            graph, schedule=schedule, registers=registers)
        jobs.append(replace(seed_jobs[0], index=index))
    for outcome in run_restarts(jobs, workers=workers):
        study.mux_counts.append(outcome.cost.mux_count)
    study.seconds = time.monotonic() - started
    return study


# ------------------------------------------------------- search telemetry

def merge_move_counters(
        all_stats: Sequence[ImproveStats]) -> Dict[str, MoveCounters]:
    """Sum the per-move-type counters of several improvement runs."""
    merged: Dict[str, MoveCounters] = {}
    for stats in all_stats:
        for name, counters in stats.per_move.items():
            into = merged.setdefault(name, MoveCounters())
            into.attempts += counters.attempts
            into.applies += counters.applies
            into.accepts += counters.accepts
            into.rollbacks += counters.rollbacks
            into.uphill += counters.uphill
    return merged


def telemetry_report(all_stats: Sequence[ImproveStats]) -> Dict[str, Any]:
    """Aggregate search telemetry across improvement runs (JSON-able).

    The per-move accept/rollback split always satisfies
    ``accepts + rollbacks == applies`` — every applied move is either kept
    or reverted — so acceptance rates here are exact, not sampled.
    """
    merged = merge_move_counters(all_stats)
    finals = [s.final_cost.total for s in all_stats
              if s.final_cost is not None]
    phase_ns: Dict[str, int] = {}
    phase_samples: Dict[str, int] = {}
    for stats in all_stats:
        for phase, total in stats.phase_ns.items():
            phase_ns[phase] = phase_ns.get(phase, 0) + total
        for phase, count in stats.phase_samples.items():
            phase_samples[phase] = phase_samples.get(phase, 0) + count
    return {
        "runs": len(all_stats),
        "trials_run": sum(s.trials_run for s in all_stats),
        "moves_attempted": sum(s.moves_attempted for s in all_stats),
        "moves_applied": sum(s.moves_applied for s in all_stats),
        "moves_accepted": sum(s.moves_accepted for s in all_stats),
        "uphill_accepted": sum(s.uphill_accepted for s in all_stats),
        "uphill_budget_used": sum(sum(s.uphill_used) for s in all_stats),
        "seconds": sum(s.seconds for s in all_stats),
        "best_final_cost": min(finals) if finals else None,
        "stopped_early_runs": sum(1 for s in all_stats if s.stopped_early),
        "per_move": {name: counters.to_dict()
                     for name, counters in sorted(merged.items())},
        "phase_ns": dict(sorted(phase_ns.items())),
        "phase_samples": dict(sorted(phase_samples.items())),
    }


def service_report(metrics_snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Operator-facing summary of a ``/metricsz`` registry snapshot.

    Condenses the raw counter/gauge/histogram dump into the handful of
    serving numbers one actually watches: traffic, cache hit-rate, queue
    pressure, failure/degradation/retry counts, and latency percentiles
    (overall job latency plus the sampled per-search-phase µs costs).
    """
    def value(name: str) -> float:
        metric = metrics_snapshot.get(name)
        return float(metric["value"]) if metric else 0.0

    hits, misses = value("cache_hits"), value("cache_misses")
    lookups = hits + misses
    job_seconds = metrics_snapshot.get("job_seconds", {})
    phases = {}
    for name, metric in metrics_snapshot.items():
        if name.startswith("phase_us_") and metric.get("kind") == "histogram":
            phases[name[len("phase_us_"):]] = {
                "mean_us": metric.get("mean"),
                "p50_us": metric.get("p50"),
                "p99_us": metric.get("p99"),
                "samples": metric.get("count", 0),
            }
    return {
        "requests": {name: value(f"requests_{name}")
                     for name in ("allocate", "jobs", "healthz", "metricsz")},
        "jobs": {
            "submitted": value("jobs_submitted"),
            "coalesced": value("jobs_coalesced"),
            "completed": value("jobs_completed"),
            "failed": value("jobs_failed"),
            "cancelled": value("jobs_cancelled"),
            "rejected": value("jobs_rejected"),
            "retried": value("jobs_retried"),
            "degraded": value("jobs_degraded"),
            "warm_started": value("jobs_warm_started"),
            "in_flight": value("jobs_in_flight"),
            "queue_depth": value("queue_depth"),
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else None,
            "memory_bytes": value("cache_memory_bytes"),
        },
        "latency": {
            "jobs_completed": job_seconds.get("count", 0),
            "mean_s": job_seconds.get("mean"),
            "p50_s": job_seconds.get("p50"),
            "p90_s": job_seconds.get("p90"),
            "p99_s": job_seconds.get("p99"),
            "phases": phases,
        },
    }
