"""Experiment drivers and reporting for the paper's tables and figures."""

from repro.analysis.tables import render_table
from repro.analysis.experiments import (ExperimentTable, ablation_anneal,
                                        ablation_features, ablation_muxmerge,
                                        dct_table3, ewf_table2,
                                        figure3_experiment,
                                        figure4_experiment)
from repro.analysis.figures import passthrough_demo, value_split_demo
from repro.analysis.stats import SeedStudy, seed_study

__all__ = [
    "ExperimentTable", "ablation_anneal", "ablation_features",
    "ablation_muxmerge", "dct_table3", "ewf_table2", "figure3_experiment",
    "figure4_experiment", "passthrough_demo", "render_table",
    "SeedStudy", "seed_study", "value_split_demo",
]
