"""Experiment drivers and reporting for the paper's tables and figures."""

from repro.analysis.tables import render_table
from repro.analysis.experiments import (ExperimentTable, ablation_anneal,
                                        ablation_features, ablation_muxmerge,
                                        dct_table3, ewf_table2,
                                        figure3_experiment,
                                        figure4_experiment)
from repro.analysis.figures import (build_passthrough_binding,
                                    passthrough_demo, render_cost_trace,
                                    value_split_demo)
from repro.analysis.stats import (SeedStudy, merge_move_counters,
                                  seed_study, service_report,
                                  telemetry_report)

__all__ = [
    "ExperimentTable", "ablation_anneal", "ablation_features",
    "ablation_muxmerge", "build_passthrough_binding", "dct_table3",
    "ewf_table2", "figure3_experiment", "figure4_experiment",
    "merge_move_counters", "passthrough_demo", "render_cost_trace",
    "render_table", "SeedStudy", "seed_study", "service_report",
    "telemetry_report", "value_split_demo",
]
