"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Fixed-width ASCII table (right-aligned numbers, left-aligned text)."""
    cells = [[str(h) for h in headers]]
    cells += [[("" if c is None else str(c)) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]

    def fmt(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            raw = cells_row_is_numeric(cell)
            parts.append(cell.rjust(widths[i]) if raw else
                         cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    def cells_row_is_numeric(cell: str) -> bool:
        stripped = cell.replace(".", "", 1).replace("-", "", 1)
        return stripped.isdigit()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells[1:])
    return "\n".join(lines)
