"""Experiment drivers regenerating the paper's tables and figures.

Each driver returns an :class:`ExperimentTable` whose rows mirror the
structure of the corresponding table in the paper:

* :func:`ewf_table2` — Table 2: the elliptic wave filter allocated for
  schedules of 17/19/21 control steps with non-pipelined and pipelined
  multipliers, at the schedule's minimum register count and with extra
  registers, reporting equivalent 2-1 multiplexers for the SALSA
  (extended-model) allocator vs. the traditional-model allocator (our
  stand-in for the "best reported by other researchers" column);
* :func:`dct_table3` — Table 3: four schedules of the 48-op DCT;
* :func:`figure3_experiment` / :func:`figure4_experiment` — the
  pass-through and value-split cost mechanics of Figures 3 and 4;
* ablation drivers for annealing vs. iterative improvement, binding-model
  feature gating, and multiplexer merging.

Absolute mux counts depend on our reconstructed netlists and schedules;
the *shape* — SALSA <= traditional everywhere, with strict wins
concentrated where register budgets are tight — is the reproduction
target (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench import discrete_cosine_transform, elliptic_wave_filter
from repro.cdfg.graph import CDFG
from repro.datapath.muxmerge import merge_muxes
from repro.datapath.netlist import build_netlist
from repro.datapath.simulate import verify_binding
from repro.datapath.units import HardwareSpec
from repro.sched.explore import minimal_fu_counts, schedule_graph
from repro.sched.schedule import Schedule
from repro.core import (AnnealConfig, ImproveConfig, MoveSet,
                        SalsaAllocator, TraditionalAllocator, anneal,
                        initial_allocation, salsa_from_traditional)
from repro.core.improve import improve
from repro.datapath.units import make_registers
from repro.analysis.tables import render_table


@dataclass
class ExperimentTable:
    """A reproduced table: headers, rows and provenance."""

    name: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    seconds: float = 0.0

    def render(self) -> str:
        text = render_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        text += f"\n  ({self.seconds:.1f}s)"
        return text


def _configs_ewf() -> List[Tuple[int, bool]]:
    """The schedule points of Table 2: (control steps, pipelined)."""
    return [(17, False), (17, True), (19, False), (19, True), (21, False)]


def _improve_config(fast: bool) -> ImproveConfig:
    if fast:
        return ImproveConfig(max_trials=6, moves_per_trial=300,
                             uphill_per_trial=8)
    return ImproveConfig(max_trials=12, moves_per_trial=800,
                         uphill_per_trial=14)


def _allocate_pair(graph: CDFG, schedule: Schedule, registers: int,
                   seed: int, fast: bool, verify: bool = True):
    cfg = _improve_config(fast)
    restarts = 2 if fast else 3
    trad = TraditionalAllocator(seed=seed, restarts=restarts,
                                config=cfg).allocate(graph,
                                                     schedule=schedule,
                                                     registers=registers)
    # the extended search continues from the traditional optimum (so it can
    # only match or beat it), plus independent restarts of its own
    salsa = salsa_from_traditional(trad, config=cfg, seed=seed + 101)
    fresh = SalsaAllocator(seed=seed, restarts=restarts,
                           config=cfg).allocate(graph, schedule=schedule,
                                                registers=registers)
    if fresh.cost.total < salsa.cost.total:
        salsa = fresh
    if verify:
        verify_binding(salsa.binding, iterations=3, seed=seed)
        verify_binding(trad.binding, iterations=3, seed=seed)
    return salsa, trad


def ewf_table2(fast: bool = False, seed: int = 7,
               extra_registers: Sequence[int] = (0, 1),
               verify: bool = True) -> ExperimentTable:
    """Reproduce Table 2 (EWF allocations)."""
    started = time.monotonic()
    graph = elliptic_wave_filter()
    table = ExperimentTable(
        name="Table 2 — EWF: equivalent 2-1 multiplexers",
        headers=["csteps", "mult", "adders", "mults", "regs",
                 "SALSA mux", "trad mux", "SALSA pts", "winner"])
    for length, pipelined in _configs_ewf():
        spec = HardwareSpec.pipelined() if pipelined else \
            HardwareSpec.non_pipelined()
        fus = minimal_fu_counts(graph, spec, length)
        schedule = schedule_graph(graph, spec, length, fu_counts=fus,
                                  label=f"ewf@{length}{'P' if pipelined else ''}")
        min_regs = schedule.min_registers()
        mult_key = "pmult" if pipelined else "mult"
        for extra in extra_registers:
            registers = min_regs + extra
            salsa, trad = _allocate_pair(graph, schedule, registers, seed,
                                         fast, verify=verify)
            winner = ("SALSA" if salsa.mux_count < trad.mux_count else
                      "tie" if salsa.mux_count == trad.mux_count else
                      "trad")
            table.rows.append([
                f"{length}{'P' if pipelined else ''}", mult_key,
                fus.get("adder", 0), fus.get(mult_key, 0), registers,
                salsa.mux_count, trad.mux_count,
                len(salsa.binding.pt_impl), winner])
    table.notes.append(
        "trad = same engine restricted to the traditional binding model "
        "(monolithic values, no copies, no pass-throughs)")
    table.notes.append(
        "every reported allocation is verified cycle-accurately against "
        "the CDFG interpreter" if verify else "verification skipped")
    table.seconds = time.monotonic() - started
    return table


def dct_table3(fast: bool = False, seed: int = 11,
               verify: bool = True) -> ExperimentTable:
    """Reproduce Table 3 (DCT allocations, four schedules)."""
    started = time.monotonic()
    graph = discrete_cosine_transform()
    configs = [(8, False), (10, False), (12, False), (9, True)]
    table = ExperimentTable(
        name="Table 3 — DCT: equivalent 2-1 multiplexers",
        headers=["csteps", "mult", "adders", "mults", "regs",
                 "SALSA mux", "trad mux", "SALSA pts", "winner"])
    for length, pipelined in configs:
        spec = HardwareSpec.pipelined() if pipelined else \
            HardwareSpec.non_pipelined()
        fus = minimal_fu_counts(graph, spec, length)
        schedule = schedule_graph(graph, spec, length, fu_counts=fus,
                                  label=f"dct@{length}{'P' if pipelined else ''}")
        registers = schedule.min_registers()
        mult_key = "pmult" if pipelined else "mult"
        salsa, trad = _allocate_pair(graph, schedule, registers, seed,
                                     fast, verify=verify)
        winner = ("SALSA" if salsa.mux_count < trad.mux_count else
                  "tie" if salsa.mux_count == trad.mux_count else "trad")
        table.rows.append([
            f"{length}{'P' if pipelined else ''}", mult_key,
            fus.get("adder", 0), fus.get(mult_key, 0), registers,
            salsa.mux_count, trad.mux_count,
            len(salsa.binding.pt_impl), winner])
    table.seconds = time.monotonic() - started
    return table


# ---------------------------------------------------------------- figures

def figure3_experiment() -> ExperimentTable:
    """Figure 3 mechanics: a pass-through re-uses existing connections.

    Constructs the exact situation of the figure on a binding: a transfer
    whose direct implementation needs a new mux input at the destination
    register, while an idle adder already has both connections — binding
    the slack node to the adder must lower the interconnect cost.
    """
    from repro.analysis.figures import passthrough_demo

    started = time.monotonic()
    demo = passthrough_demo()
    table = ExperimentTable(
        name="Figure 3 — pass-through vs direct transfer",
        headers=["implementation", "equiv 2-1 mux", "wires"])
    table.rows.append(["direct register-to-register",
                       demo["direct_mux"], demo["direct_wires"]])
    table.rows.append(["pass-through via idle adder",
                       demo["pt_mux"], demo["pt_wires"]])
    table.notes.append("pass-through saves "
                       f"{demo['direct_mux'] - demo['pt_mux']} equivalent "
                       f"2-1 mux(es), as in the paper's Figure 3")
    table.seconds = time.monotonic() - started
    return table


def figure4_experiment() -> ExperimentTable:
    """Figure 4 mechanics: a value split removes a multiplexer."""
    from repro.analysis.figures import value_split_demo

    started = time.monotonic()
    demo = value_split_demo()
    table = ExperimentTable(
        name="Figure 4 — value split",
        headers=["binding", "equiv 2-1 mux", "wires"])
    table.rows.append(["single copy (traditional)",
                       demo["single_mux"], demo["single_wires"]])
    table.rows.append(["split: copy in second register",
                       demo["split_mux"], demo["split_wires"]])
    table.seconds = time.monotonic() - started
    return table


# --------------------------------------------------------------- ablations

def ablation_anneal(fast: bool = False, seed: int = 3) -> ExperimentTable:
    """Sec. 4 claim: annealing under-performs bounded-uphill improvement."""
    started = time.monotonic()
    graph = elliptic_wave_filter()
    spec = HardwareSpec.non_pipelined()
    schedule = schedule_graph(graph, spec, 19)
    registers = schedule.min_registers()
    fus = spec.make_fus(schedule.min_fus())
    regs = make_registers(registers)

    table = ExperimentTable(
        name="Ablation A — iterative improvement vs simulated annealing "
             "(EWF, 19 csteps, equal move budgets)",
        headers=["optimizer", "final mux", "total cost", "moves"])

    cfg = _improve_config(fast)
    budget = cfg.max_trials * cfg.moves_per_trial

    binding = initial_allocation(schedule, fus, regs)
    stats = improve(binding, ImproveConfig(
        max_trials=cfg.max_trials, moves_per_trial=cfg.moves_per_trial,
        uphill_per_trial=cfg.uphill_per_trial, seed=seed))
    cost = binding.cost()
    table.rows.append(["iterative improvement", cost.mux_count,
                       f"{cost.total:.1f}", stats.moves_attempted])

    binding = initial_allocation(schedule, fus, regs)
    levels = max(4, budget // (300 if fast else 900))
    astats = anneal(binding, AnnealConfig(
        temperature_levels=levels,
        moves_per_level=300 if fast else 900, seed=seed))
    cost = binding.cost()
    table.rows.append(["simulated annealing", cost.mux_count,
                       f"{cost.total:.1f}", astats.moves_attempted])
    table.seconds = time.monotonic() - started
    return table


def ablation_features(fast: bool = False, seed: int = 5) -> ExperimentTable:
    """Contribution of each extended-model feature (EWF, 17 csteps)."""
    started = time.monotonic()
    graph = elliptic_wave_filter()
    spec = HardwareSpec.non_pipelined()
    schedule = schedule_graph(graph, spec, 17)
    registers = schedule.min_registers()
    variants = [
        ("traditional (monolithic)", MoveSet.traditional()),
        ("+ segments", MoveSet(segments=True, splits=False,
                               passthroughs=False)),
        ("+ segments + pass-throughs", MoveSet(segments=True, splits=False,
                                               passthroughs=True)),
        ("full SALSA (+ splits)", MoveSet()),
    ]
    table = ExperimentTable(
        name="Ablation B — binding-model features (EWF, 17 csteps, "
             f"{registers} registers)",
        headers=["model", "mux", "pass-throughs", "copies"])
    cfg = _improve_config(fast)
    # one shared traditional base, then each feature set extends it — the
    # mux column is therefore non-increasing by construction
    base = TraditionalAllocator(seed=seed, restarts=2 if fast else 3,
                                config=cfg).allocate(
        graph, schedule=schedule, registers=registers)
    for index, (label, move_set) in enumerate(variants):
        if index == 0:
            alloc = base
        else:
            from dataclasses import replace as _replace
            alloc = salsa_from_traditional(
                base, config=_replace(cfg, move_set=move_set),
                seed=seed + index)
        copies = sum(1 for regs_ in alloc.binding.placements.values()
                     if len(regs_) > 1)
        table.rows.append([label, alloc.mux_count,
                           len(alloc.binding.pt_impl), copies])
    table.seconds = time.monotonic() - started
    return table


def ablation_muxmerge(fast: bool = False, seed: int = 9) -> ExperimentTable:
    """Sec. 4 post-pass: physical multiplexer merging."""
    started = time.monotonic()
    graph = elliptic_wave_filter()
    spec = HardwareSpec.non_pipelined()
    table = ExperimentTable(
        name="Ablation C — multiplexer merging post-pass (EWF)",
        headers=["csteps", "mux instances", "after merge", "eq 2-1",
                 "after merge eq 2-1"])
    for length in (17, 19, 21):
        schedule = schedule_graph(graph, spec, length)
        alloc = SalsaAllocator(seed=seed, restarts=2,
                               config=_improve_config(fast)).allocate(
            graph, schedule=schedule)
        report = merge_muxes(build_netlist(alloc.binding))
        table.rows.append([length, report.before_instances,
                           report.after_instances, report.before_eq21,
                           report.after_eq21])
    table.seconds = time.monotonic() - started
    return table
