"""Hand-constructed bindings reproducing Figures 3 and 4 of the paper.

These build the *exact* situations the figures draw, using the real
binding machinery, and measure the interconnect cost of both alternatives
(each variant is also verified cycle-accurately against the interpreter):

* Figure 3 — a value whose segments sit in two registers needs a
  transfer; implementing it through an idle adder that already has the
  register-to-FU and FU-to-register connections saves one equivalent 2-1
  multiplexer over the direct register-to-register connection.
* Figure 4 — a value feeding operators on two functional units; storing a
  copy in a second register (written by the same producer FU, and already
  connected to the second consumer's input port) removes one multiplexer.
"""

from __future__ import annotations

from typing import Dict

from repro.cdfg.builder import CDFGBuilder
from repro.datapath.simulate import verify_binding
from repro.datapath.units import ADDER, HardwareSpec, make_registers
from repro.sched.schedule import Schedule
from repro.core.binding import Binding
from repro.core.initial import wire_reads


def build_passthrough_binding(bind_pt: bool = True) -> Binding:
    """The Figure 3 binding, optionally with its pass-through bound.

    With ``bind_pt=True`` the V1 transfer into R1 is implemented through
    the idle ``adder0`` — a *guaranteed* pass-through, handy for tests that
    must exercise pass-through machinery regardless of search randomness.
    """
    b = CDFGBuilder("fig3demo")
    b.input("a").input("b").input("c")
    b.add("op1", "a", "b", "V1")       # @0 on adder0 -> V1 in R2
    b.add("op2", "c", "V1", "W")       # @1 on adder0 -> W in R1
    b.add("op3", "c", "c", "X")        # @1 on adder1
    b.add("op4", "V1", "X", "Y")       # @3 on adder1 reads V1 from R1
    b.output("W").output("Y")
    graph = b.build()

    spec = HardwareSpec([ADDER])
    schedule = Schedule(graph, spec, 4,
                        {"op1": 0, "op2": 1, "op3": 1, "op4": 3},
                        label="fig3demo")
    fus = spec.make_fus({"adder": 2})
    regs = make_registers(5)
    binding = Binding(schedule, fus, regs)

    binding.set_op_fu("op1", "adder0")
    binding.set_op_fu("op2", "adder0")
    binding.set_op_fu("op3", "adder1")
    binding.set_op_fu("op4", "adder1")

    place = binding.set_placements
    place("a", 0, ("R0",))
    place("b", 0, ("R2",))
    place("c", 0, ("R3",))
    place("c", 1, ("R3",))
    # V1 lives at steps 1..3: starts in R2, must end in R1 for op4
    place("V1", 1, ("R2",))
    place("V1", 2, ("R2",))
    place("V1", 3, ("R1",))
    place("W", 2, ("R1",))             # adder0 -> R1 connection exists
    place("X", 2, ("R4",))
    place("X", 3, ("R4",))
    wire_reads(binding)
    # match the figure's port orientation: op2 reads V1 on adder0 input 1,
    # the same port op1 used for b in R2 (R2 -> adder0.1 already exists)
    binding.set_read_src("op2", 1, "R2")
    binding.flush()
    if bind_pt:
        # bind the slack node (transfer during step 2) to the idle adder0,
        # entering through input port 1 (R2 -> adder0.1 exists) and leaving
        # on the existing adder0 -> R1 connection
        binding.set_pt("V1", 3, "R1", ("R2", "adder0", 1))
        binding.flush()
    return binding


def passthrough_demo() -> Dict[str, int]:
    """Build Figure 3 and return mux/wire counts for both implementations."""
    binding = build_passthrough_binding(bind_pt=False)

    direct = binding.cost()
    verify_binding(binding, seed=1)
    result = {"direct_mux": direct.mux_count,
              "direct_wires": direct.wire_count}

    binding.set_pt("V1", 3, "R1", ("R2", "adder0", 1))
    pt = binding.cost()
    verify_binding(binding, seed=1)
    result.update({"pt_mux": pt.mux_count, "pt_wires": pt.wire_count})
    return result


def value_split_demo() -> Dict[str, int]:
    """Build Figure 4 and return mux/wire counts for both bindings."""
    b = CDFGBuilder("fig4demo")
    for name in ("a", "b", "u", "x", "y"):
        b.input(name)
    b.add("op0", "a", "b", "V1")       # @0 adder0: the shared value
    b.add("opT", "u", "u", "T")        # @1 adder1
    b.add("opB", "T", "T", "P")        # @2 adder1 (reads T from R3)
    b.add("opV", "V1", "P", "Q")       # @3 adder1 reads V1 on input 0
    b.add("opW", "x", "y", "W")        # @4 adder0 -> R2
    b.add("opZ", "W", "Q", "Z")        # @5 adder1 reads W from R2
    b.output("Z")
    graph = b.build()

    spec = HardwareSpec([ADDER])
    schedule = Schedule(graph, spec, 6,
                        {"op0": 0, "opT": 1, "opB": 2, "opV": 3,
                         "opW": 4, "opZ": 5}, label="fig4demo")
    fus = spec.make_fus({"adder": 2})
    regs = make_registers(9)
    binding = Binding(schedule, fus, regs)
    for op, fu in (("op0", "adder0"), ("opT", "adder1"), ("opB", "adder1"),
                   ("opV", "adder1"), ("opW", "adder0"), ("opZ", "adder1")):
        binding.set_op_fu(op, fu)

    place = binding.set_placements
    place("a", 0, ("R4",))
    place("b", 0, ("R5",))
    for s in (0, 1):
        place("u", s, ("R6",))
    for s in range(0, 5):
        place("x", s, ("R7",))
        place("y", s, ("R8",))
    for s in (1, 2, 3):
        place("V1", s, ("R1",))
    place("T", 2, ("R3",))
    place("P", 3, ("R3",))
    for s in (4, 5):
        place("Q", s, ("R5",))
    place("W", 5, ("R2",))
    wire_reads(binding)
    binding.flush()

    single = binding.cost()
    verify_binding(binding, seed=2)
    result = {"single_mux": single.mux_count,
              "single_wires": single.wire_count}

    # Figure 4's split: store a copy of V1 in R2 (written by the same
    # adder0 that writes W there) and read it from R2 at opV — the
    # R1 -> adder1.0 connection disappears
    for s in (1, 2, 3):
        binding.set_placements("V1", s, ("R1", "R2"))
    binding.set_read_src("opV", 0, "R2")
    binding.flush()
    split = binding.cost()
    verify_binding(binding, seed=2)
    result.update({"split_mux": split.mux_count,
                   "split_wires": split.wire_count})
    return result


# ------------------------------------------------------------ cost traces

def render_cost_trace(stats: "ImproveStats", width: int = 64,
                      height: int = 12) -> str:
    """ASCII plot of an improvement run's best-cost trace.

    Works anywhere (no plotting dependency): the x-axis is the move-attempt
    index, the y-axis the best total cost seen so far, taken from
    ``stats.best_trace``.  Feed it any :class:`~repro.core.ImproveStats`,
    e.g. one reloaded through ``repro.io.json_io.stats_from_json``.
    """
    trace = list(stats.best_trace)
    if not trace:
        return "(empty cost trace)"
    last_move = max(stats.moves_attempted, trace[-1][0], 1)
    if trace[-1][0] < last_move:
        trace.append((last_move, trace[-1][1]))
    costs = [cost for _move, cost in trace]
    lo, hi = min(costs), max(costs)
    span = (hi - lo) or 1.0

    # best cost at each of `width` sample points (step function)
    samples = []
    position = 0
    for column in range(width):
        move = column * last_move / max(width - 1, 1)
        while position + 1 < len(trace) and trace[position + 1][0] <= move:
            position += 1
        samples.append(trace[position][1])

    rows = []
    for level in range(height - 1, -1, -1):
        cells = []
        for value in samples:
            filled = (value - lo) / span * (height - 1)
            cells.append("#" if filled >= level - 0.5 else " ")
        label = lo + span * level / (height - 1)
        rows.append(f"{label:8.1f} |{''.join(cells)}")
    rows.append(" " * 9 + "+" + "-" * width)
    rows.append(" " * 9 + f" 0 moves{'':>{max(width - 16, 1)}}{last_move}")
    return "\n".join(rows)
