"""Seeded random-number helpers.

The iterative-improvement allocator in the paper is randomized ("moves are
selected by randomly picking a move type and then randomly picking the CDFG
and datapath elements").  To keep every experiment reproducible the library
never touches the global :mod:`random` state; every randomized component
takes a :class:`random.Random` instance (or a seed) explicitly, created
through :func:`make_rng`.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, TypeVar, Union

T = TypeVar("T")

RngLike = Union[int, random.Random, None]


def make_rng(seed: RngLike = None) -> random.Random:
    """Return a :class:`random.Random` for *seed*.

    Accepts an existing ``Random`` (returned unchanged), an integer seed, or
    ``None`` (seeds from entropy; only sensible for interactive use).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def weighted_choice(rng: random.Random, items: Sequence[T],
                    weights: Sequence[float]) -> T:
    """Pick one of *items* with the given non-negative *weights*.

    Raises ``ValueError`` when the sequences are empty, differ in length, or
    all weights are zero.
    """
    if not items:
        raise ValueError("weighted_choice: empty item sequence")
    if len(items) != len(weights):
        raise ValueError("weighted_choice: items and weights differ in length")
    if any(weight < 0 for weight in weights):
        raise ValueError("weighted_choice: negative weight")
    total = float(sum(weights))
    if total <= 0.0:
        raise ValueError("weighted_choice: weights sum to zero")
    pick = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if pick < acc:
            return item
    return items[-1]
