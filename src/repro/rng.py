"""Seeded random-number helpers.

The iterative-improvement allocator in the paper is randomized ("moves are
selected by randomly picking a move type and then randomly picking the CDFG
and datapath elements").  To keep every experiment reproducible the library
never touches the global :mod:`random` state; every randomized component
takes a :class:`random.Random` instance (or a seed) explicitly, created
through :func:`make_rng`.
"""

from __future__ import annotations

import hashlib
import random
from bisect import bisect_right
from typing import List, Optional, Sequence, TypeVar, Union

T = TypeVar("T")

RngLike = Union[int, random.Random, None]


def make_rng(seed: RngLike = None) -> random.Random:
    """Return a :class:`random.Random` for *seed*.

    Accepts an existing ``Random`` (returned unchanged), an integer seed, or
    ``None`` (seeds from entropy; only sensible for interactive use).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


class SeedStream:
    """Deterministic stream of independent child seeds.

    Serves the role of :class:`numpy.random.SeedSequence` without the
    dependency: a child seed is a keyed hash of ``(root, path)``, so

    * any child is bit-identical for a given root no matter how many
      siblings are drawn, in what order, or on which worker process;
    * distinct paths yield distinct seeds (collision-resistant hash), unlike
      ``seed``/``seed + 1`` arithmetic where adjacent streams collide.

    Multi-index paths address nested derivation without coordination:
    ``stream.child(k, 0)`` and ``stream.child(k, 1)`` are the two phases of
    restart *k*, independent of every other restart's seeds.
    """

    def __init__(self, root: RngLike = 0) -> None:
        if isinstance(root, int):
            self.root = root
        else:
            # a Random instance (or None) contributes entropy but keeps the
            # stream property: one draw fixes every child deterministically
            self.root = make_rng(root).getrandbits(64)

    def child(self, *path: int) -> int:
        """The 64-bit seed at *path* (one or more non-negative indices)."""
        if not path:
            raise ValueError("SeedStream.child needs at least one index")
        digest = hashlib.sha256()
        digest.update(b"repro.rng.SeedStream:")
        digest.update(str(self.root).encode())
        for index in path:
            digest.update(b"/")
            digest.update(str(index).encode())
        return int.from_bytes(digest.digest()[:8], "big")

    def spawn(self, n: int) -> List[int]:
        """The first *n* children, ``[child(0), ..., child(n - 1)]``."""
        return [self.child(i) for i in range(n)]

    def split(self, index: int) -> "SeedStream":
        """An independent sub-stream rooted at ``child(index)``."""
        return SeedStream(self.child(index))


def weighted_choice(rng: random.Random, items: Sequence[T],
                    weights: Sequence[float]) -> T:
    """Pick one of *items* with the given non-negative *weights*.

    Raises ``ValueError`` when the sequences are empty, differ in length, or
    all weights are zero.
    """
    if not items:
        raise ValueError("weighted_choice: empty item sequence")
    if len(items) != len(weights):
        raise ValueError("weighted_choice: items and weights differ in length")
    if any(weight < 0 for weight in weights):
        raise ValueError("weighted_choice: negative weight")
    total = float(sum(weights))
    if total <= 0.0:
        raise ValueError("weighted_choice: weights sum to zero")
    pick = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if pick < acc:
            return item
    return items[-1]


class WeightedChooser(Sequence[T]):
    """Precomputed weighted chooser, draw-identical to :func:`weighted_choice`.

    The allocator draws one move type per attempt from a *fixed* weight
    table; rebuilding the running-sum scan every draw is pure overhead.
    This precomputes the cumulative weights once (with the exact same
    left-to-right float accumulation as :func:`weighted_choice`, so
    ``sum(weights)`` and the running ``acc`` values are bit-identical) and
    answers each draw with one ``rng.random()`` call plus a binary search.
    ``pick < acc`` in the linear scan is exactly ``bisect_right`` on the
    cumulative sums, so the chosen item matches for every possible draw.
    """

    __slots__ = ("_items", "_cumulative", "_total")

    def __init__(self, items: Sequence[T], weights: Sequence[float]) -> None:
        if not items:
            raise ValueError("WeightedChooser: empty item sequence")
        if len(items) != len(weights):
            raise ValueError(
                "WeightedChooser: items and weights differ in length")
        if any(weight < 0 for weight in weights):
            raise ValueError("WeightedChooser: negative weight")
        self._items = list(items)
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight
            self._cumulative.append(acc)
        self._total = float(sum(weights))
        if self._total <= 0.0:
            raise ValueError("WeightedChooser: weights sum to zero")

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index):
        return self._items[index]

    def choose(self, rng: random.Random) -> T:
        pick = rng.random() * self._total
        index = bisect_right(self._cumulative, pick)
        if index == len(self._items):  # pick == total float edge case
            index -= 1
        return self._items[index]
