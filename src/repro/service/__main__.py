"""``python -m repro.service`` — serve, submit, status, bench, smoke.

* ``serve``  — run the HTTP server in the foreground.
* ``submit`` — build a request from flags (or ``--request-file``) and
  POST it; prints the JSON response.
* ``status`` — poll ``GET /jobs/<id>`` (``--wait`` blocks until done).
* ``bench``  — the concurrent throughput benchmark; against ``--url`` or
  an in-process server (``--saturation`` adds the offered-load sweep).
* ``smoke``  — the CI end-to-end check: start a server, submit the same
  EWF request twice, assert the second is a cache hit with a
  byte-identical result payload, scrape ``/metricsz``.
  ``--multiprocess`` hardens the check: two *separate server processes*
  share one on-disk cache tier, and the reply served by the second
  process must be byte-identical to the one computed by the first.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
from typing import Any, Callable, Dict, List, Optional

from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import run_saturation_bench, run_throughput_bench
from repro.service.server import ServerThread, serve_forever


def _build_request(args: argparse.Namespace) -> Dict[str, Any]:
    if args.request_file:
        with open(args.request_file, "r", encoding="utf-8") as handle:
            body = json.load(handle)
    else:
        body = {"cdfg": {"bench": args.bench}}
    if args.length is not None:
        body["length"] = args.length
    if args.seed is not None:
        body["seed"] = args.seed
    if args.restarts is not None:
        body["restarts"] = args.restarts
    if args.engine:
        body["engine"] = args.engine
    if args.model:
        body["model"] = args.model
    if args.deadline_ms is not None:
        body["deadline_ms"] = args.deadline_ms
    if args.warm_start:
        body["warm_start"] = True
    return body


def _cmd_serve(args: argparse.Namespace) -> int:
    serve_forever(host=args.host, port=args.port, workers=args.workers,
                  queue_limit=args.queue_limit,
                  cache_dir=args.cache_dir,
                  persistent_cache=not args.no_disk_cache,
                  max_attempts=args.max_attempts,
                  worker_mode=args.worker_mode,
                  batch_limit=args.batch_limit)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    body = _build_request(args)
    if args.asynchronous:
        payload = client.submit(body)
    else:
        payload = client.allocate(body)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    if args.wait:
        payload = client.wait(args.job_id, timeout=args.timeout)
    else:
        payload = client.job(args.job_id)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if payload.get("status") != "failed" else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    zoo_families = None
    if args.zoo_families:
        zoo_families = [name.strip()
                        for name in args.zoo_families.split(",")
                        if name.strip()]
    report: Dict[str, Any] = run_throughput_bench(
        url=args.url, clients=args.clients,
        requests_per_client=args.requests, fast=not args.full,
        deadline_ms=args.deadline_ms, worker_mode=args.worker_mode,
        server_workers=args.workers,
        zoo=args.zoo or zoo_families is not None,
        zoo_families=zoo_families)
    dropped = report["outcome"]["dropped"]
    errors = report["outcome"]["errors"]
    if args.saturation:
        levels = tuple(int(level) for level in args.saturation.split(","))
        report["saturation"] = run_saturation_bench(
            levels=levels, fast=not args.full,
            server_workers=args.workers, worker_mode=args.worker_mode,
            url=args.url)
        for level in report["saturation"]["levels"]:
            dropped += level["dropped"]
            errors += level["errors"]
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.json}")
    print(text)
    return 0 if dropped == 0 and errors == 0 else 1


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_server(port: int, cache_dir: str, workers: int,
                  worker_mode: str) -> "subprocess.Popen[bytes]":
    """Start a *real* server process sharing ``cache_dir`` as disk tier."""
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing
                                    else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve",
         "--port", str(port), "--workers", str(workers),
         "--worker-mode", worker_mode, "--cache-dir", cache_dir],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _smoke_multiprocess(body: Dict[str, Any],
                        check: Callable[[bool, str], None],
                        workers: int, worker_mode: str) -> None:
    """Two server *processes* share one disk tier; B must replay A's
    answer byte-for-byte without recomputing it."""
    cache_dir = tempfile.mkdtemp(prefix="repro-smoke-cache-")
    procs: List["subprocess.Popen[bytes]"] = []
    try:
        ports = [_free_port(), _free_port()]
        procs = [_spawn_server(port, cache_dir, workers, worker_mode)
                 for port in ports]
        first_client, second_client = (
            ServiceClient(f"http://127.0.0.1:{port}") for port in ports)
        for label, client in (("A", first_client), ("B", second_client)):
            health = client.wait_until_healthy(timeout=90.0)
            check(health.get("status") == "ok",
                  f"server process {label} answers healthz")
            check(health.get("worker_mode") == worker_mode,
                  f"server process {label} runs worker_mode="
                  f"{worker_mode}")

        first = first_client.allocate(body)
        check(first.get("status") == "done",
              "process A computes the allocation")
        check(not first.get("cached"), "process A starts from a cold cache")

        second = second_client.allocate(body)
        check(bool(second.get("cached")),
              "process B serves the request from the shared disk tier")
        check(json.dumps(first.get("result"), sort_keys=True)
              == json.dumps(second.get("result"), sort_keys=True),
              "cross-process cached reply is byte-identical")

        metrics = second_client.metricsz(condensed=True)
        check(metrics["jobs"]["completed"] == 0,
              "process B never ran the search itself")
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=15)
        shutil.rmtree(cache_dir, ignore_errors=True)


def _cmd_smoke(args: argparse.Namespace) -> int:
    """End-to-end smoke: same request twice must hit the cache exactly."""
    body = {"cdfg": {"bench": "ewf"}, "length": 17, "seed": 1,
            "improve": {"max_trials": 2, "moves_per_trial": 150}}
    failures: List[str] = []

    def check(ok: bool, what: str) -> None:
        print(f"  {'ok' if ok else 'FAIL'}: {what}")
        if not ok:
            failures.append(what)

    if args.url:
        urls = [args.url]
        server: Optional[ServerThread] = None
    else:
        server = ServerThread(workers=args.workers,
                              worker_mode=args.worker_mode,
                              persistent_cache=False)
        urls = [server.__enter__()]
    try:
        client = ServiceClient(urls[0])
        health = client.wait_until_healthy()
        check(health.get("status") == "ok", "healthz answers ok")

        first = client.allocate(body)
        check(first.get("status") == "done", "first allocate completes")
        check(not first.get("cached"), "first allocate is a cache miss")
        check(not first.get("degraded"), "first allocate is full-fidelity")

        second = client.allocate(body)
        check(bool(second.get("cached")), "second allocate is a cache hit")
        check(json.dumps(first.get("result"), sort_keys=True)
              == json.dumps(second.get("result"), sort_keys=True),
              "cached result is byte-identical to the first")

        metrics = client.metricsz(condensed=True)
        hit_rate = metrics["cache"]["hit_rate"]
        check(hit_rate is not None and hit_rate > 0,
              f"/metricsz reports a cache hit-rate ({hit_rate})")
        check(metrics["jobs"]["completed"] >= 1,
              "/metricsz counted the completed job")
    finally:
        if server is not None:
            server.__exit__(None, None, None)

    if args.multiprocess and not args.url:
        _smoke_multiprocess(body, check, workers=args.workers,
                            worker_mode=args.worker_mode)

    if failures:
        print(f"smoke FAILED ({len(failures)} checks)")
        return 1
    print("smoke passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Data-path allocation as a service")
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the HTTP server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8977)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--queue-limit", type=int, default=64)
    serve.add_argument("--cache-dir", default=None)
    serve.add_argument("--no-disk-cache", action="store_true")
    serve.add_argument("--max-attempts", type=int, default=3)
    serve.add_argument("--worker-mode", choices=("thread", "process"),
                       default="process",
                       help="run searches in worker processes (default) "
                            "or threads; falls back to threads where "
                            "fork is unavailable")
    serve.add_argument("--batch-limit", type=int, default=None,
                       help="max same-shape queued requests dispatched "
                            "as one batch")
    serve.set_defaults(func=_cmd_serve)

    submit = commands.add_parser("submit", help="POST /allocate")
    submit.add_argument("--url", default="http://127.0.0.1:8977")
    submit.add_argument("--bench", default="ewf",
                        help="named benchmark CDFG (ewf, dct, fir, ...)")
    submit.add_argument("--request-file", default=None,
                        help="JSON file with the full request body")
    submit.add_argument("--length", type=int, default=None)
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--restarts", type=int, default=None)
    submit.add_argument("--engine", choices=("improve", "anneal"),
                        default=None)
    submit.add_argument("--model", choices=("salsa", "traditional"),
                        default=None)
    submit.add_argument("--deadline-ms", type=int, default=None)
    submit.add_argument("--warm-start", action="store_true")
    submit.add_argument("--async", dest="asynchronous",
                        action="store_true",
                        help="return the job ID immediately")
    submit.set_defaults(func=_cmd_submit)

    status = commands.add_parser("status", help="GET /jobs/<id>")
    status.add_argument("job_id")
    status.add_argument("--url", default="http://127.0.0.1:8977")
    status.add_argument("--wait", action="store_true")
    status.add_argument("--timeout", type=float, default=600.0)
    status.set_defaults(func=_cmd_status)

    bench = commands.add_parser(
        "bench", help="concurrent throughput benchmark")
    bench.add_argument("--url", default=None,
                       help="target server (default: in-process)")
    bench.add_argument("--clients", type=int, default=4)
    bench.add_argument("--requests", type=int, default=6,
                       help="requests per client")
    bench.add_argument("--full", action="store_true",
                       help="paper-scale search budgets (slow)")
    bench.add_argument("--deadline-ms", type=int, default=None)
    bench.add_argument("--workers", type=int, default=4,
                       help="in-process server worker count")
    bench.add_argument("--worker-mode", choices=("thread", "process"),
                       default="process",
                       help="in-process server worker mode")
    bench.add_argument("--zoo", action="store_true",
                       help="drive embedded scenario-zoo bodies instead "
                            "of EWF/DCT mutants (honest cache misses)")
    bench.add_argument("--zoo-families", default=None, metavar="NAMES",
                       help="comma-separated zoo families for --zoo "
                            "(default: all; implies --zoo)")
    bench.add_argument("--saturation", default=None, metavar="LEVELS",
                       help="comma-separated client counts for the "
                            "offered-load sweep (e.g. 1,4,16,64,256)")
    bench.add_argument("--json", default=None,
                       help="also write the report to this file")
    bench.set_defaults(func=_cmd_bench)

    smoke = commands.add_parser(
        "smoke", help="CI end-to-end check (cache-hit identity)")
    smoke.add_argument("--url", default=None,
                       help="existing server (default: in-process)")
    smoke.add_argument("--workers", type=int, default=2)
    smoke.add_argument("--worker-mode", choices=("thread", "process"),
                       default="process")
    smoke.add_argument("--multiprocess", action="store_true",
                       help="also spawn two real server processes "
                            "sharing one disk cache tier and assert "
                            "byte-identical cross-process replies")
    smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
