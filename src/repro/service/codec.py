"""Canonical request codec and content-addressed cache keys.

An :class:`AllocateRequest` is the full identity of one allocation
problem: the CDFG, hardware spec, schedule parameters, search engine and
its knobs, seed and restart count.  :func:`request_key` hashes the
canonical JSON encoding of that identity with sha256, giving the
content-addressed key the result cache is organized by.

Two invariants the whole service relies on:

* **canonical encoding** — the payload built by :func:`cache_key_payload`
  uses only canonical sub-encodings (``repro.io``'s sorted, name-ordered
  dicts) and is serialized with :func:`repro.io.canonical_dumps`, so two
  semantically equal requests produce byte-identical JSON and therefore
  the same key, no matter how the caller constructed them;
* **identity vs. delivery** — fields that change *how* a result is
  computed or delivered without changing *which* result is correct
  (deadline, warm-start permission, async flag) are excluded from the
  key.  Results produced under a deadline (degraded) or from a warm start
  are never written back to the exact-key cache, so a cached entry is
  always the full-fidelity answer for its key.

:func:`warm_key` hashes the *problem shape only* (graph, spec, schedule
parameters, weights, model) — requests that differ merely in search
budget or seed share a warm key, which is how a near-identical request
finds a cached constructive binding to warm-start from.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.errors import ReproError
from repro.cdfg.graph import CDFG
from repro.datapath.cost import CostWeights
from repro.datapath.units import HardwareSpec
from repro.io.json_io import (canonical_dumps, cdfg_from_json, cdfg_to_dict,
                              spec_to_dict, _spec_from_dict)

import json

#: schema version of the request encoding; bump to invalidate all caches
REQUEST_FORMAT = 1

ENGINES = ("improve", "anneal")
MODELS = ("salsa", "traditional")

#: named benchmark CDFGs a request may refer to instead of embedding a
#: graph (resolved to the full graph before hashing, so ``{"bench":
#: "ewf"}`` and the embedded EWF graph are the same request)
_BENCH_BUILDERS = {
    "ewf": "elliptic_wave_filter",
    "dct": "discrete_cosine_transform",
    "fir": "fir_filter",
    "diffeq": "hal_diffeq",
    "ar": "ar_lattice",
}

_IMPROVE_KNOBS = ("max_trials", "moves_per_trial", "uphill_per_trial",
                  "idle_trials_stop", "restart_from_best", "polish_trials")
_ANNEAL_KNOBS = ("initial_temperature", "cooling", "temperature_levels",
                 "moves_per_level", "min_temperature")


class RequestError(ReproError):
    """A malformed or unsupported allocation request."""


@dataclass
class AllocateRequest:
    """One allocation problem plus its delivery options."""

    graph: CDFG
    spec: HardwareSpec
    model: str = "salsa"            # salsa | traditional
    engine: str = "improve"         # improve | anneal
    length: Optional[int] = None
    fu_counts: Optional[Dict[str, int]] = None
    registers: Optional[int] = None
    weights: CostWeights = CostWeights()
    seed: int = 0
    restarts: int = 1
    #: engine knob overrides (only keys in ``_IMPROVE_KNOBS`` /
    #: ``_ANNEAL_KNOBS``; everything else is rejected at decode time)
    improve: Dict[str, Any] = field(default_factory=dict)
    anneal: Dict[str, Any] = field(default_factory=dict)
    #: timing constraint: when the winning binding's analyzed clock period
    #: exceeds this, the result is delivered with ``degraded: true`` (and,
    #: like every degraded result, never cached).  Part of the request
    #: identity — but omitted from the key payload when None, so requests
    #: that predate the knob keep their exact keys.
    max_clock_ns: Optional[float] = None
    # ----- delivery options (never part of the cache key) -----
    #: wall-clock budget; when it fires mid-search the response carries
    #: the best-so-far binding with ``degraded: true``
    deadline_ms: Optional[int] = None
    #: allow warm-starting from a cached allocation of the same shape
    warm_start: bool = False
    #: ``"cache": false`` opts this submission out of the shared cache
    #: tier entirely — no exact-key read, no write-back, no warm-store
    #: publish.  A delivery option (load generators measuring pure search
    #: throughput, operators bypassing a suspect entry), never part of
    #: the request identity.
    cache_ok: bool = True

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise RequestError(f"unknown engine {self.engine!r} "
                               f"(expected one of {ENGINES})")
        if self.model not in MODELS:
            raise RequestError(f"unknown model {self.model!r} "
                               f"(expected one of {MODELS})")
        if self.restarts < 1:
            raise RequestError("restarts must be >= 1")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise RequestError("deadline_ms must be positive")
        if self.max_clock_ns is not None and self.max_clock_ns <= 0:
            raise RequestError("max_clock_ns must be positive")
        for knob in self.improve:
            if knob not in _IMPROVE_KNOBS:
                raise RequestError(f"unknown improve knob {knob!r}")
        for knob in self.anneal:
            if knob not in _ANNEAL_KNOBS:
                raise RequestError(f"unknown anneal knob {knob!r}")


# ----------------------------------------------------------------- decode

def _graph_from_spec(data: Any) -> CDFG:
    if isinstance(data, dict) and "bench" in data:
        name = data["bench"]
        builder_name = _BENCH_BUILDERS.get(name)
        if builder_name is None:
            raise RequestError(
                f"unknown benchmark {name!r} "
                f"(expected one of {sorted(_BENCH_BUILDERS)})")
        import repro.bench as bench
        return getattr(bench, builder_name)()
    if isinstance(data, dict) and data.get("type") == "cdfg":
        return cdfg_from_json(json.dumps(data))
    raise RequestError(
        "request 'cdfg' must be a serialized CDFG document or "
        "{'bench': <name>}")


def request_from_dict(data: Dict[str, Any]) -> AllocateRequest:
    """Decode an HTTP request body into an :class:`AllocateRequest`."""
    if not isinstance(data, dict):
        raise RequestError("request body must be a JSON object")
    known = {"cdfg", "spec", "model", "engine", "length", "fu_counts",
             "registers", "weights", "seed", "restarts", "improve",
             "anneal", "deadline_ms", "warm_start", "async", "cache",
             "latency_weight", "max_clock_ns"}
    unknown = set(data) - known
    if unknown:
        raise RequestError(f"unknown request fields {sorted(unknown)}")
    if "cdfg" not in data:
        raise RequestError("request is missing the 'cdfg' field")
    graph = _graph_from_spec(data["cdfg"])

    spec_data = data.get("spec", "non_pipelined")
    if spec_data == "non_pipelined":
        spec = HardwareSpec.non_pipelined()
    elif spec_data == "pipelined":
        spec = HardwareSpec.pipelined()
    elif isinstance(spec_data, dict):
        spec = _spec_from_dict(spec_data)
    else:
        raise RequestError("request 'spec' must be 'non_pipelined', "
                           "'pipelined' or a spec document")

    weights_data = data.get("weights")
    if weights_data is None:
        weights = CostWeights()
    else:
        try:
            weights = CostWeights(**weights_data)
        except TypeError as exc:
            raise RequestError(f"bad weights: {exc}") from None

    # whitelisted shorthand for weights.latency: steer the search toward
    # shallow mux trees without spelling out the whole weights vector
    if "latency_weight" in data:
        if weights_data is not None and "latency" in weights_data:
            raise RequestError(
                "give either 'latency_weight' or weights['latency'], "
                "not both")
        try:
            weights = replace(weights, latency=float(data["latency_weight"]))
        except (TypeError, ValueError) as exc:
            raise RequestError(f"bad latency_weight: {exc}") from None

    max_clock_ns = data.get("max_clock_ns")
    if max_clock_ns is not None:
        try:
            max_clock_ns = float(max_clock_ns)
        except (TypeError, ValueError) as exc:
            raise RequestError(f"bad max_clock_ns: {exc}") from None

    fu_counts = data.get("fu_counts")
    if fu_counts is not None:
        fu_counts = {str(k): int(v) for k, v in fu_counts.items()}
    try:
        return AllocateRequest(
            graph=graph, spec=spec,
            model=data.get("model", "salsa"),
            engine=data.get("engine", "improve"),
            length=data.get("length"),
            fu_counts=fu_counts,
            registers=data.get("registers"),
            weights=weights,
            seed=int(data.get("seed", 0)),
            restarts=int(data.get("restarts", 1)),
            improve=dict(data.get("improve", {})),
            anneal=dict(data.get("anneal", {})),
            deadline_ms=data.get("deadline_ms"),
            warm_start=bool(data.get("warm_start", False)),
            cache_ok=bool(data.get("cache", True)),
            max_clock_ns=max_clock_ns)
    except (ValueError, TypeError) as exc:
        raise RequestError(f"bad request field: {exc}") from None


# ----------------------------------------------------------------- encode

def _weights_to_dict(weights: CostWeights) -> Dict[str, float]:
    payload = {"fu": weights.fu, "register": weights.register,
               "mux": weights.mux, "wire": weights.wire}
    # a zero latency weight is the pre-timing cost function: omit the key
    # so every request that predates the knob hashes to its old cache key
    if weights.latency:
        payload["latency"] = weights.latency
    return payload


def _shape_payload(request: AllocateRequest) -> Dict[str, Any]:
    """The problem-shape identity shared by :func:`warm_key`."""
    return {
        "format": REQUEST_FORMAT,
        "cdfg": cdfg_to_dict(request.graph),
        "spec": spec_to_dict(request.spec),
        "model": request.model,
        "length": request.length,
        "fu_counts": dict(sorted(request.fu_counts.items()))
        if request.fu_counts is not None else None,
        "registers": request.registers,
        "weights": _weights_to_dict(request.weights),
    }


def cache_key_payload(request: AllocateRequest) -> Dict[str, Any]:
    """The full identity payload hashed by :func:`request_key`.

    Delivery options (deadline, warm-start permission) are deliberately
    absent: they select *how hard* to try, not *what* the answer is.
    """
    payload = _shape_payload(request)
    payload.update({
        "engine": request.engine,
        "seed": request.seed,
        "restarts": request.restarts,
        "improve": dict(sorted(request.improve.items())),
        "anneal": dict(sorted(request.anneal.items())),
    })
    # identity-bearing, but omitted when absent: requests without the
    # constraint keep the exact keys they had before the knob existed
    if request.max_clock_ns is not None:
        payload["max_clock_ns"] = request.max_clock_ns
    return payload


def request_key(request: AllocateRequest) -> str:
    """sha256 over the canonical JSON of the request identity."""
    text = canonical_dumps(cache_key_payload(request))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def warm_key(request: AllocateRequest) -> str:
    """sha256 over the problem shape only (search knobs/seeds excluded)."""
    text = canonical_dumps(_shape_payload(request))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def job_id_for(key: str) -> str:
    """Deterministic job ID: identical requests map to the same job.

    This is what makes duplicate in-flight submissions coalesce instead of
    running the same search twice.
    """
    digest = hashlib.sha256(b"repro-job:" + key.encode("ascii"))
    return digest.hexdigest()[:16]
