"""Content-addressed result cache: in-memory LRU over a shared disk tier.

Keys are the sha256 hex digests produced by
:func:`repro.service.codec.request_key` (exact results) and
:func:`repro.service.codec.warm_key` (warm-start state snapshots under a
``warm_`` prefix).  Values are opaque UTF-8 payload bytes — the cache
never parses what it stores, so a hit can be returned byte-identical.

Layers:

* :class:`MemoryLRUCache` — byte-budgeted LRU (an ``OrderedDict`` ring),
  private to one process;
* :class:`DiskCache` — the **shared tier**: a directory any number of
  server processes (or hosts on a shared volume) read and write
  concurrently.  Entries live under per-namespace shards
  (``<root>/exact/ab/<key>.entry``, ``<root>/warm/ab/<key>.entry``) and
  every entry is wrapped in a checksummed envelope (header line with
  payload length + sha256), so a torn, truncated or bit-rotted file is
  detected, unlinked and reported as a *miss* — never served as garbage.
  Writes are atomic (``os.replace`` of a same-directory temp file); no
  in-process lock pretends to serialize them, because the only safety
  that matters is cross-process and the rename provides it.  A
  byte-budgeted :meth:`DiskCache.sweep` evicts oldest-first and tolerates
  concurrent sweepers/writers (racing deletes are idempotent);
* :class:`TieredCache` — memory in front of disk with promotion on a disk
  hit and write-through on put.

All layers are thread-safe and count hits/misses/evictions/corruption
into an optional :class:`~repro.service.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.service.metrics import MetricsRegistry

#: default byte budget of the in-memory layer (64 MiB of payloads)
DEFAULT_MEMORY_BUDGET = 64 * 1024 * 1024

#: default byte budget of the shared disk tier (per cache root)
DEFAULT_DISK_BUDGET = 512 * 1024 * 1024

#: puts between opportunistic eviction sweeps of the disk tier
DEFAULT_SWEEP_EVERY = 64

CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: first bytes of every on-disk entry; anything else is not ours
ENVELOPE_MAGIC = b"repro-cache-v1 "


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro`` (XDG-aware)."""
    configured = os.environ.get(CACHE_DIR_ENV, "").strip()
    if configured:
        return configured
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def _safe_key(key: str) -> str:
    """Keys become filenames; restrict them to a conservative alphabet."""
    cleaned = key.replace(":", "_")
    if not cleaned or not all(c.isalnum() or c in "._-" for c in cleaned):
        raise ValueError(f"unusable cache key {key!r}")
    return cleaned


# ------------------------------------------------------------ entry envelope

def encode_entry(payload: bytes) -> bytes:
    """Wrap a payload in the checksummed on-disk envelope.

    Layout: ``repro-cache-v1 {"length": N, "sha256": "..."}\\n<payload>``.
    The header carries everything needed to detect truncation (length
    mismatch) and bit rot (digest mismatch) without trusting the payload.
    """
    header = {"length": len(payload),
              "sha256": hashlib.sha256(payload).hexdigest()}
    return ENVELOPE_MAGIC + json.dumps(
        header, sort_keys=True, separators=(",", ":")).encode("ascii") \
        + b"\n" + payload


def decode_entry(blob: bytes) -> Optional[bytes]:
    """The payload of a well-formed envelope, else ``None``.

    ``None`` means the entry cannot be trusted — wrong magic (not written
    by this format), torn header, truncated payload, or a digest
    mismatch — and the caller must treat it as a miss.
    """
    if not blob.startswith(ENVELOPE_MAGIC):
        return None
    newline = blob.find(b"\n", len(ENVELOPE_MAGIC))
    if newline < 0:
        return None
    try:
        header = json.loads(blob[len(ENVELOPE_MAGIC):newline])
        length, digest = int(header["length"]), str(header["sha256"])
    except (ValueError, KeyError, TypeError):
        return None
    payload = blob[newline + 1:]
    if len(payload) != length:
        return None
    if hashlib.sha256(payload).hexdigest() != digest:
        return None
    return payload


class MemoryLRUCache:
    """Byte-budgeted in-memory LRU store."""

    def __init__(self, byte_budget: int = DEFAULT_MEMORY_BUDGET,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if byte_budget <= 0:
            raise ValueError("byte budget must be positive")
        self.byte_budget = byte_budget
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._bytes = 0
        self._metrics = metrics
        if metrics is not None:
            self._hits = metrics.counter(
                "cache_memory_hits", "exact-key hits in the memory layer")
            self._misses = metrics.counter(
                "cache_memory_misses", "exact-key misses in the memory layer")
            self._evictions = metrics.counter(
                "cache_memory_evictions", "entries evicted by the byte budget")
            self._bytes_gauge = metrics.gauge(
                "cache_memory_bytes", "payload bytes currently resident")

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
        if self._metrics is not None:
            (self._hits if payload is not None else self._misses).inc()
        return payload

    def put(self, key: str, payload: bytes) -> None:
        if len(payload) > self.byte_budget:
            return  # would evict the whole cache for one entry
        evicted = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)
            self._entries[key] = payload
            self._bytes += len(payload)
            while self._bytes > self.byte_budget:
                _, dropped = self._entries.popitem(last=False)
                self._bytes -= len(dropped)
                evicted += 1
            resident = self._bytes
        if self._metrics is not None:
            if evicted:
                self._evictions.inc(evicted)
            self._bytes_gauge.set(resident)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class DiskCache:
    """The shared on-disk tier under a configurable root directory.

    Multiple server processes — or hosts mounting the same volume — use
    one root concurrently.  Correctness rests on three properties, not on
    locks:

    * **atomic publish** — a put writes a temp file in the target shard
      directory and ``os.replace``\\ s it into place, so readers see the
      old entry or the complete new one, never a torn write.  Two
      concurrent writers of the same key both succeed; last rename wins,
      and either winner is a full-fidelity entry for that key;
    * **checksummed envelope** — :func:`decode_entry` rejects anything
      truncated, bit-rotted or foreign; a rejected file is unlinked and
      reported as a miss, so corruption costs a recompute, never a wrong
      answer;
    * **idempotent eviction** — :meth:`sweep` deletes oldest-first until
      the tier fits ``byte_budget``; racing sweepers simply find some
      victims already gone (``FileNotFoundError`` is ignored).

    Entries shard by namespace then key prefix:
    ``<root>/exact/ab/<key>.entry`` for exact results,
    ``<root>/warm/ab/<key>.entry`` for ``warm_``-prefixed shape
    snapshots — so operators can budget, inspect or drop the two
    populations independently and the sweep never has to parse names.
    """

    def __init__(self, root: Optional[str] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 byte_budget: int = DEFAULT_DISK_BUDGET,
                 sweep_every: int = DEFAULT_SWEEP_EVERY) -> None:
        self.root = root if root is not None else default_cache_dir()
        self.byte_budget = byte_budget
        self.sweep_every = max(1, sweep_every)
        self._puts_since_sweep = 0
        self._counter_lock = threading.Lock()
        self._metrics = metrics
        if metrics is not None:
            self._hits = metrics.counter(
                "cache_disk_hits", "exact-key hits in the disk layer")
            self._misses = metrics.counter(
                "cache_disk_misses", "exact-key misses in the disk layer")
            self._corrupt = metrics.counter(
                "cache_disk_corrupt",
                "torn/bit-rotted entries unlinked and reported as misses")
            self._evicted = metrics.counter(
                "cache_disk_evictions",
                "entries removed by the byte-budget sweep")

    def _namespace(self, name: str) -> str:
        return "warm" if name.startswith("warm_") else "exact"

    def _path(self, key: str) -> str:
        name = _safe_key(key)
        shard = name[len("warm_"):][:2] if name.startswith("warm_") \
            else name[:2]
        return os.path.join(self.root, self._namespace(name), shard,
                            name + ".entry")

    def get(self, key: str) -> Optional[bytes]:
        path = self._path(key)
        payload: Optional[bytes] = None
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except (OSError, ValueError):
            blob = None
        if blob is not None:
            payload = decode_entry(blob)
            if payload is None:
                # a torn or corrupt entry is dropped so the next writer
                # repopulates it; racing droppers are both fine
                if self._metrics is not None:
                    self._corrupt.inc()
                try:
                    os.unlink(path)
                except OSError:
                    pass
            else:
                try:
                    # freshen mtime so the eviction sweep is LRU-ish
                    os.utime(path)
                except OSError:
                    pass
        if self._metrics is not None:
            (self._hits if payload is not None else self._misses).inc()
        return payload

    def put(self, key: str, payload: bytes) -> None:
        path = self._path(key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            # atomic publish: readers either see the old entry or the
            # complete new one, never a torn write.  No in-process lock:
            # it would only serialize threads of *this* process while
            # other server processes write freely, a false security —
            # the same-directory rename is the real guarantee.
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(encode_entry(payload))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # a read-only or full cache dir degrades to cache-off, it
            # never fails the request
            return
        with self._counter_lock:
            self._puts_since_sweep += 1
            due = self._puts_since_sweep >= self.sweep_every
            if due:
                self._puts_since_sweep = 0
        if due:
            self.sweep()

    # ------------------------------------------------------------- eviction

    def _entries(self) -> List[Tuple[float, int, str]]:
        """(mtime, size, path) for every entry file under the root."""
        found: List[Tuple[float, int, str]] = []
        for namespace in ("exact", "warm"):
            base = os.path.join(self.root, namespace)
            try:
                shards = os.listdir(base)
            except OSError:
                continue
            for shard in shards:
                shard_dir = os.path.join(base, shard)
                try:
                    with os.scandir(shard_dir) as it:
                        for entry in it:
                            if not entry.name.endswith(".entry"):
                                continue
                            try:
                                stat = entry.stat()
                            except OSError:
                                continue  # deleted by a racing sweeper
                            found.append((stat.st_mtime, stat.st_size,
                                          entry.path))
                except OSError:
                    continue
        return found

    def sweep(self, byte_budget: Optional[int] = None) -> int:
        """Evict oldest entries until the tier fits the byte budget.

        Safe under N concurrent server processes: the scan is a snapshot,
        every delete tolerates the file already being gone, and a victim
        resurrected by a concurrent writer just survives until the next
        sweep.  Returns the number of entries this sweeper removed.
        """
        budget = self.byte_budget if byte_budget is None else byte_budget
        if budget is None or budget <= 0:
            return 0
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total <= budget:
            return 0
        removed = 0
        for _, size, path in sorted(entries):  # oldest mtime first
            if total <= budget:
                break
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass  # a racing sweeper got there first; its delete counts
            total -= size  # gone either way
        if removed and self._metrics is not None:
            self._evicted.inc(removed)
        return removed

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def __len__(self) -> int:
        return len(self._entries())


class TieredCache:
    """Memory LRU in front of the disk store (promote on disk hit)."""

    def __init__(self, memory: Optional[MemoryLRUCache] = None,
                 disk: Optional[DiskCache] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.memory = memory
        self.disk = disk
        self._metrics = metrics
        if metrics is not None:
            self._hits = metrics.counter(
                "cache_hits", "requests served from any cache layer")
            self._misses = metrics.counter(
                "cache_misses", "requests that had to run the search")

    @classmethod
    def standard(cls, cache_dir: Optional[str] = None,
                 memory_budget: int = DEFAULT_MEMORY_BUDGET,
                 disk_budget: int = DEFAULT_DISK_BUDGET,
                 metrics: Optional[MetricsRegistry] = None,
                 persistent: bool = True) -> "TieredCache":
        memory = MemoryLRUCache(memory_budget, metrics=metrics)
        disk = DiskCache(cache_dir, metrics=metrics,
                         byte_budget=disk_budget) if persistent else None
        return cls(memory, disk, metrics=metrics)

    def get(self, key: str) -> Optional[bytes]:
        payload = self.memory.get(key) if self.memory is not None else None
        if payload is None and self.disk is not None:
            payload = self.disk.get(key)
            if payload is not None and self.memory is not None:
                self.memory.put(key, payload)
        if self._metrics is not None:
            (self._hits if payload is not None else self._misses).inc()
        return payload

    def put(self, key: str, payload: bytes) -> None:
        if self.memory is not None:
            self.memory.put(key, payload)
        if self.disk is not None:
            self.disk.put(key, payload)

    def stats(self) -> Dict[str, int]:
        return {
            "memory_entries": len(self.memory) if self.memory else 0,
            "disk_entries": len(self.disk) if self.disk else 0,
        }
