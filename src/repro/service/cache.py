"""Content-addressed result cache: in-memory LRU over an on-disk store.

Keys are the sha256 hex digests produced by
:func:`repro.service.codec.request_key` (exact results) and
:func:`repro.service.codec.warm_key` (warm-start state snapshots under a
``warm:`` namespace).  Values are opaque UTF-8 payload bytes — the cache
never parses what it stores, so a hit can be returned byte-identical.

Layers:

* :class:`MemoryLRUCache` — byte-budgeted LRU (an ``OrderedDict`` ring);
* :class:`DiskCache` — two-level fan-out directory
  (``<root>/ab/abcdef....json``) with atomic tmp-file + rename writes, so
  a crashed writer never leaves a torn entry;
* :class:`TieredCache` — memory in front of disk with promotion on a disk
  hit and write-through on put.

All layers are thread-safe and count hits/misses/evictions into an
optional :class:`~repro.service.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.service.metrics import MetricsRegistry

#: default byte budget of the in-memory layer (64 MiB of payloads)
DEFAULT_MEMORY_BUDGET = 64 * 1024 * 1024

CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro`` (XDG-aware)."""
    configured = os.environ.get(CACHE_DIR_ENV, "").strip()
    if configured:
        return configured
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def _safe_key(key: str) -> str:
    """Keys become filenames; restrict them to a conservative alphabet."""
    cleaned = key.replace(":", "_")
    if not cleaned or not all(c.isalnum() or c in "._-" for c in cleaned):
        raise ValueError(f"unusable cache key {key!r}")
    return cleaned


class MemoryLRUCache:
    """Byte-budgeted in-memory LRU store."""

    def __init__(self, byte_budget: int = DEFAULT_MEMORY_BUDGET,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if byte_budget <= 0:
            raise ValueError("byte budget must be positive")
        self.byte_budget = byte_budget
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._bytes = 0
        self._metrics = metrics
        if metrics is not None:
            self._hits = metrics.counter(
                "cache_memory_hits", "exact-key hits in the memory layer")
            self._misses = metrics.counter(
                "cache_memory_misses", "exact-key misses in the memory layer")
            self._evictions = metrics.counter(
                "cache_memory_evictions", "entries evicted by the byte budget")
            self._bytes_gauge = metrics.gauge(
                "cache_memory_bytes", "payload bytes currently resident")

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
        if self._metrics is not None:
            (self._hits if payload is not None else self._misses).inc()
        return payload

    def put(self, key: str, payload: bytes) -> None:
        if len(payload) > self.byte_budget:
            return  # would evict the whole cache for one entry
        evicted = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)
            self._entries[key] = payload
            self._bytes += len(payload)
            while self._bytes > self.byte_budget:
                _, dropped = self._entries.popitem(last=False)
                self._bytes -= len(dropped)
                evicted += 1
            resident = self._bytes
        if self._metrics is not None:
            if evicted:
                self._evictions.inc(evicted)
            self._bytes_gauge.set(resident)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class DiskCache:
    """On-disk store under a configurable root directory."""

    def __init__(self, root: Optional[str] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.root = root if root is not None else default_cache_dir()
        self._lock = threading.Lock()
        self._metrics = metrics
        if metrics is not None:
            self._hits = metrics.counter(
                "cache_disk_hits", "exact-key hits in the disk layer")
            self._misses = metrics.counter(
                "cache_disk_misses", "exact-key misses in the disk layer")

    def _path(self, key: str) -> str:
        name = _safe_key(key)
        return os.path.join(self.root, name[:2], name + ".json")

    def get(self, key: str) -> Optional[bytes]:
        try:
            with open(self._path(key), "rb") as fh:
                payload = fh.read()
        except (OSError, ValueError):
            payload = None
        if self._metrics is not None:
            (self._hits if payload is not None else self._misses).inc()
        return payload

    def put(self, key: str, payload: bytes) -> None:
        path = self._path(key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            # atomic publish: readers either see the old entry or the
            # complete new one, never a torn write
            with self._lock:
                fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as fh:
                        fh.write(payload)
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
        except OSError:
            # a read-only or full cache dir degrades to cache-off, it
            # never fails the request
            pass

    def __len__(self) -> int:
        count = 0
        try:
            for shard in os.listdir(self.root):
                shard_dir = os.path.join(self.root, shard)
                if os.path.isdir(shard_dir):
                    count += sum(1 for n in os.listdir(shard_dir)
                                 if n.endswith(".json"))
        except OSError:
            pass
        return count


class TieredCache:
    """Memory LRU in front of the disk store (promote on disk hit)."""

    def __init__(self, memory: Optional[MemoryLRUCache] = None,
                 disk: Optional[DiskCache] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.memory = memory
        self.disk = disk
        self._metrics = metrics
        if metrics is not None:
            self._hits = metrics.counter(
                "cache_hits", "requests served from any cache layer")
            self._misses = metrics.counter(
                "cache_misses", "requests that had to run the search")

    @classmethod
    def standard(cls, cache_dir: Optional[str] = None,
                 memory_budget: int = DEFAULT_MEMORY_BUDGET,
                 metrics: Optional[MetricsRegistry] = None,
                 persistent: bool = True) -> "TieredCache":
        memory = MemoryLRUCache(memory_budget, metrics=metrics)
        disk = DiskCache(cache_dir, metrics=metrics) if persistent else None
        return cls(memory, disk, metrics=metrics)

    def get(self, key: str) -> Optional[bytes]:
        payload = self.memory.get(key) if self.memory is not None else None
        if payload is None and self.disk is not None:
            payload = self.disk.get(key)
            if payload is not None and self.memory is not None:
                self.memory.put(key, payload)
        if self._metrics is not None:
            (self._hits if payload is not None else self._misses).inc()
        return payload

    def put(self, key: str, payload: bytes) -> None:
        if self.memory is not None:
            self.memory.put(key, payload)
        if self.disk is not None:
            self.disk.put(key, payload)

    def stats(self) -> Dict[str, int]:
        return {
            "memory_entries": len(self.memory) if self.memory else 0,
            "disk_entries": len(self.disk) if self.disk else 0,
        }
