"""Minimal stdlib HTTP client for the allocation service.

Wraps ``urllib.request`` so scripts, the CLI and the throughput benchmark
talk to the server the same way.  Raises :class:`ServiceError` for any
non-2xx response, carrying the decoded error payload.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError


class ServiceError(ReproError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: "
                         f"{payload.get('error', payload)}")


class ServiceClient:
    """Talk to one service instance at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 630.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------ plumbing

    def _call(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None) \
            -> Tuple[int, Dict[str, Any]]:
        url = self.base_url + path
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"}
            if data is not None else {})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                payload = json.loads(response.read().decode("utf-8"))
                return response.status, payload
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                payload = {"error": str(exc)}
            return exc.code, payload

    def _expect_2xx(self, status: int,
                    payload: Dict[str, Any]) -> Dict[str, Any]:
        if status // 100 != 2:
            raise ServiceError(status, payload)
        return payload

    # ------------------------------------------------------------ endpoints

    def allocate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Synchronous ``POST /allocate`` (holds until done/degraded)."""
        return self._expect_2xx(*self._call("POST", "/allocate", request))

    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Async submission; returns the job-ID envelope immediately."""
        body = dict(request)
        body["async"] = True
        return self._expect_2xx(*self._call("POST", "/allocate", body))

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._expect_2xx(*self._call("GET", f"/jobs/{job_id}"))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._expect_2xx(
            *self._call("POST", f"/jobs/{job_id}/cancel"))

    def healthz(self) -> Dict[str, Any]:
        return self._expect_2xx(*self._call("GET", "/healthz"))

    def metricsz(self, condensed: bool = False) -> Dict[str, Any]:
        path = "/metricsz?report=1" if condensed else "/metricsz"
        return self._expect_2xx(*self._call("GET", path))

    def wait(self, job_id: str, timeout: float = 600.0,
             poll_s: float = 0.2) -> Dict[str, Any]:
        """Poll ``GET /jobs/<id>`` until it leaves queued/running."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload.get("status") not in ("queued", "running"):
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(408, {"error": f"job {job_id} still "
                                         f"{payload.get('status')} after "
                                         f"{timeout}s"})
            time.sleep(poll_s)

    def wait_until_healthy(self, timeout: float = 10.0,
                           poll_s: float = 0.1) -> Dict[str, Any]:
        """Spin until ``/healthz`` answers (server start-up grace)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (ServiceError, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll_s)
