"""Stdlib-only JSON API over the job manager.

Endpoints (all JSON):

* ``POST /allocate`` — submit an allocation request.  Synchronous by
  default: the connection is held until the job finishes (or the server's
  sync-wait cap fires, after which the client polls).  ``"async": true``
  in the body returns ``202 Accepted`` with the job ID immediately.
* ``GET /jobs/<id>`` — job status, plus the result once done.
* ``POST /jobs/<id>/cancel`` (or ``DELETE /jobs/<id>``) — cancellation.
* ``GET /healthz`` — liveness: uptime, queue depth, jobs in flight.
* ``GET /metricsz`` — full metrics-registry snapshot;
  ``GET /metricsz?report=1`` returns the condensed
  :func:`repro.analysis.stats.service_report` instead.

Status codes: ``200`` done (including deadline-degraded results, which
carry ``degraded: true``), ``202`` accepted/still running, ``400`` bad
request, ``404`` unknown job or path, ``422`` failed job, ``503`` queue
full.  The server is a :class:`http.server.ThreadingHTTPServer`, so slow
searches never block health checks or metrics scrapes.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.cache import (DEFAULT_MEMORY_BUDGET, TieredCache)
from repro.service.codec import RequestError, request_from_dict
from repro.service.jobs import (DONE, FAILED, CANCELLED, JobManager,
                                JobNotFoundError, QueueFullError)
from repro.service.metrics import MetricsRegistry
from repro.analysis.stats import service_report

#: maximum accepted request body (a large CDFG document is ~1 MB)
MAX_BODY_BYTES = 16 * 1024 * 1024

#: how long a synchronous POST /allocate holds the connection before
#: telling the client to poll GET /jobs/<id> instead
DEFAULT_SYNC_WAIT_S = 600.0


class AllocationService:
    """The service core the HTTP layer (and tests) drive directly."""

    def __init__(self, workers: int = 2, queue_limit: int = 64,
                 cache_dir: Optional[str] = None,
                 memory_budget: int = DEFAULT_MEMORY_BUDGET,
                 persistent_cache: bool = True,
                 max_attempts: int = 3,
                 sync_wait_s: float = DEFAULT_SYNC_WAIT_S,
                 worker_mode: str = "thread",
                 batch_limit: Optional[int] = None) -> None:
        self.metrics = MetricsRegistry()
        self.cache = TieredCache.standard(cache_dir=cache_dir,
                                          memory_budget=memory_budget,
                                          metrics=self.metrics,
                                          persistent=persistent_cache)
        job_kwargs = {} if batch_limit is None \
            else {"batch_limit": batch_limit}
        self.jobs = JobManager(cache=self.cache, metrics=self.metrics,
                               workers=workers, queue_limit=queue_limit,
                               max_attempts=max_attempts,
                               worker_mode=worker_mode, **job_kwargs)
        self.sync_wait_s = sync_wait_s
        self.started_at = time.time()  # display-only wall stamp
        self._started_mono = time.monotonic()

    def close(self) -> None:
        self.jobs.shutdown()

    # ---------------------------------------------------------- operations

    def allocate(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Handle one ``POST /allocate`` body; returns (status, payload)."""
        self.metrics.counter("requests_allocate",
                             "POST /allocate requests").inc()
        wants_async = bool(body.get("async", False))
        request = request_from_dict(body)
        try:
            job, cached = self.jobs.submit(request)
        except QueueFullError as exc:
            return 503, {"error": str(exc), "status": "rejected"}

        if cached is not None:
            return 200, {
                "job_id": job.id,
                "status": DONE,
                "cached": True,
                "degraded": False,
                "result": json.loads(cached.decode("utf-8")),
            }
        if wants_async:
            return 202, {"job_id": job.id, "status": job.status,
                         "cached": False}
        job.wait(self.sync_wait_s)
        return self.job_status(job.id)

    def job_status(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        self.metrics.counter("requests_jobs", "GET /jobs requests").inc()
        job = self.jobs.get(job_id)  # raises JobNotFoundError -> 404
        payload: Dict[str, Any] = dict(job.describe())
        payload["cached"] = False
        if job.status == DONE:
            if job.result is not None:
                payload["result"] = job.result
                payload["degraded"] = job.result["degraded"]
            else:
                # synthetic record for a cache-served submission: re-read
                # the payload so polling the job ID still yields the result
                cached = self.cache.get(job.key)
                if cached is not None:
                    payload["cached"] = True
                    payload["degraded"] = False
                    payload["result"] = json.loads(cached.decode("utf-8"))
            return 200, payload
        if job.status == FAILED:
            return 422, payload
        if job.status == CANCELLED:
            return 200, payload
        return 202, payload

    def cancel_job(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        self.metrics.counter("requests_jobs", "GET /jobs requests").inc()
        job = self.jobs.cancel(job_id)
        return 202, job.describe()

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        self.metrics.counter("requests_healthz", "GET /healthz").inc()
        return 200, {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started_mono,
            "worker_mode": self.jobs.worker_mode,
            "workers": self.jobs.workers,
            "queue_depth": self.metrics.gauge("queue_depth").value,
            "jobs_in_flight": self.metrics.gauge("jobs_in_flight").value,
            "cache": self.cache.stats(),
        }

    def metricsz(self, condensed: bool = False) \
            -> Tuple[int, Dict[str, Any]]:
        self.metrics.counter("requests_metricsz", "GET /metricsz").inc()
        snapshot = self.metrics.snapshot()
        if condensed:
            return 200, service_report(snapshot)
        return 200, snapshot


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs/paths onto the :class:`AllocationService`."""

    service: AllocationService  # injected by make_server()
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing

    def log_message(self, format: str, *args: Any) -> None:
        pass  # quiet by default; metrics carry the traffic numbers

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", "0"))
        if length <= 0:
            raise RequestError("empty request body")
        if length > MAX_BODY_BYTES:
            raise RequestError(f"request body over {MAX_BODY_BYTES} bytes")
        try:
            data = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RequestError(f"body is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise RequestError("request body must be a JSON object")
        return data

    def _dispatch(self, handler) -> None:
        try:
            status, payload = handler()
        except RequestError as exc:
            status, payload = 400, {"error": str(exc)}
        except JobNotFoundError as exc:
            status, payload = 404, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - last-resort guard
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        self._send(status, payload)

    # --------------------------------------------------------------- routes

    def do_POST(self) -> None:
        path = urlparse(self.path).path.rstrip("/")
        if path == "/allocate":
            self._dispatch(lambda: self.service.allocate(self._read_body()))
        elif path.startswith("/jobs/") and path.endswith("/cancel"):
            job_id = path[len("/jobs/"):-len("/cancel")]
            self._dispatch(lambda: self.service.cancel_job(job_id))
        else:
            self._send(404, {"error": f"no POST route {path!r}"})

    def do_GET(self) -> None:
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/")
        if path == "/healthz":
            self._dispatch(self.service.healthz)
        elif path == "/metricsz":
            condensed = "report" in parse_qs(parsed.query)
            self._dispatch(lambda: self.service.metricsz(condensed))
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            self._dispatch(lambda: self.service.job_status(job_id))
        else:
            self._send(404, {"error": f"no GET route {path!r}"})

    def do_DELETE(self) -> None:
        path = urlparse(self.path).path.rstrip("/")
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            self._dispatch(lambda: self.service.cancel_job(job_id))
        else:
            self._send(404, {"error": f"no DELETE route {path!r}"})


def make_server(host: str = "127.0.0.1", port: int = 8977,
                service: Optional[AllocationService] = None,
                **service_kwargs: Any) \
        -> Tuple[ThreadingHTTPServer, AllocationService]:
    """Build (but do not start) the HTTP server and its service core."""
    svc = service if service is not None \
        else AllocationService(**service_kwargs)

    class BoundHandler(_Handler):
        pass

    BoundHandler.service = svc
    server = ThreadingHTTPServer((host, port), BoundHandler)
    return server, svc


def serve_forever(host: str = "127.0.0.1", port: int = 8977,
                  **service_kwargs: Any) -> None:
    """Run the service until interrupted (the ``serve`` CLI command)."""
    server, svc = make_server(host, port, **service_kwargs)
    bound_port = server.server_address[1]
    print(f"repro.service listening on http://{host}:{bound_port} "
          f"(POST /allocate, GET /jobs/<id>, /healthz, /metricsz)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        svc.close()


class ServerThread:
    """A server on an ephemeral port running in a daemon thread.

    The in-process harness used by tests, the throughput benchmark and the
    CI smoke check::

        with ServerThread() as url:
            ...  # drive url with urllib / ServiceClient
    """

    def __init__(self, **service_kwargs: Any) -> None:
        self.server, self.service = make_server(port=0, **service_kwargs)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       name="repro-service-http",
                                       daemon=True)

    @property
    def url(self) -> str:
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    def __enter__(self) -> str:
        self.thread.start()
        return self.url

    def __exit__(self, *exc_info: Any) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.service.close()
