"""Allocation-as-a-service: codec, cache, jobs, HTTP API, metrics.

The service wraps the allocator behind a content-addressed request cache
and a bounded job queue, exposed over a stdlib-only JSON HTTP API::

    python -m repro.service serve          # run the server
    python -m repro.service submit ...     # POST /allocate from the CLI
    python -m repro.service bench          # concurrent throughput bench

See DESIGN.md §4 for the canonical-encoding / cache-key invariant and
the retry/degradation policy the whole layer is built on.
"""

from repro.service.codec import (AllocateRequest, RequestError,
                                 cache_key_payload, job_id_for,
                                 request_from_dict, request_key, warm_key)
from repro.service.cache import (DiskCache, MemoryLRUCache, TieredCache,
                                 default_cache_dir)
from repro.service.jobs import (Job, JobManager, JobNotFoundError,
                                QueueFullError)
from repro.service.metrics import (Counter, Gauge, Histogram,
                                   MetricsRegistry)
from repro.service.server import (AllocationService, ServerThread,
                                  make_server, serve_forever)
from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import (mutant_requests, run_saturation_bench,
                                   run_throughput_bench)

__all__ = [
    "AllocateRequest", "AllocationService", "Counter", "DiskCache",
    "Gauge", "Histogram", "Job", "JobManager", "JobNotFoundError",
    "MemoryLRUCache", "MetricsRegistry", "QueueFullError", "RequestError",
    "ServerThread", "ServiceClient", "ServiceError", "TieredCache",
    "cache_key_payload", "default_cache_dir", "job_id_for",
    "make_server", "mutant_requests", "request_from_dict", "request_key",
    "run_saturation_bench", "run_throughput_bench", "serve_forever",
    "warm_key",
]
