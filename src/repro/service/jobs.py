"""Async job orchestration over the allocation engines.

A :class:`JobManager` owns a bounded FIFO queue and a pool of worker
*threads* (not processes: jobs need live deadline/cancellation closures,
which must observe caller state — see ``repro.core.parallel``'s serial
path).  Each job runs the restart loop of one
:class:`~repro.service.codec.AllocateRequest` through
:func:`repro.core.parallel.run_restart` and ends in exactly one of:

* **done** — full-fidelity result, written through to the exact-key cache;
* **done, degraded** — the deadline fired mid-search: the response is the
  checker-validated best-so-far binding plus telemetry, marked
  ``degraded: true`` and *not* cached (a later undeadlined request must
  not inherit a truncated answer);
* **cancelled** — the client gave up; nothing is returned or cached;
* **failed** — a fatal error, or a retryable one that survived
  ``max_attempts`` fresh-seed retries.

Retry policy rides on :mod:`repro.verify.classify`: a
:class:`~repro.verify.sanitizer.SanitizerError` or worker crash gets a
fresh seed (derived via :class:`repro.rng.SeedStream`, never reusing the
failed trajectory); deterministic :class:`~repro.errors.ReproError`\\ s
fail immediately.

Warm starts: every successful job publishes its winning decision-state
snapshot under ``warm:<shape-key>``; a request with ``warm_start: true``
whose exact key misses but whose shape key hits restores that snapshot on
top of the constructive initial allocation before searching.  Warm-started
results are themselves kept out of the exact-key cache, because their
content depends on what happened to be in the warm store.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.alloc.checker import assert_legal
from repro.core.arraystate import PAYLOAD_FORMAT, CompactState
from repro.core.allocator import SalsaAllocator, TraditionalAllocator
from repro.core.anneal import AnnealConfig, anneal
from repro.core.improve import ImproveConfig, ImproveStats
from repro.core.initial import initial_allocation
from repro.core.moves import MoveSet
from repro.core.parallel import (RestartJob, RestartOutcome, best_outcome,
                                 rebuild_binding, run_restart)
from repro.rng import SeedStream
from repro.io.json_io import binding_to_dict, canonical_dumps
from repro.verify.classify import is_retryable
from repro.verify.sanitizer import decode_state, encode_state
from repro.analysis.stats import telemetry_report
from repro.service.cache import TieredCache
from repro.service.codec import (AllocateRequest, job_id_for, request_key,
                                 warm_key)
from repro.service.metrics import MetricsRegistry

#: job states
QUEUED, RUNNING, DONE, FAILED, CANCELLED = \
    "queued", "running", "done", "failed", "cancelled"

#: default propose/evaluate/rollback sampling density fed into the
#: per-phase latency histograms (0 disables; sampling never changes
#: search results, only telemetry)
DEFAULT_PROFILE_EVERY = 64

#: completed jobs retained for GET /jobs/<id> after they finish
RETAINED_JOBS = 1024


class QueueFullError(ReproError):
    """The job queue is at capacity; the caller should back off."""


class JobNotFoundError(ReproError):
    """No job with the requested ID (expired or never submitted)."""


@dataclass
class Job:
    """One submitted allocation request and its lifecycle."""

    id: str
    key: str
    shape_key: str
    request: AllocateRequest
    status: str = QUEUED
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    error_kind: Optional[str] = None
    attempts: int = 0
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    done_event: threading.Event = field(default_factory=threading.Event)
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: compact warm snapshot of the winning state
    #: (``CompactState.to_payload`` as canonical JSON), published to the
    #: warm store when the job finishes; internal, never in ``describe()``
    warm_payload: Optional[bytes] = field(default=None, repr=False)

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self.done_event.wait(timeout)

    def describe(self) -> Dict[str, Any]:
        """JSON-able job status (without the result payload)."""
        return {
            "job_id": self.id,
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "error_kind": self.error_kind,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class JobManager:
    """Bounded-queue thread-pool executor for allocation requests."""

    def __init__(self, cache: Optional[TieredCache] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 workers: int = 2, queue_limit: int = 64,
                 max_attempts: int = 3,
                 profile_every: int = DEFAULT_PROFILE_EVERY) -> None:
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_attempts = max(1, max_attempts)
        self.queue_limit = max(1, queue_limit)
        self.profile_every = profile_every

        self._lock = threading.Lock()
        self._queue: List[Job] = []
        self._work = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []  # insertion order, for pruning
        self._shutdown = False

        m = self.metrics
        self._submitted = m.counter("jobs_submitted", "requests accepted")
        self._coalesced = m.counter(
            "jobs_coalesced", "submissions attached to an in-flight job")
        self._rejected = m.counter(
            "jobs_rejected", "submissions refused by the full queue")
        self._completed = m.counter("jobs_completed", "jobs finished done")
        self._failed = m.counter("jobs_failed", "jobs finished failed")
        self._cancelled = m.counter("jobs_cancelled", "jobs cancelled")
        self._retried = m.counter(
            "jobs_retried", "fresh-seed retries after retryable failures")
        self._degraded = m.counter(
            "jobs_degraded", "jobs that returned best-so-far on deadline")
        self._warm = m.counter(
            "jobs_warm_started", "jobs seeded from a cached shape snapshot")
        self._queue_depth = m.gauge("queue_depth", "jobs waiting to run")
        self._in_flight = m.gauge("jobs_in_flight", "jobs currently running")
        self._job_seconds = m.histogram(
            "job_seconds", "wall-clock seconds per executed job")

        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-service-worker-{index}",
                             daemon=True)
            for index in range(max(1, workers))]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------ lifecycle

    def submit(self, request: AllocateRequest) \
            -> Tuple[Job, Optional[bytes]]:
        """Queue a request; returns ``(job, cached_payload)``.

        When the exact key is already cached the returned job is a
        synthetic already-done record and ``cached_payload`` holds the
        byte-identical stored result; nothing is queued.
        """
        key = request_key(request)
        job_id = job_id_for(key)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                job = Job(id=job_id, key=key, shape_key=warm_key(request),
                          request=request, status=DONE)
                job.finished_at = job.started_at = job.submitted_at
                job.done_event.set()
                with self._lock:
                    self._remember(job)
                return job, cached

        with self._lock:
            if self._shutdown:
                raise QueueFullError("job manager is shut down")
            existing = self._jobs.get(job_id)
            if existing is not None and existing.status in (QUEUED, RUNNING):
                self._coalesced.inc()
                return existing, None
            if len(self._queue) >= self.queue_limit:
                self._rejected.inc()
                raise QueueFullError(
                    f"queue is full ({self.queue_limit} jobs waiting)")
            job = Job(id=job_id, key=key, shape_key=warm_key(request),
                      request=request)
            self._remember(job)
            self._queue.append(job)
            self._queue_depth.set(len(self._queue))
            self._submitted.inc()
            self._work.notify()
        return job, None

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no job {job_id!r}")
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job (no-op once it finished)."""
        job = self.get(job_id)
        with self._lock:
            if job.status == QUEUED and job in self._queue:
                self._queue.remove(job)
                self._queue_depth.set(len(self._queue))
                self._finish(job, CANCELLED)
                return job
        job.cancel_event.set()
        return job

    def shutdown(self, wait: bool = True, timeout: float = 10.0) -> None:
        with self._lock:
            self._shutdown = True
            for job in self._queue:
                self._finish(job, CANCELLED)
            self._queue.clear()
            self._queue_depth.set(0)
            self._work.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)

    # ------------------------------------------------------------- internals

    def _remember(self, job: Job) -> None:
        # caller holds self._lock
        if job.id not in self._jobs:
            self._order.append(job.id)
        self._jobs[job.id] = job
        while len(self._order) > RETAINED_JOBS:
            oldest = self._order.pop(0)
            stale = self._jobs.get(oldest)
            if stale is not None and stale.status in (QUEUED, RUNNING):
                self._order.append(oldest)  # never drop live jobs
                break
            self._jobs.pop(oldest, None)

    def _finish(self, job: Job, status: str) -> None:
        job.status = status
        job.finished_at = time.time()
        job.done_event.set()
        if status == DONE:
            self._completed.inc()
        elif status == FAILED:
            self._failed.inc()
        elif status == CANCELLED:
            self._cancelled.inc()

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._shutdown:
                    self._work.wait()
                if self._shutdown and not self._queue:
                    return
                job = self._queue.pop(0)
                self._queue_depth.set(len(self._queue))
                job.status = RUNNING
                job.started_at = time.time()
                self._in_flight.inc()
            try:
                self._execute(job)
            finally:
                self._in_flight.dec()

    def _execute(self, job: Job) -> None:
        request = job.request
        started = time.monotonic()
        deadline = None
        if request.deadline_ms is not None:
            deadline = started + request.deadline_ms / 1000.0

        def should_stop() -> bool:
            if job.cancel_event.is_set():
                return True
            return deadline is not None and time.monotonic() >= deadline

        last_error: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            if should_stop() and job.cancel_event.is_set():
                self._finish(job, CANCELLED)
                return
            job.attempts = attempt + 1
            try:
                result = self._run_search(job, attempt, should_stop)
                break
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                last_error = exc
                out_of_time = should_stop()
                if (is_retryable(exc) and attempt + 1 < self.max_attempts
                        and not out_of_time):
                    self._retried.inc()
                    continue
                job.error = f"{type(exc).__name__}: {exc}"
                job.error_kind = type(exc).__name__
                self._finish(job, FAILED)
                self._job_seconds.observe(time.monotonic() - started)
                return
        else:  # pragma: no cover - loop always breaks or returns
            raise AssertionError(f"retry loop fell through: {last_error}")

        if job.cancel_event.is_set():
            self._finish(job, CANCELLED)
            self._job_seconds.observe(time.monotonic() - started)
            return

        job.result = result
        self._observe_phases(result)
        if result["degraded"]:
            self._degraded.inc()
        if self.cache is not None:
            # degraded/warm-started answers depend on the deadline or on
            # whatever the warm store held — only full-fidelity results
            # are publishable under the exact key
            if not result["degraded"] and not result["warm_started"]:
                self.cache.put(job.key,
                               canonical_dumps(result).encode("utf-8"))
            # the warm store holds the compact array payload: decoding it
            # rebuilds flat integer columns, never per-op/per-segment
            # Python object graphs
            warm_blob = job.warm_payload or canonical_dumps(
                result["best_state"]).encode("utf-8")
            self.cache.put("warm_" + job.shape_key, warm_blob)
        self._finish(job, DONE)
        self._job_seconds.observe(time.monotonic() - started)

    # ------------------------------------------------------------ the search

    def _allocator(self, request: AllocateRequest, attempt: int):
        seed = request.seed if attempt == 0 else \
            SeedStream(request.seed).child(0xDEAD, attempt)
        config = ImproveConfig(**request.improve)
        if request.model == "traditional":
            return TraditionalAllocator(seed=seed, restarts=request.restarts,
                                        weights=request.weights,
                                        config=config)
        return SalsaAllocator(seed=seed, restarts=request.restarts,
                              weights=request.weights, config=config)

    def _warm_state(self, job: Job) -> Optional[Mapping[str, Any]]:
        if not job.request.warm_start or self.cache is None:
            return None
        payload = self.cache.get("warm_" + job.shape_key)
        if payload is None:
            return None
        import json as _json
        try:
            data = _json.loads(payload.decode("utf-8"))
            if isinstance(data, dict) and \
                    data.get("format") == PAYLOAD_FORMAT:
                return CompactState.from_payload(data)
            # legacy name-keyed snapshot left by an older server build
            return decode_state(data)
        except (ValueError, KeyError, TypeError):
            return None  # torn/old snapshot: fall back to a cold start

    def _run_search(self, job: Job, attempt: int,
                    should_stop) -> Dict[str, Any]:
        request = job.request
        allocator = self._allocator(request, attempt)
        schedule, restart_jobs = allocator.prepare_jobs(
            request.graph, spec=request.spec, length=request.length,
            fu_counts=request.fu_counts, registers=request.registers)

        warm_state = self._warm_state(job)
        if warm_state is not None:
            self._warm.inc()

        restart_jobs = [
            replace(rjob,
                    warm_state=warm_state,
                    configs=tuple(
                        replace(config, should_stop=should_stop,
                                profile_every=self.profile_every)
                        for config in rjob.configs))
            for rjob in restart_jobs]

        if request.engine == "anneal":
            outcomes = self._run_anneal_restarts(request, restart_jobs,
                                                 should_stop)
        else:
            outcomes = []
            for rjob in restart_jobs:
                outcomes.append(run_restart(rjob))
                if should_stop():
                    break  # remaining restarts are skipped: degraded

        best = best_outcome(outcomes)
        binding = rebuild_binding(restart_jobs[best.index], best)
        # even a degraded best-so-far answer must be a *legal* allocation
        assert_legal(binding)
        job.warm_payload = canonical_dumps(
            binding.clone_state().to_payload()).encode("utf-8")

        all_stats: List[ImproveStats] = \
            [s for outcome in outcomes for s in outcome.stats]
        skipped = len(restart_jobs) - len(outcomes)
        degraded = skipped > 0 or any(s.stopped_early for s in all_stats)
        return {
            "key": job.key,
            "engine": request.engine,
            "model": request.model,
            "schedule_label": schedule.label,
            "schedule_length": schedule.length,
            "degraded": degraded,
            "warm_started": warm_state is not None,
            "restarts_requested": len(restart_jobs),
            "restarts_run": len(outcomes),
            "best_restart": best.index,
            "cost": self._cost_to_dict(best.cost),
            "binding": binding_to_dict(binding),
            "best_state": encode_state(binding.clone_state()),
            "telemetry": telemetry_report(all_stats),
            "search_seconds": sum(o.seconds for o in outcomes),
        }

    def _run_anneal_restarts(self, request: AllocateRequest,
                             restart_jobs: List[RestartJob],
                             should_stop) -> List[RestartOutcome]:
        """Annealing engine: same restart fan-in, ``anneal()`` per trial."""
        move_set = MoveSet.traditional() \
            if request.model == "traditional" else MoveSet()
        outcomes = []
        for rjob in restart_jobs:
            started = time.perf_counter()
            binding = initial_allocation(
                rjob.schedule, list(rjob.fus), list(rjob.regs),
                weights=rjob.weights, allow_split=rjob.allow_split)
            if rjob.warm_state is not None:
                binding.restore_state(rjob.warm_state)
            config = AnnealConfig(move_set=move_set,
                                  seed=rjob.configs[-1].seed,
                                  should_stop=should_stop,
                                  **request.anneal)
            stats = anneal(binding, config)
            outcomes.append(RestartOutcome(
                index=rjob.index, state=binding.clone_state(),
                cost=binding.cost(), stats=[stats],
                seconds=time.perf_counter() - started))
            if should_stop():
                break
        return outcomes

    # ------------------------------------------------------------- reporting

    @staticmethod
    def _cost_to_dict(cost) -> Dict[str, Any]:
        return {"total": cost.total, "fu_count": cost.fu_count,
                "fu_area": cost.fu_area,
                "register_count": cost.register_count,
                "mux_count": cost.mux_count, "wire_count": cost.wire_count}

    def _observe_phases(self, result: Dict[str, Any]) -> None:
        """Feed sampled per-phase ns totals into latency histograms."""
        telemetry = result.get("telemetry", {})
        phase_ns = telemetry.get("phase_ns", {})
        phase_samples = telemetry.get("phase_samples", {})
        for phase, total_ns in phase_ns.items():
            samples = phase_samples.get(phase, 0)
            if samples > 0:
                self.metrics.histogram(
                    f"phase_us_{phase}",
                    f"sampled µs per {phase} step",
                    buckets=(1, 2, 5, 10, 25, 50, 100, 250, 500,
                             1000, 5000)).observe(
                    total_ns / samples / 1000.0)
