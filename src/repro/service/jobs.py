"""Async job orchestration over the allocation engines.

A :class:`JobManager` owns a bounded FIFO queue, a small pool of
orchestrator *threads*, and — in ``worker_mode="process"`` — a shared
:class:`~concurrent.futures.ProcessPoolExecutor` the orchestrators fan
restart jobs out to.  Process mode is the default for the served stack
(one CPU-bound search no longer starves the node: the GIL is released
while an orchestrator waits on its futures), while thread mode remains
for embedding and for platforms without the fork start method.

Each job runs the restart loop of one
:class:`~repro.service.codec.AllocateRequest` through
:func:`repro.core.parallel.run_restart` (or the annealing twin
:func:`run_anneal_restart`) and ends in exactly one of:

* **done** — full-fidelity result, written through to the exact-key cache;
* **done, degraded** — the deadline fired mid-search: the response is the
  checker-validated best-so-far binding plus telemetry, marked
  ``degraded: true`` and *not* cached (a later undeadlined request must
  not inherit a truncated answer);
* **cancelled** — every coalesced waiter gave up; nothing is returned or
  cached;
* **failed** — a fatal error, or a retryable one that survived
  ``max_attempts`` fresh-seed retries.

Cross-process cancellation/deadlines ride a picklable
:class:`~repro.core.parallel.StopSignal` instead of a live closure: the
deadline is an absolute monotonic instant (system-wide under fork), and
cancellation is a per-job sentinel *flag file* the manager touches — the
worker's cooperative ``should_stop`` check stats it every few dozen
moves.  All duration/latency figures (queue age, run seconds) are
computed from ``time.monotonic()`` stamps; the wall-clock
``submitted_at``/``started_at``/``finished_at`` fields exist only for
display and are never subtracted from one another.

Duplicate in-flight submissions coalesce onto one job and are
*refcounted*: a cancel detaches one waiter, and only the last waiter's
cancel stops the underlying search.

Same-shape requests adjacent in the queue are claimed as one batch by a
single orchestrator: they share a memoized schedule resolution and their
restarts enter the process pool as one dispatch wave.

Retry policy rides on :mod:`repro.verify.classify`: a
:class:`~repro.verify.sanitizer.SanitizerError` or worker-pool breakage
gets a fresh seed (derived via :class:`repro.rng.SeedStream`, never
reusing the failed trajectory); deterministic
:class:`~repro.errors.ReproError`\\ s fail immediately.

Warm starts: every successful job publishes its winning decision-state
snapshot under ``warm_<shape-key>``; a request with ``warm_start: true``
whose exact key misses but whose shape key hits restores that snapshot on
top of the constructive initial allocation before searching.  Warm-started
results are themselves kept out of the exact-key cache, because their
content depends on what happened to be in the warm store.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor, \
    wait as wait_futures
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import ReproError
from repro.alloc.checker import assert_legal
from repro.core.arraystate import PAYLOAD_FORMAT, CompactState
from repro.core.allocator import SalsaAllocator, TraditionalAllocator
from repro.core.anneal import AnnealConfig, anneal
from repro.core.improve import ImproveConfig, ImproveStats
from repro.core.initial import initial_allocation
from repro.core.moves import MoveSet
from repro.core.parallel import (RestartJob, RestartOutcome, StopSignal,
                                 _fork_context, best_outcome,
                                 rebuild_binding, run_restart)
from repro.rng import SeedStream
from repro.sched.schedule import Schedule
from repro.io.json_io import binding_to_dict, canonical_dumps
from repro.verify.classify import is_retryable
from repro.verify.sanitizer import decode_state, encode_state
from repro.analysis.stats import telemetry_report
from repro.service.cache import TieredCache
from repro.service.codec import (AllocateRequest, job_id_for, request_key,
                                 warm_key)
from repro.service.metrics import MetricsRegistry

#: job states
QUEUED, RUNNING, DONE, FAILED, CANCELLED = \
    "queued", "running", "done", "failed", "cancelled"

#: worker execution modes
THREAD_MODE, PROCESS_MODE = "thread", "process"

#: default propose/evaluate/rollback sampling density fed into the
#: per-phase latency histograms (0 disables; sampling never changes
#: search results, only telemetry)
DEFAULT_PROFILE_EVERY = 64

#: completed jobs retained for GET /jobs/<id> after they finish
RETAINED_JOBS = 1024

#: most queued same-shape jobs one orchestrator claims as a batch
DEFAULT_BATCH_LIMIT = 4

#: memoized schedule resolutions kept per manager (keyed by shape key)
SCHEDULE_MEMO_SIZE = 32


class QueueFullError(ReproError):
    """The job queue is at capacity; the caller should back off."""


class JobNotFoundError(ReproError):
    """No job with the requested ID (expired or never submitted)."""


def resolve_worker_mode(mode: str) -> str:
    """Validate a worker mode; process mode falls back where fork is
    unavailable (Windows, some sandboxes) so the manager always starts."""
    if mode not in (THREAD_MODE, PROCESS_MODE):
        raise ValueError(f"unknown worker mode {mode!r} "
                         f"(expected {THREAD_MODE!r} or {PROCESS_MODE!r})")
    if mode == PROCESS_MODE and _fork_context() is None:
        return THREAD_MODE
    return mode


@dataclass
class Job:
    """One submitted allocation request and its lifecycle."""

    id: str
    key: str
    shape_key: str
    request: AllocateRequest
    status: str = QUEUED
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    error_kind: Optional[str] = None
    attempts: int = 0
    #: coalesced submissions currently waiting on this job; the underlying
    #: search is only cancelled when the *last* waiter cancels
    waiters: int = 1
    # wall-clock stamps, for display only — durations must never be
    # derived from these (a clock step makes them negative or jumpy)
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    # monotonic stamps — the only clock durations are computed from
    submitted_mono: float = field(default_factory=time.monotonic)
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None
    #: absolute monotonic deadline of the current execution (None when the
    #: request carries no ``deadline_ms``)
    deadline_mono: Optional[float] = None
    done_event: threading.Event = field(default_factory=threading.Event)
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: compact warm snapshot of the winning state
    #: (``CompactState.to_payload`` as canonical JSON), published to the
    #: warm store when the job finishes; internal, never in ``describe()``
    warm_payload: Optional[bytes] = field(default=None, repr=False)

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self.done_event.wait(timeout)

    def queue_seconds(self) -> Optional[float]:
        """Monotonic queue age (``None`` until the job starts)."""
        if self.started_mono is None:
            return None
        return max(0.0, self.started_mono - self.submitted_mono)

    def run_seconds(self) -> Optional[float]:
        """Monotonic execution time so far (``None`` until it starts)."""
        if self.started_mono is None:
            return None
        end = self.finished_mono if self.finished_mono is not None \
            else time.monotonic()
        return max(0.0, end - self.started_mono)

    def describe(self) -> Dict[str, Any]:
        """JSON-able job status (without the result payload)."""
        return {
            "job_id": self.id,
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "waiters": self.waiters,
            "error": self.error,
            "error_kind": self.error_kind,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_seconds": self.queue_seconds(),
            "run_seconds": self.run_seconds(),
        }


def run_anneal_restart(job: RestartJob, overrides: Mapping[str, Any],
                       model: str) -> RestartOutcome:
    """Annealing twin of :func:`repro.core.parallel.run_restart`.

    Module-level and built only from picklable pieces, so process-mode
    managers can ship it to pool workers; the cooperative stop condition
    rides in ``job.configs[-1].should_stop`` (a live closure in thread
    mode, a :class:`~repro.core.parallel.StopSignal` across processes).
    """
    started = time.perf_counter()
    move_set = MoveSet.traditional() if model == "traditional" else MoveSet()
    binding = initial_allocation(
        job.schedule, list(job.fus), list(job.regs),
        weights=job.weights, allow_split=job.allow_split)
    if job.warm_state is not None:
        binding.restore_state(job.warm_state)
    config = AnnealConfig(move_set=move_set,
                          seed=job.configs[-1].seed,
                          should_stop=job.configs[-1].should_stop,
                          **overrides)
    stats = anneal(binding, config)
    return RestartOutcome(index=job.index, state=binding.clone_state(),
                          cost=binding.cost(), stats=[stats],
                          seconds=time.perf_counter() - started)


class JobManager:
    """Bounded-queue executor for allocation requests.

    ``worker_mode="thread"`` runs searches on the orchestrator threads
    themselves (the pre-existing embedded behaviour);
    ``worker_mode="process"`` turns the orchestrators into dispatchers
    that fan every restart out to a shared fork-based process pool, with
    deadlines and cancellation crossing the boundary as a
    :class:`~repro.core.parallel.StopSignal`.
    """

    def __init__(self, cache: Optional[TieredCache] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 workers: int = 2, queue_limit: int = 64,
                 max_attempts: int = 3,
                 profile_every: int = DEFAULT_PROFILE_EVERY,
                 worker_mode: str = THREAD_MODE,
                 batch_limit: int = DEFAULT_BATCH_LIMIT) -> None:
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_attempts = max(1, max_attempts)
        self.queue_limit = max(1, queue_limit)
        self.profile_every = profile_every
        self.workers = max(1, workers)
        self.worker_mode = resolve_worker_mode(worker_mode)
        self.batch_limit = max(1, batch_limit)

        self._lock = threading.Lock()
        self._queue: List[Job] = []
        self._work = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []  # insertion order, for pruning
        self._shutdown = False
        self._schedule_memo: "OrderedDict[str, Schedule]" = OrderedDict()

        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._signal_dir: Optional[str] = None
        if self.worker_mode == PROCESS_MODE:
            self._signal_dir = tempfile.mkdtemp(prefix="repro-service-stop-")
            # create the pool *before* the orchestrator threads exist: the
            # fork happens while this process is still single-threaded,
            # which sidesteps forking-with-held-locks hazards
            self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                             mp_context=_fork_context())

        m = self.metrics
        self._submitted = m.counter("jobs_submitted", "requests accepted")
        self._coalesced = m.counter(
            "jobs_coalesced", "submissions attached to an in-flight job")
        self._rejected = m.counter(
            "jobs_rejected", "submissions refused by the full queue")
        self._completed = m.counter("jobs_completed", "jobs finished done")
        self._failed = m.counter("jobs_failed", "jobs finished failed")
        self._cancelled = m.counter("jobs_cancelled", "jobs cancelled")
        self._cancel_detached = m.counter(
            "jobs_cancel_detached",
            "coalesced waiters that gave up while others kept waiting")
        self._retried = m.counter(
            "jobs_retried", "fresh-seed retries after retryable failures")
        self._degraded = m.counter(
            "jobs_degraded", "jobs that returned best-so-far on deadline")
        self._warm = m.counter(
            "jobs_warm_started", "jobs seeded from a cached shape snapshot")
        self._batched = m.counter(
            "jobs_batched",
            "queued same-shape jobs claimed alongside a batch leader")
        self._memo_hits = m.counter(
            "schedule_memo_hits",
            "jobs that reused a memoized schedule resolution")
        self._queue_depth = m.gauge("queue_depth", "jobs waiting to run")
        self._in_flight = m.gauge("jobs_in_flight", "jobs currently running")
        self._job_seconds = m.histogram(
            "job_seconds", "monotonic seconds per executed job")
        self._queue_seconds = m.histogram(
            "queue_seconds", "monotonic seconds a job waited in the queue")
        self._clock_ns = m.histogram(
            "clock_period_ns",
            "analyzed critical-path clock period of delivered bindings (ns)",
            buckets=(1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 7.5, 10.0))

        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-service-worker-{index}",
                             daemon=True)
            for index in range(self.workers)]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------ lifecycle

    def submit(self, request: AllocateRequest) \
            -> Tuple[Job, Optional[bytes]]:
        """Queue a request; returns ``(job, cached_payload)``.

        When the exact key is already cached the returned job is a
        synthetic already-done record and ``cached_payload`` holds the
        byte-identical stored result; nothing is queued.
        """
        key = request_key(request)
        job_id = job_id_for(key)
        if self.cache is not None and request.cache_ok:
            cached = self.cache.get(key)
            if cached is not None:
                job = Job(id=job_id, key=key, shape_key=warm_key(request),
                          request=request, status=DONE)
                job.finished_at = job.started_at = job.submitted_at
                job.finished_mono = job.started_mono = job.submitted_mono
                job.done_event.set()
                with self._lock:
                    self._remember(job)
                return job, cached

        with self._lock:
            if self._shutdown:
                raise QueueFullError("job manager is shut down")
            existing = self._jobs.get(job_id)
            if existing is not None and existing.status in (QUEUED, RUNNING):
                existing.waiters += 1
                self._coalesced.inc()
                return existing, None
            if len(self._queue) >= self.queue_limit:
                self._rejected.inc()
                raise QueueFullError(
                    f"queue is full ({self.queue_limit} jobs waiting)")
            job = Job(id=job_id, key=key, shape_key=warm_key(request),
                      request=request)
            self._remember(job)
            self._queue.append(job)
            self._queue_depth.set(len(self._queue))
            self._submitted.inc()
            self._work.notify()
        return job, None

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no job {job_id!r}")
        return job

    def cancel(self, job_id: str) -> Job:
        """Detach one waiter; cancel the job when it was the last one.

        Duplicate submissions coalesce onto a single job, so one client's
        cancel must not kill every other waiter's request: the job is only
        cancelled when its waiter refcount reaches zero.  No-op once the
        job finished.
        """
        job = self.get(job_id)
        with self._lock:
            if job.status not in (QUEUED, RUNNING):
                return job
            if job.waiters > 1:
                job.waiters -= 1
                self._cancel_detached.inc()
                return job
            job.waiters = 0
            if job.status == QUEUED and job in self._queue:
                # the queued path must latch cancel_event too: duplicate
                # submissions still coalesce onto this job until _finish
                # publishes its terminal state, and waiters (plus the
                # coalesced-cancel refcount logic) read the event to tell
                # "cancelled for real" from "merely detached"
                job.cancel_event.set()
                self._queue.remove(job)
                self._queue_depth.set(len(self._queue))
                self._finish(job, CANCELLED)
                return job
        job.cancel_event.set()
        # wake any process workers promptly; the orchestrator re-touches
        # the flag in its wait loop, so this is belt-and-braces
        self._signal_stop(job)
        return job

    def shutdown(self, wait: bool = True, timeout: float = 10.0) -> None:
        with self._lock:
            self._shutdown = True
            for job in self._queue:
                self._finish(job, CANCELLED)
            self._queue.clear()
            self._queue_depth.set(0)
            self._work.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)
        if self._signal_dir is not None:
            shutil.rmtree(self._signal_dir, ignore_errors=True)

    # --------------------------------------------------- process-mode seams

    def _flag_path(self, job: Job) -> Optional[str]:
        if self._signal_dir is None:
            return None
        return os.path.join(self._signal_dir, f"{job.id}.stop")

    def _signal_stop(self, job: Job) -> None:
        """Touch the job's stop flag so pool workers see the cancel."""
        path = self._flag_path(job)
        if path is None:
            return
        try:
            with open(path, "wb"):
                pass
        except OSError:
            pass  # the parent-side checks still stop the orchestrator

    def _clear_stop(self, job: Job) -> None:
        path = self._flag_path(job)
        if path is None:
            return
        try:
            os.unlink(path)
        except OSError:
            pass

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=_fork_context())
            return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Drop a broken pool so the next attempt gets a fresh one."""
        with self._pool_lock:
            if self._pool is pool:
                self._pool = None
        pool.shutdown(wait=False)

    def _collect_outcomes(self, job: Job,
                          futures: List["Future[RestartOutcome]"]) \
            -> List[RestartOutcome]:
        """Await pool futures while observing cancel/deadline state.

        On client cancel every pending future is cancelled (no answer is
        owed).  On deadline, pending futures are cancelled *except* the
        first live one, so at least one restart completes and a legal
        degraded best-so-far answer exists; started workers stop
        cooperatively via their :class:`StopSignal`.
        """
        pending: Set["Future[RestartOutcome]"] = set(futures)
        signalled = False
        while pending:
            done, pending = wait_futures(pending, timeout=0.05)
            if not pending:
                break
            if job.cancel_event.is_set():
                if not signalled:
                    self._signal_stop(job)
                    signalled = True
                for future in list(pending):
                    if future.cancel():
                        pending.discard(future)
            elif job.deadline_mono is not None \
                    and time.monotonic() >= job.deadline_mono:
                protected = next(
                    (f for f in futures if not f.cancelled()), None)
                for future in list(pending):
                    if future is not protected and future.cancel():
                        pending.discard(future)
        return [future.result() for future in futures
                if not future.cancelled()]

    def _dispatch_restarts(self, job: Job, restart_jobs: List[RestartJob],
                           should_stop: Callable[[], bool],
                           fn: Callable[..., RestartOutcome],
                           extra: Tuple[Any, ...] = ()) \
            -> List[RestartOutcome]:
        """Run restarts in-thread, or as one process-pool dispatch wave."""
        if self.worker_mode == PROCESS_MODE:
            pool = self._ensure_pool()
            try:
                futures = [pool.submit(fn, rjob, *extra)
                           for rjob in restart_jobs]
                return self._collect_outcomes(job, futures)
            except BrokenExecutor:
                self._discard_pool(pool)
                raise
        outcomes = []
        for rjob in restart_jobs:
            outcomes.append(fn(rjob, *extra))
            if should_stop():
                break  # remaining restarts are skipped: degraded
        return outcomes

    # ------------------------------------------------------------- internals

    def _remember(self, job: Job) -> None:
        # caller holds self._lock
        if job.id not in self._jobs:
            self._order.append(job.id)
        self._jobs[job.id] = job
        while len(self._order) > RETAINED_JOBS:
            oldest = self._order.pop(0)
            stale = self._jobs.get(oldest)
            if stale is not None and stale.status in (QUEUED, RUNNING):
                self._order.append(oldest)  # never drop live jobs
                break
            self._jobs.pop(oldest, None)

    def _finish(self, job: Job, status: str) -> None:
        job.status = status
        job.finished_at = time.time()
        job.finished_mono = time.monotonic()
        self._clear_stop(job)
        if status == DONE:
            self._completed.inc()
        elif status == FAILED:
            self._failed.inc()
        elif status == CANCELLED:
            self._cancelled.inc()
        # last: anyone woken by the event must see final stamps + counters
        job.done_event.set()

    def _claim_batch(self) -> List[Job]:
        """Pop the head job plus queued same-shape followers (lock held).

        Batch members share one schedule resolution and their restarts
        reach the process pool as a single dispatch wave, which is how
        bursts of same-shape requests (a design-space sweep, a retry
        storm) avoid re-resolving the problem N times.
        """
        head = self._queue.pop(0)
        batch = [head]
        index = 0
        while index < len(self._queue) and len(batch) < self.batch_limit:
            if self._queue[index].shape_key == head.shape_key:
                batch.append(self._queue.pop(index))
            else:
                index += 1
        if len(batch) > 1:
            self._batched.inc(len(batch) - 1)
        return batch

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._shutdown:
                    self._work.wait()
                if self._shutdown and not self._queue:
                    return
                batch = self._claim_batch()
                self._queue_depth.set(len(self._queue))
            for job in batch:
                job.status = RUNNING
                job.started_at = time.time()
                job.started_mono = time.monotonic()
                self._queue_seconds.observe(job.queue_seconds() or 0.0)
                self._in_flight.inc()
                try:
                    self._execute(job)
                finally:
                    self._in_flight.dec()

    def _execute(self, job: Job) -> None:
        request = job.request
        started = job.started_mono if job.started_mono is not None \
            else time.monotonic()
        job.deadline_mono = None
        if request.deadline_ms is not None:
            job.deadline_mono = started + request.deadline_ms / 1000.0
        deadline = job.deadline_mono

        def should_stop() -> bool:
            if job.cancel_event.is_set():
                return True
            return deadline is not None and time.monotonic() >= deadline

        last_error: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            if job.cancel_event.is_set():
                self._finish(job, CANCELLED)
                return
            job.attempts = attempt + 1
            try:
                result = self._run_search(job, attempt, should_stop)
                break
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                if job.cancel_event.is_set():
                    # the search unwound because the last waiter gave up;
                    # whatever it threw on the way out is not an error
                    self._finish(job, CANCELLED)
                    self._job_seconds.observe(time.monotonic() - started)
                    return
                last_error = exc
                out_of_time = should_stop()
                if (is_retryable(exc) and attempt + 1 < self.max_attempts
                        and not out_of_time):
                    self._retried.inc()
                    continue
                job.error = f"{type(exc).__name__}: {exc}"
                job.error_kind = type(exc).__name__
                self._finish(job, FAILED)
                self._job_seconds.observe(time.monotonic() - started)
                return
        else:  # pragma: no cover - loop always breaks or returns
            raise AssertionError(f"retry loop fell through: {last_error}")

        if job.cancel_event.is_set():
            self._finish(job, CANCELLED)
            self._job_seconds.observe(time.monotonic() - started)
            return

        job.result = result
        self._observe_phases(result)
        if result["degraded"]:
            self._degraded.inc()
        if self.cache is not None and request.cache_ok:
            # degraded/warm-started answers depend on the deadline or on
            # whatever the warm store held — only full-fidelity results
            # are publishable under the exact key
            if not result["degraded"] and not result["warm_started"]:
                self.cache.put(job.key,
                               canonical_dumps(result).encode("utf-8"))
            # the warm store holds the compact array payload: decoding it
            # rebuilds flat integer columns, never per-op/per-segment
            # Python object graphs
            warm_blob = job.warm_payload or canonical_dumps(
                result["best_state"]).encode("utf-8")
            self.cache.put("warm_" + job.shape_key, warm_blob)
        self._finish(job, DONE)
        self._job_seconds.observe(time.monotonic() - started)

    # ------------------------------------------------------------ the search

    def _allocator(self, request: AllocateRequest, attempt: int):
        seed = request.seed if attempt == 0 else \
            SeedStream(request.seed).child(0xDEAD, attempt)
        config = ImproveConfig(**request.improve)
        if request.model == "traditional":
            return TraditionalAllocator(seed=seed, restarts=request.restarts,
                                        weights=request.weights,
                                        config=config)
        return SalsaAllocator(seed=seed, restarts=request.restarts,
                              weights=request.weights, config=config)

    def _warm_state(self, job: Job) -> Optional[Mapping[str, Any]]:
        if not job.request.warm_start or self.cache is None:
            return None
        payload = self.cache.get("warm_" + job.shape_key)
        if payload is None:
            return None
        import json as _json
        try:
            data = _json.loads(payload.decode("utf-8"))
            if isinstance(data, dict) and \
                    data.get("format") == PAYLOAD_FORMAT:
                return CompactState.from_payload(data)
            # legacy name-keyed snapshot left by an older server build
            return decode_state(data)
        except (ValueError, KeyError, TypeError):
            return None  # torn/old snapshot: fall back to a cold start

    def _memo_schedule(self, shape_key: str) -> Optional[Schedule]:
        with self._lock:
            schedule = self._schedule_memo.get(shape_key)
            if schedule is not None:
                self._schedule_memo.move_to_end(shape_key)
                self._memo_hits.inc()
            return schedule

    def _remember_schedule(self, shape_key: str,
                           schedule: Schedule) -> None:
        with self._lock:
            self._schedule_memo[shape_key] = schedule
            self._schedule_memo.move_to_end(shape_key)
            while len(self._schedule_memo) > SCHEDULE_MEMO_SIZE:
                self._schedule_memo.popitem(last=False)

    def _stop_condition(self, job: Job,
                        should_stop: Callable[[], bool]) \
            -> Callable[[], bool]:
        """The per-move stop check shipped into the search configs.

        Thread mode uses the live closure; process mode needs a picklable
        condition, so workers get a :class:`StopSignal` carrying the
        absolute monotonic deadline plus the job's cancel flag file.
        """
        if self.worker_mode != PROCESS_MODE:
            return should_stop
        return StopSignal(deadline=job.deadline_mono,
                          flag_path=self._flag_path(job))

    def _run_search(self, job: Job, attempt: int,
                    should_stop) -> Dict[str, Any]:
        request = job.request
        allocator = self._allocator(request, attempt)
        schedule, restart_jobs = allocator.prepare_jobs(
            request.graph, schedule=self._memo_schedule(job.shape_key),
            spec=request.spec, length=request.length,
            fu_counts=request.fu_counts, registers=request.registers)
        self._remember_schedule(job.shape_key, schedule)

        warm_state = self._warm_state(job)
        if warm_state is not None:
            self._warm.inc()

        stop_condition = self._stop_condition(job, should_stop)
        restart_jobs = [
            replace(rjob,
                    warm_state=warm_state,
                    configs=tuple(
                        replace(config, should_stop=stop_condition,
                                profile_every=self.profile_every)
                        for config in rjob.configs))
            for rjob in restart_jobs]

        if request.engine == "anneal":
            outcomes = self._dispatch_restarts(
                job, restart_jobs, should_stop, run_anneal_restart,
                extra=(dict(request.anneal), request.model))
        else:
            outcomes = self._dispatch_restarts(
                job, restart_jobs, should_stop, run_restart)

        best = best_outcome(outcomes)
        binding = rebuild_binding(restart_jobs[best.index], best)
        # even a degraded best-so-far answer must be a *legal* allocation
        assert_legal(binding)
        job.warm_payload = canonical_dumps(
            binding.clone_state().to_payload()).encode("utf-8")

        all_stats: List[ImproveStats] = \
            [s for outcome in outcomes for s in outcome.stats]
        skipped = len(restart_jobs) - len(outcomes)
        degraded = skipped > 0 or any(s.stopped_early for s in all_stats)

        # timing-aware requests get the analyzed critical path attached;
        # an unmeetable max_clock_ns makes the (legal, best-effort) answer
        # degraded, which also keeps it out of the exact-key cache
        timing: Optional[Dict[str, Any]] = None
        if request.max_clock_ns is not None or request.weights.latency:
            from repro.timing.sta import analyze_binding
            report = analyze_binding(binding)
            timing = {
                "clock_period_ns": round(report.clock_period_ns, 6),
                "mux_depth_max": report.mux_depth_max,
                "critical_step": report.critical_step,
            }
            if request.max_clock_ns is not None:
                timing["max_clock_ns"] = request.max_clock_ns
                if report.clock_period_ns > request.max_clock_ns:
                    timing["clock_met"] = False
                    degraded = True
                else:
                    timing["clock_met"] = True
        result = {
            "key": job.key,
            "engine": request.engine,
            "model": request.model,
            "schedule_label": schedule.label,
            "schedule_length": schedule.length,
            "degraded": degraded,
            "warm_started": warm_state is not None,
            "restarts_requested": len(restart_jobs),
            "restarts_run": len(outcomes),
            "best_restart": best.index,
            "cost": self._cost_to_dict(best.cost),
            "binding": binding_to_dict(binding),
            "best_state": encode_state(binding.clone_state()),
            "telemetry": telemetry_report(all_stats),
            "search_seconds": sum(o.seconds for o in outcomes),
        }
        if timing is not None:
            result["timing"] = timing
        return result

    # ------------------------------------------------------------- reporting

    @staticmethod
    def _cost_to_dict(cost) -> Dict[str, Any]:
        return {"total": cost.total, "fu_count": cost.fu_count,
                "fu_area": cost.fu_area,
                "register_count": cost.register_count,
                "mux_count": cost.mux_count, "wire_count": cost.wire_count}

    def _observe_phases(self, result: Dict[str, Any]) -> None:
        """Feed sampled per-phase ns totals into latency histograms."""
        timing = result.get("timing")
        if timing is not None:
            # /metricsz critical-path histogram: one sample per delivered
            # timing-analyzed binding
            self._clock_ns.observe(timing["clock_period_ns"])
        telemetry = result.get("telemetry", {})
        phase_ns = telemetry.get("phase_ns", {})
        phase_samples = telemetry.get("phase_samples", {})
        for phase, total_ns in phase_ns.items():
            samples = phase_samples.get(phase, 0)
            if samples > 0:
                self.metrics.histogram(
                    f"phase_us_{phase}",
                    f"sampled µs per {phase} step",
                    buckets=(1, 2, 5, 10, 25, 50, 100, 250, 500,
                             1000, 5000)).observe(
                    total_ns / samples / 1000.0)
