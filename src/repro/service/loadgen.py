"""Concurrent load generation against the service (bench + smoke).

:func:`mutant_requests` builds a deterministic pool of EWF/DCT request
mutants (schedule-length × seed × register-slack variations of the
paper's two benchmarks — the BandMap-style design-space-point workload),
with deliberate repeats so a run exercises the cache, not just the
search.  :func:`run_throughput_bench` drives them from N concurrent
client threads — against a remote URL or an in-process
:class:`~repro.service.server.ServerThread` — and reports sustained
allocations/sec, drop and error counts, latency percentiles and the
server's ``/metricsz`` view of the same window.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.service.client import ServiceClient, ServiceError

#: (bench, schedule length, extra registers) mutant axes; lengths follow
#: the paper's design points (EWF 17/19/21, DCT 10/12)
_EWF_LENGTHS = (17, 19, 21)
_DCT_LENGTHS = (10, 12)


def mutant_requests(count: int, fast: bool = True,
                    deadline_ms: Optional[int] = None) \
        -> List[Dict[str, Any]]:
    """A deterministic pool of *count* EWF/DCT request-body mutants.

    Roughly one request in three repeats an earlier mutant exactly
    (same key), so a concurrent run measures both search throughput and
    cache behaviour.
    """
    budget = {"max_trials": 2, "moves_per_trial": 120} if fast else \
        {"max_trials": 6, "moves_per_trial": 600}
    pool: List[Dict[str, Any]] = []
    variant = 0
    while len(pool) < count:
        # every third request re-issues an earlier one verbatim
        if variant and variant % 3 == 2 and pool:
            pool.append(dict(pool[(variant // 3) % len(pool)]))
            variant += 1
            continue
        if variant % 2 == 0:
            bench, length = "ewf", _EWF_LENGTHS[variant % len(_EWF_LENGTHS)]
        else:
            bench, length = "dct", _DCT_LENGTHS[variant % len(_DCT_LENGTHS)]
        body: Dict[str, Any] = {
            "cdfg": {"bench": bench},
            "length": length,
            "seed": variant // 3,
            "restarts": 1,
            "improve": dict(budget),
        }
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        pool.append(body)
        variant += 1
    return pool[:count]


def run_throughput_bench(url: Optional[str] = None, clients: int = 4,
                         requests_per_client: int = 6, fast: bool = True,
                         server_workers: int = 4,
                         deadline_ms: Optional[int] = None) \
        -> Dict[str, Any]:
    """Drive N concurrent clients; returns the JSON-able bench report."""
    own_server = None
    if url is None:
        from repro.service.server import ServerThread
        own_server = ServerThread(workers=server_workers,
                                  queue_limit=max(64, clients * 8),
                                  persistent_cache=False)
        url = own_server.__enter__()
    try:
        client = ServiceClient(url)
        client.wait_until_healthy()
        total = clients * requests_per_client
        pool = mutant_requests(total, fast=fast, deadline_ms=deadline_ms)
        lock = threading.Lock()
        samples: List[Dict[str, Any]] = []

        def drive(worker_index: int) -> None:
            for slot in range(requests_per_client):
                body = pool[worker_index * requests_per_client + slot]
                issued = time.perf_counter()
                sample: Dict[str, Any] = {"client": worker_index}
                try:
                    response = ServiceClient(url).allocate(body)
                    sample.update({
                        "ok": response.get("status") == "done",
                        "status": response.get("status"),
                        "cached": bool(response.get("cached")),
                        "degraded": bool(response.get("degraded")),
                        "cost": response.get("result", {})
                        .get("cost", {}).get("total"),
                    })
                except (ServiceError, OSError) as exc:
                    sample.update({"ok": False, "status": "error",
                                   "error": str(exc), "cached": False,
                                   "degraded": False})
                sample["seconds"] = time.perf_counter() - issued
                with lock:
                    samples.append(sample)

        threads = [threading.Thread(target=drive, args=(index,),
                                    name=f"bench-client-{index}")
                   for index in range(clients)]
        wall_started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_started

        metrics = client.metricsz(condensed=True)
        raw = client.metricsz()
        completed = [s for s in samples if s["ok"]]
        latencies = sorted(s["seconds"] for s in samples)

        def percentile(q: float) -> Optional[float]:
            if not latencies:
                return None
            index = min(len(latencies) - 1,
                        round(q / 100 * (len(latencies) - 1)))
            return latencies[index]

        report = {
            "workload": {
                "clients": clients,
                "requests_per_client": requests_per_client,
                "total_requests": total,
                "fast_mode": fast,
                "deadline_ms": deadline_ms,
                "benches": sorted({body["cdfg"]["bench"] for body in pool}),
            },
            "outcome": {
                "completed": len(completed),
                "dropped": total - len(samples),
                "errors": sum(1 for s in samples if not s["ok"]),
                "cache_hits": sum(1 for s in samples if s.get("cached")),
                "degraded": sum(1 for s in samples if s.get("degraded")),
            },
            "throughput": {
                "wall_seconds": wall,
                "allocations_per_sec": len(completed) / wall if wall else 0,
                "client_latency_p50_s": percentile(50),
                "client_latency_p90_s": percentile(90),
                "client_latency_max_s": latencies[-1] if latencies else None,
            },
            "server": {
                "cache_hit_rate": metrics["cache"]["hit_rate"],
                "jobs": metrics["jobs"],
                "latency": metrics["latency"],
                "queue_depth_final": raw.get("queue_depth", {}).get("value"),
            },
        }
        return report
    finally:
        if own_server is not None:
            own_server.__exit__(None, None, None)
