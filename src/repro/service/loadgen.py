"""Concurrent load generation against the service (bench + smoke).

:func:`mutant_requests` builds a deterministic pool of EWF/DCT request
mutants (schedule-length × seed × register-slack variations of the
paper's two benchmarks — the BandMap-style design-space-point workload),
with deliberate repeats so a run exercises the cache, not just the
search.  :func:`run_throughput_bench` drives them from N concurrent
client threads — against a remote URL or an in-process
:class:`~repro.service.server.ServerThread` — and reports sustained
allocations/sec, drop and error counts, latency percentiles (p50/p90/p99)
and the server's ``/metricsz`` view of the same window.

:func:`run_saturation_bench` sweeps *offered load*: the same request mix
driven by an increasing number of concurrent clients (tens to hundreds —
clients are cheap blocking threads), recording sustained throughput and
the p50/p99 latency at each level.  The resulting curves are the
service's saturation/tail-latency baseline committed under
``results/service_throughput.json``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.service.client import ServiceClient, ServiceError

#: (bench, schedule length, extra registers) mutant axes; lengths follow
#: the paper's design points (EWF 17/19/21, DCT 10/12)
_EWF_LENGTHS = (17, 19, 21)
_DCT_LENGTHS = (10, 12)


def mutant_requests(count: int, fast: bool = True,
                    deadline_ms: Optional[int] = None,
                    seed_base: int = 0,
                    use_cache: bool = True) -> List[Dict[str, Any]]:
    """A deterministic pool of *count* EWF/DCT request-body mutants.

    Roughly one request in three repeats an earlier mutant exactly
    (same key), so a concurrent run measures both search throughput and
    cache behaviour.  ``use_cache=False`` stamps every body with
    ``"cache": false`` (and ``seed_base`` shifts the seed space), which
    is how the saturation sweep keeps each request an honest search
    instead of a replay of the previous load level.
    """
    budget = {"max_trials": 2, "moves_per_trial": 120} if fast else \
        {"max_trials": 6, "moves_per_trial": 600}
    pool: List[Dict[str, Any]] = []
    variant = 0
    while len(pool) < count:
        # every third request re-issues an earlier one verbatim
        if variant and variant % 3 == 2 and pool:
            pool.append(dict(pool[(variant // 3) % len(pool)]))
            variant += 1
            continue
        if variant % 2 == 0:
            bench, length = "ewf", _EWF_LENGTHS[variant % len(_EWF_LENGTHS)]
        else:
            bench, length = "dct", _DCT_LENGTHS[variant % len(_DCT_LENGTHS)]
        body: Dict[str, Any] = {
            "cdfg": {"bench": bench},
            "length": length,
            "seed": seed_base + variant // 3,
            "restarts": 1,
            "improve": dict(budget),
        }
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        if not use_cache:
            body["cache"] = False
        pool.append(body)
        variant += 1
    return pool[:count]


def zoo_requests(count: int, families: Optional[Sequence[str]] = None,
                 fast: bool = True, deadline_ms: Optional[int] = None,
                 seed_base: int = 0,
                 use_cache: bool = True) -> List[Dict[str, Any]]:
    """A deterministic pool of *count* scenario-zoo request bodies.

    Unlike :func:`mutant_requests` (two fixed benchmarks, so a warm run
    quickly degenerates into cache hits), every zoo body embeds a full
    CDFG + hardware-spec document built from a distinct
    ``(family, seed)`` scenario — honest cache-*miss* traffic whose
    decode, hash and search costs all land on the server.  Every third
    request still repeats an earlier body verbatim so hit paths stay
    covered.
    """
    from repro.bench.zoo import FAMILIES, Scenario
    from repro.io.json_io import cdfg_to_dict, spec_to_dict
    names = sorted(families) if families else sorted(FAMILIES)
    for name in names:
        if name not in FAMILIES:
            raise ValueError(f"unknown zoo family {name!r}")
    budget = {"max_trials": 2, "moves_per_trial": 120} if fast else \
        {"max_trials": 6, "moves_per_trial": 600}
    pool: List[Dict[str, Any]] = []
    variant = 0
    while len(pool) < count:
        if variant % 3 == 2 and pool:
            pool.append(dict(pool[(variant // 3) % len(pool)]))
            variant += 1
            continue
        family = names[variant % len(names)]
        scenario = Scenario.make(
            family, seed=seed_base + variant // len(names))
        body: Dict[str, Any] = {
            "cdfg": cdfg_to_dict(scenario.build()),
            "spec": spec_to_dict(scenario.spec()),
            "seed": seed_base + variant,
            "restarts": 1,
            "improve": dict(budget),
        }
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        if not use_cache:
            body["cache"] = False
        pool.append(body)
        variant += 1
    return pool[:count]


def _drive_clients(url: str, pool: List[Dict[str, Any]], clients: int,
                   requests_per_client: int) \
        -> Dict[str, Any]:
    """Issue the pooled bodies from N concurrent blocking clients."""
    lock = threading.Lock()
    samples: List[Dict[str, Any]] = []

    def drive(worker_index: int) -> None:
        for slot in range(requests_per_client):
            body = pool[worker_index * requests_per_client + slot]
            issued = time.perf_counter()
            sample: Dict[str, Any] = {"client": worker_index}
            try:
                response = ServiceClient(url).allocate(body)
                sample.update({
                    "ok": response.get("status") == "done",
                    "status": response.get("status"),
                    "cached": bool(response.get("cached")),
                    "degraded": bool(response.get("degraded")),
                    "cost": response.get("result", {})
                    .get("cost", {}).get("total"),
                })
            except (ServiceError, OSError) as exc:
                sample.update({"ok": False, "status": "error",
                               "error": str(exc), "cached": False,
                               "degraded": False})
            sample["seconds"] = time.perf_counter() - issued
            with lock:
                samples.append(sample)

    threads = [threading.Thread(target=drive, args=(index,),
                                name=f"bench-client-{index}")
               for index in range(clients)]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return {"samples": samples,
            "wall_seconds": time.perf_counter() - wall_started}


def _percentile(ordered: List[float], q: float) -> Optional[float]:
    if not ordered:
        return None
    index = min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1)))
    return ordered[index]


def run_throughput_bench(url: Optional[str] = None, clients: int = 4,
                         requests_per_client: int = 6, fast: bool = True,
                         server_workers: int = 4,
                         deadline_ms: Optional[int] = None,
                         worker_mode: str = "thread",
                         use_cache: bool = True,
                         seed_base: int = 0,
                         zoo: bool = False,
                         zoo_families: Optional[Sequence[str]] = None) \
        -> Dict[str, Any]:
    """Drive N concurrent clients; returns the JSON-able bench report.

    ``zoo=True`` swaps the EWF/DCT mutant pool for embedded scenario-zoo
    bodies (:func:`zoo_requests`), optionally restricted to
    *zoo_families*.
    """
    own_server = None
    if url is None:
        from repro.service.server import ServerThread
        own_server = ServerThread(workers=server_workers,
                                  queue_limit=max(64, clients * 8),
                                  persistent_cache=False,
                                  worker_mode=worker_mode)
        url = own_server.__enter__()
    try:
        client = ServiceClient(url)
        health = client.wait_until_healthy()
        total = clients * requests_per_client
        if zoo:
            pool = zoo_requests(total, families=zoo_families, fast=fast,
                                deadline_ms=deadline_ms,
                                seed_base=seed_base, use_cache=use_cache)
        else:
            pool = mutant_requests(total, fast=fast,
                                   deadline_ms=deadline_ms,
                                   seed_base=seed_base,
                                   use_cache=use_cache)
        driven = _drive_clients(url, pool, clients, requests_per_client)
        samples = driven["samples"]
        wall = driven["wall_seconds"]

        metrics = client.metricsz(condensed=True)
        raw = client.metricsz()
        completed = [s for s in samples if s["ok"]]
        latencies = sorted(s["seconds"] for s in samples)

        report = {
            "workload": {
                "clients": clients,
                "requests_per_client": requests_per_client,
                "total_requests": total,
                "fast_mode": fast,
                "deadline_ms": deadline_ms,
                "use_cache": use_cache,
                "worker_mode": health.get("worker_mode", worker_mode),
                "server_workers": health.get("workers", server_workers),
                "benches": sorted({body["cdfg"].get("bench",
                                                    body["cdfg"].get("name",
                                                                     "?"))
                                   for body in pool}),
            },
            "outcome": {
                "completed": len(completed),
                "dropped": total - len(samples),
                "errors": sum(1 for s in samples if not s["ok"]),
                "cache_hits": sum(1 for s in samples if s.get("cached")),
                "degraded": sum(1 for s in samples if s.get("degraded")),
            },
            "throughput": {
                "wall_seconds": wall,
                "allocations_per_sec": len(completed) / wall if wall else 0,
                "client_latency_p50_s": _percentile(latencies, 50),
                "client_latency_p90_s": _percentile(latencies, 90),
                "client_latency_p99_s": _percentile(latencies, 99),
                "client_latency_max_s": latencies[-1] if latencies else None,
            },
            "server": {
                "cache_hit_rate": metrics["cache"]["hit_rate"],
                "jobs": metrics["jobs"],
                "latency": metrics["latency"],
                "queue_depth_final": raw.get("queue_depth", {}).get("value"),
            },
        }
        return report
    finally:
        if own_server is not None:
            own_server.__exit__(None, None, None)


def run_saturation_bench(levels: Sequence[int] = (1, 2, 4, 8, 16),
                         requests_per_client: int = 2, fast: bool = True,
                         server_workers: int = 4,
                         worker_mode: str = "process",
                         url: Optional[str] = None) -> Dict[str, Any]:
    """Offered-load sweep: p50/p99 latency and throughput per level.

    Each level drives ``level`` concurrent clients (levels of hundreds
    are fine — a client is one blocking thread) through a
    cache-bypassing request mix (``"cache": false``, fresh seed space per
    level), so every request costs a real search and the curve shows
    where the worker pool saturates rather than how warm the cache is.
    """
    own_server = None
    if url is None:
        from repro.service.server import ServerThread
        own_server = ServerThread(workers=server_workers,
                                  queue_limit=max(64, max(levels) *
                                                  requests_per_client * 2),
                                  persistent_cache=False,
                                  worker_mode=worker_mode)
        url = own_server.__enter__()
    try:
        client = ServiceClient(url)
        health = client.wait_until_healthy()
        curve: List[Dict[str, Any]] = []
        for index, level in enumerate(levels):
            total = level * requests_per_client
            pool = mutant_requests(total, fast=fast, use_cache=False,
                                   seed_base=1000 * (index + 1))
            driven = _drive_clients(url, pool, level, requests_per_client)
            samples = driven["samples"]
            wall = driven["wall_seconds"]
            ok = [s for s in samples if s["ok"]]
            latencies = sorted(s["seconds"] for s in samples)
            curve.append({
                "offered_clients": level,
                "total_requests": total,
                "completed": len(ok),
                "dropped": total - len(samples),
                "errors": sum(1 for s in samples if not s["ok"]),
                "wall_seconds": wall,
                "allocations_per_sec": len(ok) / wall if wall else 0.0,
                "latency_p50_s": _percentile(latencies, 50),
                "latency_p99_s": _percentile(latencies, 99),
                "latency_max_s": latencies[-1] if latencies else None,
            })
        return {
            "worker_mode": health.get("worker_mode", worker_mode),
            "server_workers": health.get("workers", server_workers),
            "requests_per_client": requests_per_client,
            "fast_mode": fast,
            "levels": curve,
        }
    finally:
        if own_server is not None:
            own_server.__exit__(None, None, None)
