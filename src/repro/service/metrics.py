"""Thread-safe counter/gauge/histogram registry for the service layer.

The allocator itself stays dependency-free, so this is a small stdlib-only
metrics kernel rather than a prometheus client: counters and gauges are
plain locked floats, histograms keep fixed bucket counts plus a bounded
reservoir of recent observations for percentile estimates.  A registry
snapshot is a JSON-able dict — exactly what ``GET /metricsz`` returns and
what :func:`repro.analysis.stats.service_report` summarizes.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: default latency buckets in seconds (sub-ms cache hits up to multi-minute
#: full searches)
DEFAULT_BUCKETS = (0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)

#: how many recent observations a histogram keeps for percentile estimates
RESERVOIR_SIZE = 2048


class Counter:
    """A monotonically increasing tally."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value, "help": self.help}


class Gauge:
    """A value that can go up and down (queue depth, jobs in flight)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value, "help": self.help}


class Histogram:
    """Fixed-bucket histogram with reservoir-backed percentile estimates.

    Buckets are cumulative upper bounds (prometheus-style ``le``); the
    reservoir holds the most recent :data:`RESERVOIR_SIZE` observations in
    a ring, which is plenty for the p50/p90/p99 of a serving window.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError(f"histogram {self.name!r} needs buckets")
        self._lock = threading.Lock()
        self._bucket_counts = [0] * (len(self.bounds) + 1)  # +inf overflow
        self._count = 0
        self._sum = 0.0
        self._ring: List[float] = []
        self._ring_next = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._bucket_counts[bisect_left(self.bounds, value)] += 1
            self._count += 1
            self._sum += value
            if len(self._ring) < RESERVOIR_SIZE:
                self._ring.append(value)
            else:
                self._ring[self._ring_next] = value
                self._ring_next = (self._ring_next + 1) % RESERVOIR_SIZE

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, q: float) -> Optional[float]:
        """Estimated q-th percentile (0..100) over the reservoir window."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if not self._ring:
                return None
            ordered = sorted(self._ring)
        index = min(len(ordered) - 1,
                    max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._bucket_counts)
            total, total_sum = self._count, self._sum
        mean = total_sum / total if total else None
        return {
            "kind": self.kind,
            "help": self.help,
            "count": total,
            "sum": total_sum,
            "mean": mean,
            "buckets": {str(bound): count
                        for bound, count in zip(self.bounds, counts)},
            "overflow": counts[-1],
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named metric instances plus a JSON-able whole-registry snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name, help))
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {metric.kind}")
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name, help))
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is a {metric.kind}")
        return metric

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, help, buckets))
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {metric.kind}")
        return metric

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metric.snapshot()
                for name, metric in sorted(metrics.items())}
