"""Exception hierarchy for the SALSA reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish structural problems (bad CDFG), scheduling
problems, and binding/allocation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CDFGError(ReproError):
    """A control/data flow graph is malformed or an operation on it failed."""


class ScheduleError(ReproError):
    """A schedule is infeasible, inconsistent, or violates constraints."""


class BindingError(ReproError):
    """A binding (op->FU / segment->register assignment) is illegal."""


class AllocationError(ReproError):
    """Allocation could not produce a legal datapath."""


class DatapathError(ReproError):
    """A datapath netlist is inconsistent or simulation failed."""


class ConfigError(ReproError):
    """Invalid configuration parameters were supplied."""
