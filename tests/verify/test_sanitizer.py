"""Shadow-state sanitizer: clean runs stay clean, corruption is caught."""

import json

import pytest

from repro.core.anneal import AnnealConfig, anneal
from repro.core.binding import Binding
from repro.core.improve import ImproveConfig, improve
from repro.core.initial import initial_allocation
from repro.core.parallel import RestartJob, run_restart
from repro.datapath.units import make_registers
from repro.sched.explore import schedule_graph
from repro.verify.fuzz import BrokenUndoMoveSet
from repro.verify.sanitizer import (SANITIZE_ENV, SanitizerError,
                                    ShadowSanitizer, decode_state,
                                    encode_state, make_sanitizer,
                                    sanitize_enabled)


def _fresh_binding(diffeq, nonpipe_spec):
    schedule = schedule_graph(diffeq, nonpipe_spec, 6)
    fus = nonpipe_spec.make_fus(schedule.min_fus())
    regs = make_registers(schedule.min_registers() + 1)
    return initial_allocation(schedule, fus, regs)


class TestEnablement:
    def test_flag_wins(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        assert sanitize_enabled(True)
        assert not sanitize_enabled(False)

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("yes", True), ("on", True),
        ("0", False), ("", False), ("false", False), ("off", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(SANITIZE_ENV, value)
        assert sanitize_enabled(False) is expected

    def test_make_sanitizer_disabled_returns_none(self, monkeypatch,
                                                  diffeq_binding):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        assert make_sanitizer(diffeq_binding, False, 8) is None
        assert make_sanitizer(diffeq_binding, True, 8) is not None


class TestReadOnly:
    def test_sanitized_run_bit_identical(self, monkeypatch, diffeq,
                                         nonpipe_spec):
        """The sanitizer must observe, never steer: same seed, same result."""
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        results = []
        for sanitize in (False, True):
            binding = _fresh_binding(diffeq, nonpipe_spec)
            config = ImproveConfig(max_trials=2, moves_per_trial=150,
                                   uphill_per_trial=4, seed=11,
                                   sanitize=sanitize, sanitize_every=4)
            improve(binding, config)
            results.append((binding.clone_state(), binding.cost()))
        assert results[0] == results[1]


class TestStateCodec:
    def test_encode_decode_roundtrip(self, diffeq_binding):
        state = diffeq_binding.clone_state()
        encoded = encode_state(state)
        json.dumps(encoded)  # must be JSON-serializable as-is
        assert decode_state(encoded) == state

    def test_decoded_state_is_restorable(self, diffeq, nonpipe_spec):
        binding = _fresh_binding(diffeq, nonpipe_spec)
        snapshot = decode_state(encode_state(binding.clone_state()))
        shadow = Binding(binding.schedule, list(binding.fus.values()),
                         list(binding.regs.values()),
                         weights=binding.weights)
        shadow.restore_state(snapshot)
        assert shadow.cost() == binding.cost()
        assert shadow.derived_snapshot() == binding.derived_snapshot()


class TestShadowCheck:
    def test_clean_binding_passes(self, diffeq_binding):
        ShadowSanitizer(diffeq_binding, every=1).check()

    def test_catches_stale_occupancy(self, diffeq_binding):
        b = diffeq_binding
        b.flush()
        free = next(r for r in sorted(b.regs)
                    if (r, 0) not in b.reg_occ)
        vname = next(iter(sorted(b.graph.values)))
        b.reg_occ[(free, 0)] = vname  # bypass the primitives
        with pytest.raises(SanitizerError) as info:
            ShadowSanitizer(diffeq_binding, every=1).check()
        assert info.value.problems

    def test_catches_ledger_refcount_drift(self, diffeq_binding):
        b = diffeq_binding
        b.flush()
        (src, sink), _count = next(iter(sorted(
            b.ledger.use_counts().items())))
        b.ledger.add(src, sink)  # one phantom use: totals may still agree
        with pytest.raises(SanitizerError) as info:
            ShadowSanitizer(diffeq_binding, every=1).check()
        assert any("refcount" in p or "uses" in p
                   for p in info.value.problems)

    def test_error_carries_reproducer(self, diffeq_binding):
        b = diffeq_binding
        b.flush()
        free = next(r for r in sorted(b.regs) if (r, 0) not in b.reg_occ)
        b.reg_occ[(free, 0)] = next(iter(sorted(b.graph.values)))
        with pytest.raises(SanitizerError) as info:
            ShadowSanitizer(b, every=1, context="unit").check()
        err = info.value
        assert err.reproducer["context"] == "unit"
        assert err.reproducer["state"] is not None
        payload = json.loads(err.to_json())
        assert decode_state(payload["state"])  # restorable snapshot shape


class TestInjectedUndoBug:
    """A broken undo closure must be caught by the round-trip probe."""

    def _config(self, seed, sanitize=True, **kwargs):
        return ImproveConfig(max_trials=3, moves_per_trial=400,
                             uphill_per_trial=0, seed=seed,
                             move_set=BrokenUndoMoveSet(),
                             sanitize=sanitize, sanitize_every=1,
                             **kwargs)

    def test_improve_catches_broken_undo(self, monkeypatch, diffeq,
                                         nonpipe_spec):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        binding = _fresh_binding(diffeq, nonpipe_spec)
        with pytest.raises(SanitizerError) as info:
            improve(binding, self._config(seed=3))
        err = info.value
        assert err.move_name == "R2"
        assert "round-trip" in str(err)
        assert err.reproducer["move_name"] == "R2"

    def test_env_override_enables_sanitizer(self, monkeypatch, diffeq,
                                            nonpipe_spec):
        """config.sanitize=False, but REPRO_SANITIZE=1 still catches it."""
        monkeypatch.setenv(SANITIZE_ENV, "1")
        binding = _fresh_binding(diffeq, nonpipe_spec)
        with pytest.raises(SanitizerError):
            improve(binding, self._config(seed=3, sanitize=False))

    def test_disabled_sanitizer_stays_silent(self, monkeypatch, diffeq,
                                             nonpipe_spec):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        binding = _fresh_binding(diffeq, nonpipe_spec)
        improve(binding, self._config(seed=3, sanitize=False))  # no raise

    def test_anneal_catches_broken_undo(self, monkeypatch, diffeq,
                                        nonpipe_spec):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        binding = _fresh_binding(diffeq, nonpipe_spec)
        config = AnnealConfig(initial_temperature=0.05, cooling=0.8,
                              temperature_levels=4, moves_per_level=400,
                              seed=3, move_set=BrokenUndoMoveSet(),
                              sanitize=True, sanitize_every=1)
        with pytest.raises(SanitizerError):
            anneal(binding, config)

    def test_parallel_env_override(self, monkeypatch, diffeq, nonpipe_spec):
        """run_restart picks REPRO_SANITIZE up from the environment."""
        schedule = schedule_graph(diffeq, nonpipe_spec, 6)
        fus = tuple(nonpipe_spec.make_fus(schedule.min_fus()))
        regs = tuple(make_registers(schedule.min_registers() + 1))

        def job():
            return RestartJob(
                index=0, schedule=schedule, fus=fus, regs=regs,
                configs=(ImproveConfig(max_trials=3, moves_per_trial=400,
                                       uphill_per_trial=0, seed=3,
                                       move_set=BrokenUndoMoveSet(),
                                       sanitize=False, sanitize_every=1),))

        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        run_restart(job())  # silent without the sanitizer
        monkeypatch.setenv(SANITIZE_ENV, "1")
        with pytest.raises(SanitizerError):
            run_restart(job())
