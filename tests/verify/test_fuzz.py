"""Differential fuzzer: determinism, fault injection, CLI plumbing."""

import json
import os
import pathlib
import re
import subprocess
import sys

import pytest

from repro.rng import SeedStream
from repro.verify import fuzz as fuzz_module
from repro.verify.__main__ import build_parser, main, parse_budget, parse_seed
from repro.verify.fuzz import (FuzzCase, FuzzConfig, build_problem,
                               run_case, run_fuzz, sample_case)


def _quick_config(**kwargs):
    defaults = dict(seed=7, max_cases=2, min_ops=6, max_ops=8,
                    sanitize_every=4, shrink=False)
    defaults.update(kwargs)
    return FuzzConfig(**defaults)


class TestCaseSampling:
    def test_case_dict_roundtrip(self):
        case = sample_case(SeedStream(5), 3, _quick_config())
        assert FuzzCase.from_dict(case.to_dict()) == case
        json.dumps(case.to_dict())  # serializable as-is

    def test_sampling_is_deterministic(self):
        config = _quick_config()
        a = [sample_case(SeedStream(9), i, config) for i in range(6)]
        b = [sample_case(SeedStream(9), i, config) for i in range(6)]
        assert a == b

    def test_build_problem_clamps_degenerate_cases(self):
        """Shrunk parameter vectors must always be buildable."""
        base = sample_case(SeedStream(1), 0, _quick_config())
        for n_ops, n_inputs, loop in ((2, 3, 0.0), (2, 1, 0.3),
                                      (3, 3, 0.25)):
            case = FuzzCase.from_dict({**base.to_dict(), "n_ops": n_ops,
                                       "n_inputs": n_inputs,
                                       "loop_fraction": loop})
            graph, schedule = build_problem(case)
            assert schedule.graph is graph


class TestDeterminism:
    def test_two_runs_identical(self):
        """Same seed, same config: identical corpus and summary (the
        regression guard for all randomness flowing through SeedStream)."""
        reports = [run_fuzz(_quick_config()) for _ in range(2)]
        assert reports[0].cases_run == 2
        assert reports[0].summary() == reports[1].summary()
        assert reports[0].corpus.to_dict() == reports[1].corpus.to_dict()
        assert reports[0].exit_code == reports[1].exit_code == 0

    def test_no_bare_random_in_verify(self):
        """Satellite guard: repro.verify uses SeedStream/make_rng only."""
        verify_dir = pathlib.Path(fuzz_module.__file__).parent
        offenders = []
        for path in sorted(verify_dir.glob("*.py")):
            text = path.read_text()
            if re.search(r"random\.Random\(|^import random|^from random",
                         text, re.MULTILINE):
                offenders.append(path.name)
        assert offenders == []


class TestInjectedBug:
    """Acceptance: an injected bad undo is caught, shrunk and emitted."""

    @pytest.fixture(scope="class")
    def injected_report(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("fuzz-out")
        config = FuzzConfig(seed=0, max_cases=3, min_ops=6, max_ops=8,
                            sanitize_every=1, shrink=True,
                            shrink_attempts=16, out_dir=str(out_dir),
                            inject="undo")
        return run_fuzz(config), out_dir

    def test_failures_are_sanitizer_errors(self, injected_report):
        report, _out = injected_report
        assert report.failures
        assert {f.exc_type for f in report.failures} == {"SanitizerError"}
        assert all(f.stage == "salsa" for f in report.failures)
        assert report.exit_code == 1
        assert report.new_buckets == report.corpus.signatures()

    def test_failure_was_shrunk(self, injected_report):
        report, _out = injected_report
        assert report.shrinks
        for signature, shrunk in report.shrinks.items():
            bucket = report.corpus.buckets[signature]
            original = FuzzCase.from_dict(bucket.cases[0])
            assert shrunk.case.restarts <= original.restarts
            assert shrunk.case.max_trials <= original.max_trials
            assert shrunk.case.n_ops <= original.n_ops

    def test_shrunk_case_still_reproduces(self, injected_report):
        report, _out = injected_report
        signature, shrunk = sorted(report.shrinks.items())[0]
        failure = run_case(shrunk.case, inject="undo", sanitize_every=1)
        assert failure is not None
        assert failure.signature == signature

    def test_reproducer_files_emitted(self, injected_report):
        report, out_dir = injected_report
        buckets_path = out_dir / "buckets.json"
        assert buckets_path.exists()
        data = json.loads(buckets_path.read_text())
        assert data["format"] == "repro.fuzz-corpus/1"
        assert data["buckets"]
        scripts = sorted(out_dir.glob("repro_*.py"))
        assert scripts
        for script in scripts:
            compile(script.read_text(), str(script), "exec")

    def test_reproducer_script_replays(self, injected_report):
        """The emitted script exits 1 while the injected bug is present."""
        _report, out_dir = injected_report
        script = sorted(out_dir.glob("repro_*.py"))[0]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        proc = subprocess.run([sys.executable, str(script)],
                              capture_output=True, text=True, env=env,
                              timeout=300)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "reproduced" in proc.stdout

    def test_known_buckets_suppress_exit_code(self, injected_report,
                                              tmp_path):
        """A baseline buckets.json turns known failures into exit 0."""
        report, out_dir = injected_report
        rerun = run_fuzz(FuzzConfig(
            seed=0, max_cases=3, min_ops=6, max_ops=8, sanitize_every=1,
            shrink=False, inject="undo",
            known_buckets=str(out_dir / "buckets.json")))
        assert rerun.failures
        assert rerun.new_buckets == []
        assert rerun.exit_code == 0


class TestCli:
    def test_parse_budget(self):
        assert parse_budget("300") == 300.0
        assert parse_budget("300s") == 300.0
        assert parse_budget("5m") == 300.0
        assert parse_budget("1h") == 3600.0
        with pytest.raises(Exception):
            parse_budget("-3")

    def test_parse_seed(self):
        assert parse_seed("42") == 42
        assert parse_seed("0x10") == 16
        assert parse_seed("from-date") >= 20260101
        with pytest.raises(Exception):
            parse_seed("tuesday")

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.out == "results/fuzz"
        assert args.budget is None and args.max_cases is None

    def test_main_clean_run(self, tmp_path, capsys):
        code = main(["--max-cases", "1", "--seed", "3", "--min-ops", "6",
                     "--max-ops", "8", "--out", str(tmp_path), "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fuzz: 1 case(s) run, 0 failure(s)" in out
