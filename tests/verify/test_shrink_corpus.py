"""Shrinker and crash-bucketing units (no allocator in the loop)."""

import json

from repro.rng import SeedStream
from repro.verify.corpus import (Bucket, Corpus, failure_signature,
                                 normalize_message)
from repro.verify.fuzz import FuzzCase, FuzzConfig, sample_case
from repro.verify.shrink import shrink_case


def _base_case(**overrides):
    case = sample_case(SeedStream(2), 0, FuzzConfig(min_ops=14, max_ops=14))
    data = {**case.to_dict(), "n_ops": 14, "restarts": 2, "max_trials": 3,
            "moves_per_trial": 160, "uphill": 6, "iterations": 4,
            "extra_registers": 2, "length_slack": 2, "n_inputs": 3,
            "loop_fraction": 0.2, "const_fraction": 0.3}
    data.update(overrides)
    return FuzzCase.from_dict(data)


class TestSignatures:
    def test_numbers_and_names_abstracted(self):
        a = failure_signature("salsa", "SanitizerError",
                              "cost diverged: live 14.5 vs shadow 13.0")
        b = failure_signature("salsa", "SanitizerError",
                              "cost diverged: live 99.25 vs shadow 7.75")
        assert a == b

    def test_quoted_identifiers_abstracted(self):
        a = failure_signature("salsa", "BindingError",
                              "operation 'a1' unbound")
        b = failure_signature("salsa", "BindingError",
                              "operation 'm17' unbound")
        assert a == b

    def test_stage_and_type_distinguish(self):
        msg = "boom"
        assert failure_signature("salsa", "X", msg) != \
            failure_signature("traditional", "X", msg)
        assert failure_signature("salsa", "X", msg) != \
            failure_signature("salsa", "Y", msg)

    def test_only_headline_participates(self):
        """Detail lines carry per-case diffs and must not split buckets."""
        a = failure_signature("salsa", "SanitizerError",
                              "round-trip failed\n  read_src[('a1', 0)] ...")
        b = failure_signature("salsa", "SanitizerError",
                              "round-trip failed\n  reg_occ[('R3', 5)] ...")
        assert a == b

    def test_normalize_message(self):
        assert normalize_message("reg 'R3' at step 7  drifted") == \
            "reg <id> at step <n> drifted"


class TestShrinker:
    def test_shrinks_to_predicate_boundary(self):
        """Greedy floor-then-bisect lands exactly on the failure boundary."""
        sig = "stage-Exc-abc"

        def replay(case):
            return sig if case.n_ops >= 9 and case.max_trials >= 2 else None

        result = shrink_case(_base_case(), sig, replay, max_attempts=64)
        assert result.case.n_ops == 9
        assert result.case.max_trials == 2
        # every unconstrained dimension collapses to its floor
        assert result.case.restarts == 1
        assert result.case.moves_per_trial == 8
        assert result.case.uphill == 0
        assert result.case.loop_fraction == 0.0
        assert result.reductions > 0
        assert result.attempts <= 64

    def test_rejects_signature_changes(self):
        """Candidates failing differently must not be accepted."""
        def replay(case):
            if case.n_ops >= 9:
                return "original"
            return "different"  # smaller cases fail another way

        result = shrink_case(_base_case(), "original", replay)
        assert result.case.n_ops == 9

    def test_respects_attempt_budget(self):
        calls = []

        def replay(case):
            calls.append(case)
            return "sig"

        shrink_case(_base_case(), "sig", replay, max_attempts=5)
        assert len(calls) <= 5

    def test_already_minimal_case_untouched(self):
        minimal = _base_case(n_ops=2, n_inputs=1, restarts=1, max_trials=1,
                             moves_per_trial=8, uphill=0, iterations=1,
                             extra_registers=0, length_slack=0,
                             loop_fraction=0.0, const_fraction=0.0)
        result = shrink_case(minimal, "sig", lambda case: "sig")
        assert result.case == minimal
        assert result.reductions == 0


class TestCorpus:
    def _add(self, corpus, message="cost diverged: live 1 vs shadow 2",
             stage="salsa", case_index=0):
        case = {"index": case_index, "seed": 1}
        sig = failure_signature(stage, "SanitizerError", message)
        return sig, corpus.add(sig, stage, "SanitizerError", message, case)

    def test_same_signature_one_bucket(self):
        corpus = Corpus()
        sig1, new1 = self._add(corpus, case_index=0)
        sig2, new2 = self._add(corpus,
                               message="cost diverged: live 8 vs shadow 9",
                               case_index=1)
        assert sig1 == sig2
        assert new1 and not new2
        assert len(corpus) == 1
        assert corpus.buckets[sig1].hits == 2
        assert len(corpus.buckets[sig1].cases) == 2

    def test_new_signatures_against_baseline(self):
        corpus = Corpus()
        sig_a, _ = self._add(corpus, stage="salsa")
        sig_b, _ = self._add(corpus, stage="invariants")
        assert corpus.new_signatures(set()) == sorted([sig_a, sig_b])
        assert corpus.new_signatures({sig_a}) == [sig_b]
        assert corpus.new_signatures({sig_a, sig_b}) == []

    def test_dict_roundtrip_and_save_load(self, tmp_path):
        corpus = Corpus()
        sig, _ = self._add(corpus)
        corpus.buckets[sig].shrunk = {"index": 0, "seed": 1}
        path = tmp_path / "buckets.json"
        corpus.save(str(path))
        loaded = Corpus.load(str(path))
        assert loaded.to_dict() == corpus.to_dict()
        assert Corpus.known_signatures(str(path)) == {sig}

    def test_known_signatures_missing_file(self, tmp_path):
        assert Corpus.known_signatures(None) == set()
        assert Corpus.known_signatures(str(tmp_path / "absent.json")) == set()

    def test_summary_deterministic_and_normalized(self):
        corpus = Corpus()
        self._add(corpus, message="reg 'R3' drifted by 0.5")
        summary = corpus.summary()
        assert summary == corpus.summary()
        assert "<id>" in summary and "<n>" in summary
        assert Corpus().summary() == "corpus: no failures"

    def test_bucket_from_dict_defaults(self):
        bucket = Bucket.from_dict({
            "signature": "s-X-1", "stage": "s", "exc_type": "X",
            "example_message": "m", "cases": [{"index": 0}]})
        assert bucket.hits == 1
        assert bucket.shrunk is None

    def test_write_reproducers_prefers_shrunk_case(self, tmp_path):
        corpus = Corpus()
        case = sample_case(SeedStream(4), 0,
                           FuzzConfig(min_ops=6, max_ops=8)).to_dict()
        shrunk = {**case, "n_ops": 2}
        sig = failure_signature("salsa", "SanitizerError", "boom")
        corpus.add(sig, "salsa", "SanitizerError", "boom", case,
                   shrunk=shrunk)
        paths = corpus.write_reproducers(str(tmp_path), inject="undo",
                                         sanitize_every=1)
        script = tmp_path / f"repro_{sig}.py"
        assert str(script) in paths
        text = script.read_text()
        compile(text, str(script), "exec")
        assert '"n_ops": 2' in text
        assert "INJECT = 'undo'" in text
        assert "SANITIZE_EVERY = 1" in text
        data = json.loads((tmp_path / "buckets.json").read_text())
        assert data["buckets"][0]["signature"] == sig
