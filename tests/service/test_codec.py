"""Request decoding and content-addressed key invariants."""

from __future__ import annotations

import json

import pytest

from repro.bench import elliptic_wave_filter
from repro.io.json_io import cdfg_to_json
from repro.service.codec import (AllocateRequest, RequestError,
                                 cache_key_payload, job_id_for,
                                 request_from_dict, request_key, warm_key)


def make_request(**overrides):
    body = {"cdfg": {"bench": "ewf"}, "length": 17, "seed": 3}
    body.update(overrides)
    return request_from_dict(body)


def test_decode_named_bench():
    request = make_request()
    assert request.graph.name == elliptic_wave_filter().name
    assert request.length == 17
    assert request.seed == 3
    assert request.engine == "improve"
    assert request.model == "salsa"


def test_embedded_document_matches_named_bench_key():
    # {"bench": "ewf"} and the full serialized EWF graph are the same
    # request: both must land on the same cache key
    named = make_request()
    document = json.loads(cdfg_to_json(elliptic_wave_filter()))
    embedded = request_from_dict(
        {"cdfg": document, "length": 17, "seed": 3})
    assert request_key(named) == request_key(embedded)
    assert warm_key(named) == warm_key(embedded)


def test_delivery_options_do_not_change_the_key():
    base = make_request()
    with_deadline = make_request(deadline_ms=50)
    with_warm = make_request(warm_start=True)
    assert request_key(base) == request_key(with_deadline)
    assert request_key(base) == request_key(with_warm)
    # ... but search identity does
    assert request_key(base) != request_key(make_request(seed=4))
    assert request_key(base) != request_key(make_request(restarts=2))
    assert request_key(base) != request_key(make_request(engine="anneal"))


def test_warm_key_ignores_search_knobs():
    base = make_request()
    assert warm_key(base) == warm_key(make_request(seed=99))
    assert warm_key(base) == warm_key(make_request(engine="anneal"))
    assert warm_key(base) == warm_key(
        make_request(improve={"max_trials": 1}))
    # the problem shape does change it
    assert warm_key(base) != warm_key(make_request(length=19))
    assert warm_key(base) != warm_key(make_request(model="traditional"))


def test_key_payload_is_canonical_json():
    payload = cache_key_payload(make_request())
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert json.loads(text) == payload  # round-trips losslessly


def test_job_id_is_deterministic_and_short():
    key = request_key(make_request())
    assert job_id_for(key) == job_id_for(key)
    assert len(job_id_for(key)) == 16
    assert job_id_for(key) != job_id_for(request_key(make_request(seed=4)))


@pytest.mark.parametrize("body,phrase", [
    ({}, "missing the 'cdfg'"),
    ({"cdfg": {"bench": "nope"}}, "unknown benchmark"),
    ({"cdfg": {"bench": "ewf"}, "bogus": 1}, "unknown request fields"),
    ({"cdfg": {"bench": "ewf"}, "engine": "genetic"}, "unknown engine"),
    ({"cdfg": {"bench": "ewf"}, "model": "quantum"}, "unknown model"),
    ({"cdfg": {"bench": "ewf"}, "restarts": 0}, "restarts"),
    ({"cdfg": {"bench": "ewf"}, "deadline_ms": -5}, "deadline_ms"),
    ({"cdfg": {"bench": "ewf"}, "improve": {"warp": 9}}, "improve knob"),
    ({"cdfg": {"bench": "ewf"}, "anneal": {"warp": 9}}, "anneal knob"),
    ({"cdfg": {"bench": "ewf"}, "spec": 7}, "spec"),
    ({"cdfg": "ewf"}, "'cdfg' must be"),
])
def test_bad_requests_are_rejected(body, phrase):
    with pytest.raises(RequestError, match=phrase):
        request_from_dict(body)


def test_spec_strings_and_knob_dicts_accepted():
    request = request_from_dict({
        "cdfg": {"bench": "dct"}, "spec": "pipelined",
        "engine": "anneal", "model": "traditional",
        "anneal": {"temperature_levels": 3, "moves_per_level": 50},
        "weights": {"mux": 2.0},
    })
    assert request.spec.fu_types["pmult"].pipelined
    assert request.anneal["temperature_levels"] == 3
    assert request.weights.mux == 2.0


def test_direct_construction_validates_too():
    graph = elliptic_wave_filter()
    from repro.datapath.units import HardwareSpec
    with pytest.raises(RequestError):
        AllocateRequest(graph=graph, spec=HardwareSpec.non_pipelined(),
                        engine="bogus")
