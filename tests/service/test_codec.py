"""Request decoding and content-addressed key invariants."""

from __future__ import annotations

import json

import pytest

from repro.bench import elliptic_wave_filter
from repro.io.json_io import cdfg_to_json
from repro.service.codec import (AllocateRequest, RequestError,
                                 cache_key_payload, job_id_for,
                                 request_from_dict, request_key, warm_key)


def make_request(**overrides):
    body = {"cdfg": {"bench": "ewf"}, "length": 17, "seed": 3}
    body.update(overrides)
    return request_from_dict(body)


def test_decode_named_bench():
    request = make_request()
    assert request.graph.name == elliptic_wave_filter().name
    assert request.length == 17
    assert request.seed == 3
    assert request.engine == "improve"
    assert request.model == "salsa"


def test_embedded_document_matches_named_bench_key():
    # {"bench": "ewf"} and the full serialized EWF graph are the same
    # request: both must land on the same cache key
    named = make_request()
    document = json.loads(cdfg_to_json(elliptic_wave_filter()))
    embedded = request_from_dict(
        {"cdfg": document, "length": 17, "seed": 3})
    assert request_key(named) == request_key(embedded)
    assert warm_key(named) == warm_key(embedded)


def test_delivery_options_do_not_change_the_key():
    base = make_request()
    with_deadline = make_request(deadline_ms=50)
    with_warm = make_request(warm_start=True)
    assert request_key(base) == request_key(with_deadline)
    assert request_key(base) == request_key(with_warm)
    # ... but search identity does
    assert request_key(base) != request_key(make_request(seed=4))
    assert request_key(base) != request_key(make_request(restarts=2))
    assert request_key(base) != request_key(make_request(engine="anneal"))


def test_warm_key_ignores_search_knobs():
    base = make_request()
    assert warm_key(base) == warm_key(make_request(seed=99))
    assert warm_key(base) == warm_key(make_request(engine="anneal"))
    assert warm_key(base) == warm_key(
        make_request(improve={"max_trials": 1}))
    # the problem shape does change it
    assert warm_key(base) != warm_key(make_request(length=19))
    assert warm_key(base) != warm_key(make_request(model="traditional"))


def test_key_payload_is_canonical_json():
    payload = cache_key_payload(make_request())
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert json.loads(text) == payload  # round-trips losslessly


def test_job_id_is_deterministic_and_short():
    key = request_key(make_request())
    assert job_id_for(key) == job_id_for(key)
    assert len(job_id_for(key)) == 16
    assert job_id_for(key) != job_id_for(request_key(make_request(seed=4)))


@pytest.mark.parametrize("body,phrase", [
    ({}, "missing the 'cdfg'"),
    ({"cdfg": {"bench": "nope"}}, "unknown benchmark"),
    ({"cdfg": {"bench": "ewf"}, "bogus": 1}, "unknown request fields"),
    ({"cdfg": {"bench": "ewf"}, "engine": "genetic"}, "unknown engine"),
    ({"cdfg": {"bench": "ewf"}, "model": "quantum"}, "unknown model"),
    ({"cdfg": {"bench": "ewf"}, "restarts": 0}, "restarts"),
    ({"cdfg": {"bench": "ewf"}, "deadline_ms": -5}, "deadline_ms"),
    ({"cdfg": {"bench": "ewf"}, "improve": {"warp": 9}}, "improve knob"),
    ({"cdfg": {"bench": "ewf"}, "anneal": {"warp": 9}}, "anneal knob"),
    ({"cdfg": {"bench": "ewf"}, "spec": 7}, "spec"),
    ({"cdfg": "ewf"}, "'cdfg' must be"),
])
def test_bad_requests_are_rejected(body, phrase):
    with pytest.raises(RequestError, match=phrase):
        request_from_dict(body)


def test_spec_strings_and_knob_dicts_accepted():
    request = request_from_dict({
        "cdfg": {"bench": "dct"}, "spec": "pipelined",
        "engine": "anneal", "model": "traditional",
        "anneal": {"temperature_levels": 3, "moves_per_level": 50},
        "weights": {"mux": 2.0},
    })
    assert request.spec.fu_types["pmult"].pipelined
    assert request.anneal["temperature_levels"] == 3
    assert request.weights.mux == 2.0


def test_direct_construction_validates_too():
    graph = elliptic_wave_filter()
    from repro.datapath.units import HardwareSpec
    with pytest.raises(RequestError):
        AllocateRequest(graph=graph, spec=HardwareSpec.non_pipelined(),
                        engine="bogus")


class TestTimingKnobs:
    """The latency_weight / max_clock_ns knobs and key compatibility."""

    FIXTURE = "tests/service/fixtures/request_keys.json"

    def test_keys_unchanged_for_requests_omitting_the_knobs(self):
        # exact-key backward compatibility: the committed fixture was
        # recorded against the pre-timing codec, so any drift here would
        # invalidate every production cache entry
        import os
        with open(os.path.join(os.path.dirname(__file__), "fixtures",
                               "request_keys.json")) as handle:
            fixture = json.load(handle)
        assert len(fixture) >= 4
        for name, entry in sorted(fixture.items()):
            request = request_from_dict(entry["body"])
            assert request_key(request) == entry["request_key"], name
            assert warm_key(request) == entry["warm_key"], name

    def test_latency_weight_changes_the_key(self):
        plain = make_request()
        weighted = make_request(latency_weight=0.5)
        assert weighted.weights.latency == 0.5
        assert request_key(weighted) != request_key(plain)
        assert warm_key(weighted) != warm_key(plain)

    def test_max_clock_changes_the_key_but_not_the_shape(self):
        plain = make_request()
        clocked = make_request(max_clock_ns=2.5)
        assert clocked.max_clock_ns == 2.5
        assert request_key(clocked) != request_key(plain)
        # a clock constraint restricts acceptance, not the problem shape
        assert warm_key(clocked) == warm_key(plain)

    def test_zero_latency_weight_is_the_old_key(self):
        # explicit 0.0 must hash like full omission: the zero weight IS
        # the pre-timing cost function
        assert request_key(make_request(latency_weight=0.0)) == \
            request_key(make_request())

    def test_latency_weight_conflicts_with_weights_latency(self):
        with pytest.raises(RequestError, match="not both"):
            make_request(latency_weight=0.5,
                         weights={"fu": 1.0, "latency": 0.5})

    def test_weights_latency_spelled_out_matches_shorthand(self):
        shorthand = make_request(latency_weight=0.25)
        spelled = make_request(weights={"latency": 0.25})
        assert request_key(shorthand) == request_key(spelled)

    def test_bad_knob_values_rejected(self):
        with pytest.raises(RequestError, match="latency_weight"):
            make_request(latency_weight="fast")
        with pytest.raises(RequestError, match="max_clock_ns"):
            make_request(max_clock_ns="soon")
        with pytest.raises(RequestError, match="positive"):
            make_request(max_clock_ns=-1.0)

    def test_payload_omits_absent_constraint(self):
        payload = cache_key_payload(make_request())
        assert "max_clock_ns" not in payload
        assert "latency" not in payload["weights"]
        clocked = cache_key_payload(make_request(max_clock_ns=3.0))
        assert clocked["max_clock_ns"] == 3.0
