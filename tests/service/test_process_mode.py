"""Process-mode workers: StopSignal semantics, cross-boundary cancel and
deadlines, and the shared disk tier observed from two manager instances.
"""

from __future__ import annotations

import json
import pickle
import time

import pytest

from repro.alloc.checker import check_binding
from repro.io.json_io import binding_from_json
from repro.core.parallel import (StopSignal, _fork_context,
                                 is_process_safe_callback)
from repro.service.cache import DiskCache, MemoryLRUCache, TieredCache
from repro.service.codec import request_from_dict, request_key
from repro.service.jobs import (CANCELLED, DONE, PROCESS_MODE, THREAD_MODE,
                                JobManager, resolve_worker_mode)
from repro.service.metrics import MetricsRegistry

needs_fork = pytest.mark.skipif(_fork_context() is None,
                                reason="fork start method unavailable")

FAST_BUDGET = {"max_trials": 1, "moves_per_trial": 60}


def fast_request(**overrides):
    body = {"cdfg": {"bench": "ewf"}, "length": 17, "seed": 5,
            "improve": dict(FAST_BUDGET)}
    body.update(overrides)
    return request_from_dict(body)


# -------------------------------------------------------------- StopSignal


def test_stop_signal_deadline_trips_and_latches():
    signal = StopSignal(deadline=time.monotonic() - 0.001)
    assert signal() is True
    signal.deadline = time.monotonic() + 3600  # latched: not re-evaluated
    assert signal() is True


def test_stop_signal_future_deadline_does_not_trip():
    signal = StopSignal(deadline=time.monotonic() + 3600)
    assert signal() is False


def test_stop_signal_flag_file_checked_every_n_calls(tmp_path):
    flag = tmp_path / "job.stop"
    flag.write_bytes(b"")
    signal = StopSignal(flag_path=str(flag), check_every=4)
    assert [signal() for _ in range(3)] == [False, False, False]
    assert signal() is True      # 4th call stats the file
    flag.unlink()
    assert signal() is True      # latched


def test_stop_signal_missing_flag_never_trips(tmp_path):
    signal = StopSignal(flag_path=str(tmp_path / "absent.stop"),
                        check_every=1)
    assert not any(signal() for _ in range(8))


def test_stop_signal_pickle_resets_per_process_scratch(tmp_path):
    flag = tmp_path / "job.stop"
    flag.write_bytes(b"")
    signal = StopSignal(flag_path=str(flag), check_every=1)
    assert signal() is True  # tripped in the parent
    clone = pickle.loads(pickle.dumps(signal))
    flag.unlink()
    # the latch is parent-side scratch: the clone re-evaluates fresh
    assert clone() is False
    assert clone.check_every == 1 and clone.flag_path == str(flag)


def test_is_process_safe_callback():
    assert is_process_safe_callback(None)
    assert is_process_safe_callback(StopSignal())
    assert not is_process_safe_callback(lambda: False)


def test_resolve_worker_mode_validates_and_falls_back(monkeypatch):
    assert resolve_worker_mode(THREAD_MODE) == THREAD_MODE
    with pytest.raises(ValueError):
        resolve_worker_mode("fibers")
    import repro.service.jobs as jobs_mod
    monkeypatch.setattr(jobs_mod, "_fork_context", lambda: None)
    assert resolve_worker_mode(PROCESS_MODE) == THREAD_MODE


# ------------------------------------------------------- end-to-end (fork)


def make_process_manager(disk_root=None, **kwargs):
    metrics = MetricsRegistry()
    disk = DiskCache(root=disk_root) if disk_root is not None else None
    cache = TieredCache(MemoryLRUCache(16 * 1024 * 1024), disk,
                        metrics=metrics)
    kwargs.setdefault("workers", 2)
    manager = JobManager(cache=cache, metrics=metrics,
                         worker_mode=PROCESS_MODE, **kwargs)
    return manager, cache, metrics


@needs_fork
def test_process_mode_runs_job_to_done_with_legal_binding():
    manager, cache, _ = make_process_manager()
    try:
        assert manager.worker_mode == PROCESS_MODE
        request = fast_request(restarts=2)
        job, cached = manager.submit(request)
        assert cached is None
        assert job.wait(180)
        assert job.status == DONE
        result = job.result
        assert result["degraded"] is False
        assert result["restarts_run"] == 2
        binding = binding_from_json(json.dumps(result["binding"]))
        assert check_binding(binding) == []
        # the pool-computed result reached the exact-key cache
        assert cache.get(request_key(request)) is not None
    finally:
        manager.shutdown()


@needs_fork
def test_process_mode_cancel_crosses_the_boundary():
    manager, _, metrics = make_process_manager(workers=1)
    try:
        job, _ = manager.submit(fast_request(
            restarts=2,
            improve={"max_trials": 500, "moves_per_trial": 20000}))
        deadline = time.monotonic() + 30
        while job.started_mono is None and time.monotonic() < deadline:
            time.sleep(0.01)
        manager.cancel(job.id)
        assert job.wait(120)
        assert job.status == CANCELLED
        assert job.result is None
        assert metrics.counter("jobs_cancelled").value == 1
    finally:
        manager.shutdown()


@needs_fork
def test_process_mode_deadline_degrades_not_fails():
    manager, cache, metrics = make_process_manager()
    try:
        request = fast_request(
            deadline_ms=300, restarts=3,
            improve={"max_trials": 500, "moves_per_trial": 20000})
        job, _ = manager.submit(request)
        assert job.wait(180)
        assert job.status == DONE
        result = job.result
        assert result["degraded"] is True
        binding = binding_from_json(json.dumps(result["binding"]))
        assert check_binding(binding) == []
        assert cache.get(request_key(request)) is None  # never cached
        assert metrics.counter("jobs_degraded").value == 1
    finally:
        manager.shutdown()


@needs_fork
def test_shared_disk_tier_across_two_managers(tmp_path):
    """Two managers on one disk root model two server processes: what A
    computed in its pool, B serves byte-identically without searching."""
    root = str(tmp_path / "shared")
    first, _, _ = make_process_manager(disk_root=root)
    try:
        job, cached = first.submit(fast_request(seed=9))
        assert cached is None
        assert job.wait(180)
        assert job.status == DONE
    finally:
        first.shutdown()

    second, _, metrics = make_process_manager(disk_root=root)
    try:
        twin, payload = second.submit(fast_request(seed=9))
        assert twin.status == DONE
        assert payload is not None
        assert json.loads(payload.decode("utf-8")) == job.result
        assert metrics.counter("jobs_submitted").value == 0  # no search ran
    finally:
        second.shutdown()
