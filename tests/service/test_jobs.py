"""Job orchestration: caching, coalescing, deadlines, retries, cancel."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.alloc.checker import check_binding
from repro.errors import ReproError
from repro.io.json_io import binding_from_json
from repro.service.cache import MemoryLRUCache, TieredCache
from repro.service.codec import request_from_dict, request_key
from repro.service.jobs import (CANCELLED, DONE, FAILED, JobManager,
                                JobNotFoundError, QueueFullError)
from repro.service.metrics import MetricsRegistry
from repro.verify.sanitizer import SanitizerError

FAST_BUDGET = {"max_trials": 1, "moves_per_trial": 60}


def make_manager(**kwargs):
    metrics = MetricsRegistry()
    cache = TieredCache(MemoryLRUCache(16 * 1024 * 1024), None,
                        metrics=metrics)
    kwargs.setdefault("workers", 2)
    manager = JobManager(cache=cache, metrics=metrics, **kwargs)
    return manager, cache, metrics


def fast_request(**overrides):
    body = {"cdfg": {"bench": "ewf"}, "length": 17, "seed": 5,
            "improve": dict(FAST_BUDGET)}
    body.update(overrides)
    return request_from_dict(body)


@pytest.fixture
def manager_setup():
    manager, cache, metrics = make_manager()
    yield manager, cache, metrics
    manager.shutdown()


def test_job_runs_to_done_with_legal_binding(manager_setup):
    manager, _, _ = manager_setup
    job, cached = manager.submit(fast_request())
    assert cached is None
    assert job.wait(120)
    assert job.status == DONE
    result = job.result
    assert result["degraded"] is False
    assert result["restarts_run"] == 1
    binding = binding_from_json(json.dumps(result["binding"]))
    assert check_binding(binding) == []
    assert binding.cost().total == pytest.approx(result["cost"]["total"])


def test_second_submit_is_a_byte_identical_cache_hit(manager_setup):
    manager, cache, _ = manager_setup
    request = fast_request()
    job, cached = manager.submit(request)
    assert cached is None
    job.wait(120)
    stored = cache.get(request_key(request))
    assert stored is not None

    again, payload = manager.submit(fast_request())
    assert again.status == DONE
    assert payload == stored  # byte-identical, served without queueing
    assert json.loads(payload.decode("utf-8")) == job.result


def test_inflight_duplicates_coalesce_to_one_job(manager_setup):
    manager, _, metrics = manager_setup
    block = threading.Event()
    real = manager._run_search

    def slow(job, attempt, should_stop):
        block.wait(30)
        return real(job, attempt, should_stop)

    manager._run_search = slow
    first, _ = manager.submit(fast_request())
    second, payload = manager.submit(fast_request())
    assert second is first
    assert payload is None
    assert metrics.counter("jobs_coalesced").value == 1
    block.set()
    assert first.wait(120)
    assert first.status == DONE


def test_deadline_returns_degraded_best_so_far(manager_setup):
    manager, cache, metrics = manager_setup
    request = fast_request(
        deadline_ms=1, restarts=3,
        improve={"max_trials": 50, "moves_per_trial": 5000})
    job, cached = manager.submit(request)
    assert cached is None
    assert job.wait(120)
    assert job.status == DONE
    result = job.result
    assert result["degraded"] is True
    assert result["restarts_run"] < 3 or \
        result["telemetry"]["stopped_early_runs"] > 0
    # the degraded answer is still a checker-valid allocation
    binding = binding_from_json(json.dumps(result["binding"]))
    assert check_binding(binding) == []
    # ... and is never published under the exact key
    assert cache.get(request_key(request)) is None
    assert metrics.counter("jobs_degraded").value == 1


def test_warm_start_reuses_shape_snapshot(manager_setup):
    manager, cache, metrics = manager_setup
    job, _ = manager.submit(fast_request(seed=5))
    job.wait(120)
    assert job.status == DONE

    # same shape, different seed, warm_start on: exact key misses but the
    # shape snapshot seeds the search
    warm_job, cached = manager.submit(fast_request(seed=6, warm_start=True))
    assert cached is None
    assert warm_job.wait(120)
    assert warm_job.status == DONE
    assert warm_job.result["warm_started"] is True
    assert metrics.counter("jobs_warm_started").value == 1
    # warm-started results stay out of the exact-key cache
    assert cache.get(warm_job.key) is None


def test_warm_snapshot_is_compact_and_column_backed(manager_setup,
                                                    monkeypatch):
    """The warm store holds the compact array payload, and a warm-started
    job restores it as flat integer columns — it never rebuilds (or deep
    -copies) the per-op/per-segment dict graphs of the legacy codec."""
    import repro.service.jobs as jobs_mod
    from repro.core.arraystate import PAYLOAD_FORMAT, CompactState

    manager, cache, _ = manager_setup
    job, _ = manager.submit(fast_request(seed=5))
    assert job.wait(120)
    assert job.status == DONE
    blob = cache.get("warm_" + job.shape_key)
    assert json.loads(blob.decode("utf-8"))["format"] == PAYLOAD_FORMAT

    warm_states = []
    real_run = jobs_mod.run_restart

    def spying_run(rjob):
        warm_states.append(rjob.warm_state)
        return real_run(rjob)

    def legacy_decode_forbidden(_data):
        raise AssertionError(
            "warm snapshot went through the legacy decode_state path")

    monkeypatch.setattr(jobs_mod, "run_restart", spying_run)
    monkeypatch.setattr(jobs_mod, "decode_state", legacy_decode_forbidden)
    warm_job, _ = manager.submit(fast_request(seed=6, warm_start=True))
    assert warm_job.wait(120)
    assert warm_job.status == DONE
    assert warm_job.result["warm_started"] is True
    assert warm_states
    assert all(isinstance(state, CompactState) for state in warm_states)


def test_retryable_failure_gets_a_fresh_seed(manager_setup):
    manager, _, metrics = manager_setup
    real = manager._run_search
    calls = []

    def flaky(job, attempt, should_stop):
        calls.append(attempt)
        if len(calls) == 1:
            raise SanitizerError("injected shadow-state divergence")
        return real(job, attempt, should_stop)

    manager._run_search = flaky
    job, _ = manager.submit(fast_request())
    assert job.wait(120)
    assert job.status == DONE
    assert job.attempts == 2
    assert calls == [0, 1]
    assert metrics.counter("jobs_retried").value == 1


def test_fatal_error_fails_without_retry(manager_setup):
    manager, _, metrics = manager_setup

    def broken(job, attempt, should_stop):
        raise ReproError("deterministic modeling error")

    manager._run_search = broken
    job, _ = manager.submit(fast_request())
    assert job.wait(120)
    assert job.status == FAILED
    assert job.attempts == 1
    assert "deterministic modeling error" in job.error
    assert metrics.counter("jobs_retried").value == 0
    assert metrics.counter("jobs_failed").value == 1


def test_retry_budget_exhausts_to_failed():
    manager, _, metrics = make_manager(max_attempts=2)
    try:
        def always_flaky(job, attempt, should_stop):
            raise SanitizerError("never converges")

        manager._run_search = always_flaky
        job, _ = manager.submit(fast_request())
        assert job.wait(120)
        assert job.status == FAILED
        assert job.attempts == 2
        assert metrics.counter("jobs_retried").value == 1
    finally:
        manager.shutdown()


def test_queue_full_rejects_with_backpressure():
    manager, _, metrics = make_manager(workers=1, queue_limit=1)
    try:
        block = threading.Event()
        real = manager._run_search

        def slow(job, attempt, should_stop):
            block.wait(30)
            return real(job, attempt, should_stop)

        manager._run_search = slow
        running, _ = manager.submit(fast_request(seed=1))
        time.sleep(0.2)  # let the worker pick it up
        queued, _ = manager.submit(fast_request(seed=2))
        with pytest.raises(QueueFullError):
            manager.submit(fast_request(seed=3))
        assert metrics.counter("jobs_rejected").value == 1
        block.set()
        assert running.wait(120) and queued.wait(120)
    finally:
        manager.shutdown()


def test_cancel_queued_job():
    manager, _, _ = make_manager(workers=1, queue_limit=8)
    try:
        block = threading.Event()
        real = manager._run_search

        def slow(job, attempt, should_stop):
            block.wait(30)
            return real(job, attempt, should_stop)

        manager._run_search = slow
        running, _ = manager.submit(fast_request(seed=1))
        time.sleep(0.2)
        queued, _ = manager.submit(fast_request(seed=2))
        cancelled = manager.cancel(queued.id)
        assert cancelled.status == CANCELLED
        assert queued.wait(1)
        block.set()
        running.wait(120)
    finally:
        manager.shutdown()


def test_cancel_running_job_stops_the_search(manager_setup):
    manager, _, metrics = manager_setup
    request = fast_request(
        improve={"max_trials": 100, "moves_per_trial": 10000})
    job, _ = manager.submit(request)
    deadline = time.monotonic() + 10
    while job.started_at is None and time.monotonic() < deadline:
        time.sleep(0.01)
    manager.cancel(job.id)
    assert job.wait(120)
    assert job.status == CANCELLED
    assert job.result is None
    assert metrics.counter("jobs_cancelled").value == 1


def test_unknown_job_raises(manager_setup):
    manager, _, _ = manager_setup
    with pytest.raises(JobNotFoundError):
        manager.get("feedfacedeadbeef")


# ------------------------------------------------- clock-handling regression


def test_durations_come_from_monotonic_stamps_only():
    """Regression: queue/run durations must be derived from the monotonic
    stamps.  Before the fix they subtracted wall-clock fields, so an NTP
    step between submit and finish produced negative (or wildly wrong)
    latencies in /jobs and the histograms."""
    from repro.service.jobs import Job

    job = Job(id="j", key="k", shape_key="s", request=fast_request())
    # wall clock stepped back ~32 years mid-job; monotonic marched on
    job.submitted_at = 2_000_000_000.0
    job.started_at = 1_000_000_000.0
    job.finished_at = 1_000_000_000.25
    job.submitted_mono = 100.0
    job.started_mono = 100.5
    job.finished_mono = 102.5
    assert job.queue_seconds() == pytest.approx(0.5)
    assert job.run_seconds() == pytest.approx(2.0)
    described = job.describe()
    assert described["queue_seconds"] == pytest.approx(0.5)
    assert described["run_seconds"] == pytest.approx(2.0)
    # the wall stamps are still reported verbatim — display only
    assert described["started_at"] < described["submitted_at"]


def test_wall_clock_step_does_not_corrupt_live_durations(manager_setup,
                                                         monkeypatch):
    """End-to-end flavour: ``time.time`` steps back an hour while the job
    is running; every reported duration must still be non-negative."""
    manager, _, metrics = manager_setup
    real_time = time.time
    skew = {"offset": 0.0}
    monkeypatch.setattr(time, "time",
                        lambda: real_time() + skew["offset"])
    real = manager._run_search

    def stepping(job, attempt, should_stop):
        skew["offset"] = -3600.0  # the NTP step lands mid-search
        return real(job, attempt, should_stop)

    manager._run_search = stepping
    job, _ = manager.submit(fast_request())
    assert job.wait(120)
    assert job.status == DONE
    assert job.finished_at < job.started_at  # the wall clock really stepped
    assert job.queue_seconds() >= 0.0
    assert job.run_seconds() >= 0.0
    for histogram in ("job_seconds", "queue_seconds"):
        stats = metrics.snapshot()[histogram]
        assert stats["count"] >= 1
        assert stats["sum"] >= 0.0


# --------------------------------------------- coalesced-cancel refcounting


def test_coalesced_cancel_only_last_waiter_stops_the_job():
    """Regression: two clients coalesce onto one job; the first client's
    cancel must *detach* it, not kill the search the second client is
    still waiting on.  Pre-fix, cancel() stopped the job outright."""
    manager, _, metrics = make_manager(workers=1)
    try:
        block = threading.Event()
        real = manager._run_search

        def slow(job, attempt, should_stop):
            block.wait(30)
            return real(job, attempt, should_stop)

        manager._run_search = slow
        first, _ = manager.submit(fast_request())
        second, _ = manager.submit(fast_request())
        assert second is first
        assert first.waiters == 2

        manager.cancel(first.id)  # client one gives up
        assert first.status in ("queued", "running")
        assert not first.cancel_event.is_set()
        assert first.waiters == 1
        assert metrics.counter("jobs_cancel_detached").value == 1
        assert metrics.counter("jobs_cancelled").value == 0

        block.set()
        assert first.wait(120)
        assert first.status == DONE  # the survivor got its answer
        assert first.result is not None
    finally:
        manager.shutdown()


def test_coalesced_cancel_last_waiter_cancels_for_real():
    manager, _, metrics = make_manager(workers=1)
    try:
        block = threading.Event()
        running = threading.Event()
        real = manager._run_search

        def slow(job, attempt, should_stop):
            running.set()
            block.wait(30)
            return real(job, attempt, should_stop)

        manager._run_search = slow
        job, _ = manager.submit(fast_request(
            improve={"max_trials": 100, "moves_per_trial": 10000}))
        again, _ = manager.submit(fast_request(
            improve={"max_trials": 100, "moves_per_trial": 10000}))
        assert again is job
        # this test exercises the RUNNING cancel path: without the wait,
        # both cancels can land before the worker dequeues the job and the
        # queued path finishes it instead
        assert running.wait(30)
        manager.cancel(job.id)
        manager.cancel(job.id)  # the *last* waiter cancels the search
        assert job.cancel_event.is_set()
        block.set()
        assert job.wait(120)
        assert job.status == CANCELLED
        assert job.result is None
        assert metrics.counter("jobs_cancel_detached").value == 1
        assert metrics.counter("jobs_cancelled").value == 1
    finally:
        manager.shutdown()


def test_cancel_while_queued_sets_cancel_event():
    """Regression: the QUEUED cancel path must latch cancel_event too."""
    manager, _, metrics = make_manager(workers=1)
    try:
        block = threading.Event()
        running = threading.Event()
        real = manager._run_search

        def slow(job, attempt, should_stop):
            running.set()
            block.wait(30)
            return real(job, attempt, should_stop)

        manager._run_search = slow
        blocker, _ = manager.submit(fast_request(seed=1))
        assert running.wait(30)  # the single worker is busy with blocker
        queued, _ = manager.submit(fast_request(seed=2))
        assert queued.status == "queued"
        manager.cancel(queued.id)
        assert queued.status == CANCELLED
        assert queued.cancel_event.is_set()
        assert queued.done_event.is_set()
        assert queued.result is None
        assert metrics.counter("jobs_cancelled").value == 1
        block.set()
        assert blocker.wait(120)
        assert blocker.status == DONE
    finally:
        manager.shutdown()


# ----------------------------------------------------- same-shape batching


def test_same_shape_queued_jobs_claim_as_one_batch():
    manager, _, metrics = make_manager(workers=1)
    try:
        block = threading.Event()
        real = manager._run_search

        def slow(job, attempt, should_stop):
            if not block.is_set():
                block.wait(30)
            return real(job, attempt, should_stop)

        manager._run_search = slow
        blocker, _ = manager.submit(fast_request(seed=1, length=21))
        time.sleep(0.2)  # the single worker is now busy with the blocker
        same_shape = [manager.submit(fast_request(seed=10 + n))[0]
                      for n in range(3)]
        other, _ = manager.submit(fast_request(seed=30, length=19))
        block.set()
        for job in [blocker, other] + same_shape:
            assert job.wait(120)
            assert job.status == DONE
        # the three same-shape followers rode one claim...
        assert metrics.counter("jobs_batched").value == 2
        # ...and all but each shape's first resolution hit the memo
        assert metrics.counter("schedule_memo_hits").value >= 2
    finally:
        manager.shutdown()


def test_timing_section_for_latency_weighted_request(manager_setup):
    manager, _, metrics = manager_setup
    job, _ = manager.submit(fast_request(latency_weight=0.5))
    assert job.wait(120)
    assert job.status == DONE
    timing = job.result["timing"]
    assert timing["clock_period_ns"] > 0
    assert timing["mux_depth_max"] >= 0
    assert "max_clock_ns" not in timing  # no constraint was given
    hist = metrics.snapshot()["clock_period_ns"]
    assert hist["count"] == 1
    assert hist["sum"] == pytest.approx(timing["clock_period_ns"])


def test_plain_request_carries_no_timing_section(manager_setup):
    manager, _, metrics = manager_setup
    job, _ = manager.submit(fast_request())
    assert job.wait(120)
    assert "timing" not in job.result
    assert "clock_period_ns" not in metrics.snapshot() or \
        metrics.snapshot()["clock_period_ns"]["count"] == 0


def test_unmeetable_clock_degrades_and_skips_the_cache(manager_setup):
    manager, cache, _ = manager_setup
    request = fast_request(max_clock_ns=0.01)  # impossible: < clk->q+setup
    job, cached = manager.submit(request)
    assert cached is None
    assert job.wait(120)
    assert job.status == DONE
    result = job.result
    assert result["degraded"] is True
    assert result["timing"]["clock_met"] is False
    assert result["timing"]["max_clock_ns"] == 0.01
    # degraded answers are never published under the exact key
    assert cache.get(request_key(request)) is None


def test_meetable_clock_is_full_fidelity(manager_setup):
    manager, cache, _ = manager_setup
    request = fast_request(max_clock_ns=100.0)
    job, _ = manager.submit(request)
    assert job.wait(120)
    result = job.result
    assert result["degraded"] is False
    assert result["timing"]["clock_met"] is True
    assert result["timing"]["clock_period_ns"] <= 100.0
    assert cache.get(request_key(request)) is not None
