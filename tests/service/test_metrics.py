"""Unit tests for the counter/gauge/histogram registry."""

from __future__ import annotations

import threading

import pytest

from repro.service.metrics import (Counter, Gauge, Histogram,
                                   MetricsRegistry)


def test_counter_inc():
    counter = Counter("hits", "cache hits")
    assert counter.value == 0
    counter.inc()
    counter.inc(3)
    assert counter.value == 4
    snap = counter.snapshot()
    assert snap == {"kind": "counter", "help": "cache hits", "value": 4}


def test_gauge_set_inc_dec():
    gauge = Gauge("depth", "queue depth")
    gauge.set(5)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value == 4
    assert gauge.snapshot()["kind"] == "gauge"


def test_histogram_percentiles_exact_on_small_samples():
    histogram = Histogram("lat", "latency", buckets=(1, 10, 100))
    for value in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["count"] == 10
    assert snap["sum"] == pytest.approx(55)
    assert snap["mean"] == pytest.approx(5.5)
    assert snap["p50"] == pytest.approx(5, abs=1)
    assert snap["p99"] == pytest.approx(10, abs=1)


def test_histogram_bucket_counts():
    histogram = Histogram("lat", "latency", buckets=(1.0, 10.0))
    for value in (0.5, 0.7, 5.0, 50.0):
        histogram.observe(value)
    snap = histogram.snapshot()
    # per-bucket counts keyed by upper bound, plus the overflow tally
    assert snap["buckets"]["1.0"] == 2
    assert snap["buckets"]["10.0"] == 1
    assert snap["overflow"] == 1


def test_registry_get_or_create_and_type_conflict():
    registry = MetricsRegistry()
    counter = registry.counter("a", "first")
    assert registry.counter("a") is counter
    with pytest.raises(TypeError):
        registry.gauge("a")
    snapshot = registry.snapshot()
    assert snapshot["a"]["value"] == 0


def test_registry_snapshot_is_plain_data():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(2)
    registry.histogram("h").observe(0.5)
    snapshot = registry.snapshot()
    import json
    json.dumps(snapshot)  # must be JSON-able as-is
    assert set(snapshot) == {"c", "g", "h"}


def test_concurrent_counter_updates():
    counter = Counter("n", "")

    def spin():
        for _ in range(1000):
            counter.inc()

    threads = [threading.Thread(target=spin) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 8000


# ------------------------------------------------ percentile edge cases

def test_percentile_empty_reservoir_is_none():
    histogram = Histogram("lat", "", buckets=(1.0,))
    assert histogram.percentile(50) is None


def test_percentile_single_sample_ring():
    histogram = Histogram("lat", "", buckets=(1.0,))
    histogram.observe(0.25)
    # with one sample every quantile is that sample
    for q in (0, 1, 50, 99, 100):
        assert histogram.percentile(q) == 0.25


def test_percentile_extremes_hit_min_and_max():
    histogram = Histogram("lat", "", buckets=(1.0,))
    for value in (5.0, 1.0, 3.0, 2.0, 4.0):
        histogram.observe(value)
    assert histogram.percentile(0) == 1.0
    assert histogram.percentile(100) == 5.0
    assert histogram.percentile(50) == 3.0


def test_percentile_out_of_range_raises():
    histogram = Histogram("lat", "", buckets=(1.0,))
    histogram.observe(1.0)
    with pytest.raises(ValueError):
        histogram.percentile(-0.1)
    with pytest.raises(ValueError):
        histogram.percentile(100.1)


def test_percentile_after_reservoir_wraparound():
    from repro.service.metrics import RESERVOIR_SIZE

    histogram = Histogram("lat", "", buckets=(1.0,))
    # fill the ring completely, then overwrite the oldest quarter: the
    # reservoir must hold exactly the most recent RESERVOIR_SIZE samples
    for value in range(RESERVOIR_SIZE):
        histogram.observe(float(value))
    overwrite = RESERVOIR_SIZE // 4
    for value in range(RESERVOIR_SIZE, RESERVOIR_SIZE + overwrite):
        histogram.observe(float(value))
    assert histogram.count == RESERVOIR_SIZE + overwrite
    # oldest surviving sample is `overwrite`, newest is the last observed
    assert histogram.percentile(0) == float(overwrite)
    assert histogram.percentile(100) == float(RESERVOIR_SIZE + overwrite - 1)
    # the ring size never exceeds the reservoir bound
    assert len(histogram._ring) == RESERVOIR_SIZE
