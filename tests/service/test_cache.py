"""LRU budgets, disk atomicity and tiered promotion."""

from __future__ import annotations

import os

import pytest

from repro.service.cache import (DiskCache, MemoryLRUCache, TieredCache,
                                 _safe_key, default_cache_dir)
from repro.service.metrics import MetricsRegistry

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


def test_memory_lru_hit_and_miss():
    cache = MemoryLRUCache(byte_budget=1024)
    assert cache.get(KEY_A) is None
    cache.put(KEY_A, b"payload")
    assert cache.get(KEY_A) == b"payload"
    assert len(cache) == 1


def test_memory_lru_evicts_by_byte_budget():
    cache = MemoryLRUCache(byte_budget=20)
    cache.put(KEY_A, b"x" * 10)
    cache.put(KEY_B, b"y" * 10)
    cache.put(KEY_C, b"z" * 10)  # 30 bytes resident: A must go
    assert cache.get(KEY_A) is None
    assert cache.get(KEY_B) == b"y" * 10
    assert cache.get(KEY_C) == b"z" * 10


def test_memory_lru_recency_protects_entries():
    cache = MemoryLRUCache(byte_budget=20)
    cache.put(KEY_A, b"x" * 10)
    cache.put(KEY_B, b"y" * 10)
    cache.get(KEY_A)  # touch A so B is now the LRU victim
    cache.put(KEY_C, b"z" * 10)
    assert cache.get(KEY_A) == b"x" * 10
    assert cache.get(KEY_B) is None


def test_memory_lru_rejects_oversized_entry():
    cache = MemoryLRUCache(byte_budget=8)
    cache.put(KEY_A, b"way too big for the budget")
    assert cache.get(KEY_A) is None
    assert len(cache) == 0


def test_disk_cache_round_trip(tmp_path):
    cache = DiskCache(root=str(tmp_path))
    assert cache.get(KEY_A) is None
    cache.put(KEY_A, b'{"answer": 42}')
    assert cache.get(KEY_A) == b'{"answer": 42}'
    # two-level fan-out layout: <root>/aa/aaaa...json
    assert os.path.exists(os.path.join(str(tmp_path), "aa",
                                       KEY_A + ".json"))
    assert len(cache) == 1


def test_disk_cache_overwrite_is_atomic_no_tmp_left(tmp_path):
    cache = DiskCache(root=str(tmp_path))
    cache.put(KEY_A, b"first")
    cache.put(KEY_A, b"second")
    assert cache.get(KEY_A) == b"second"
    shard = os.path.join(str(tmp_path), "aa")
    assert all(not name.endswith(".tmp") for name in os.listdir(shard))


def test_disk_cache_unwritable_root_degrades_to_cache_off(tmp_path):
    blocked = tmp_path / "blocked"
    blocked.write_text("a file, not a directory")
    cache = DiskCache(root=str(blocked))
    cache.put(KEY_A, b"payload")  # must not raise
    assert cache.get(KEY_A) is None


def test_tiered_promotes_disk_hits_into_memory(tmp_path):
    metrics = MetricsRegistry()
    disk = DiskCache(root=str(tmp_path))
    disk.put(KEY_A, b"cold")
    cache = TieredCache(MemoryLRUCache(1024), disk, metrics=metrics)
    assert cache.get(KEY_A) == b"cold"       # disk hit, promoted
    assert cache.memory.get(KEY_A) == b"cold"
    assert cache.get(KEY_B) is None
    snapshot = metrics.snapshot()
    assert snapshot["cache_hits"]["value"] == 1
    assert snapshot["cache_misses"]["value"] == 1


def test_tiered_write_through(tmp_path):
    cache = TieredCache(MemoryLRUCache(1024), DiskCache(root=str(tmp_path)))
    cache.put(KEY_A, b"both layers")
    assert cache.memory.get(KEY_A) == b"both layers"
    assert cache.disk.get(KEY_A) == b"both layers"
    assert cache.stats() == {"memory_entries": 1, "disk_entries": 1}


def test_standard_factory_honours_persistence_flag(tmp_path):
    persistent = TieredCache.standard(cache_dir=str(tmp_path))
    assert persistent.disk is not None
    ephemeral = TieredCache.standard(persistent=False)
    assert ephemeral.disk is None


def test_safe_key_namespacing_and_rejection():
    assert _safe_key("warm_" + KEY_A) == "warm_" + KEY_A
    with pytest.raises(ValueError):
        _safe_key("../escape")
    with pytest.raises(ValueError):
        _safe_key("")


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    assert default_cache_dir() == str(tmp_path / "custom")
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == str(tmp_path / "xdg" / "repro")
