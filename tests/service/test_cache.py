"""LRU budgets, disk atomicity, envelopes, sweeps, tiered promotion."""

from __future__ import annotations

import os
import threading

import pytest

from repro.service.cache import (DiskCache, MemoryLRUCache, TieredCache,
                                 _safe_key, decode_entry, default_cache_dir,
                                 encode_entry)
from repro.service.metrics import MetricsRegistry

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


def test_memory_lru_hit_and_miss():
    cache = MemoryLRUCache(byte_budget=1024)
    assert cache.get(KEY_A) is None
    cache.put(KEY_A, b"payload")
    assert cache.get(KEY_A) == b"payload"
    assert len(cache) == 1


def test_memory_lru_evicts_by_byte_budget():
    cache = MemoryLRUCache(byte_budget=20)
    cache.put(KEY_A, b"x" * 10)
    cache.put(KEY_B, b"y" * 10)
    cache.put(KEY_C, b"z" * 10)  # 30 bytes resident: A must go
    assert cache.get(KEY_A) is None
    assert cache.get(KEY_B) == b"y" * 10
    assert cache.get(KEY_C) == b"z" * 10


def test_memory_lru_recency_protects_entries():
    cache = MemoryLRUCache(byte_budget=20)
    cache.put(KEY_A, b"x" * 10)
    cache.put(KEY_B, b"y" * 10)
    cache.get(KEY_A)  # touch A so B is now the LRU victim
    cache.put(KEY_C, b"z" * 10)
    assert cache.get(KEY_A) == b"x" * 10
    assert cache.get(KEY_B) is None


def test_memory_lru_rejects_oversized_entry():
    cache = MemoryLRUCache(byte_budget=8)
    cache.put(KEY_A, b"way too big for the budget")
    assert cache.get(KEY_A) is None
    assert len(cache) == 0


# -------------------------------------------------- memory LRU accounting


def test_memory_lru_overwrite_same_key_releases_old_bytes():
    """Overwriting a key must not double-count its old payload — before
    the accounting fix, repeated overwrites inflated ``_bytes`` until the
    budget spuriously evicted everything."""
    metrics = MetricsRegistry()
    cache = MemoryLRUCache(byte_budget=100, metrics=metrics)
    for _ in range(50):
        cache.put(KEY_A, b"x" * 40)  # 50 overwrites, 40 resident bytes
    cache.put(KEY_B, b"y" * 40)      # fits alongside: 80 <= 100
    assert cache.get(KEY_A) == b"x" * 40
    assert cache.get(KEY_B) == b"y" * 40
    snapshot = metrics.snapshot()
    assert snapshot["cache_memory_bytes"]["value"] == 80
    assert snapshot["cache_memory_evictions"]["value"] == 0


def test_memory_lru_eviction_counter_matches_entries_dropped():
    metrics = MetricsRegistry()
    cache = MemoryLRUCache(byte_budget=30, metrics=metrics)
    cache.put(KEY_A, b"x" * 10)
    cache.put(KEY_B, b"y" * 10)
    cache.put(KEY_C, b"z" * 30)  # must evict both A and B in one put
    assert len(cache) == 1
    snapshot = metrics.snapshot()
    assert snapshot["cache_memory_evictions"]["value"] == 2
    assert snapshot["cache_memory_bytes"]["value"] == 30


def test_memory_lru_concurrent_get_put_hammer():
    """Threaded get/put storm: no exceptions, and the byte accounting
    still balances exactly against the surviving entries."""
    cache = MemoryLRUCache(byte_budget=2048)  # small: evictions do happen
    keys = [f"{c}" * 64 for c in "abcdefgh"]
    errors = []

    def hammer(worker: int) -> None:
        try:
            for step in range(400):
                key = keys[(worker + step) % len(keys)]
                if step % 3 == 0:
                    cache.get(key)
                else:
                    cache.put(key, bytes([worker]) * (16 + step % 512))
        except BaseException as exc:  # pragma: no cover - the assertion
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(index,))
               for index in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    with cache._lock:
        actual = sum(len(payload) for payload in cache._entries.values())
        assert cache._bytes == actual
        assert cache._bytes <= cache.byte_budget


# ------------------------------------------------------- entry envelope


def test_envelope_round_trip():
    payload = b'{"answer": 42}'
    blob = encode_entry(payload)
    assert blob.startswith(b"repro-cache-v1 ")
    assert decode_entry(blob) == payload


def test_envelope_rejects_foreign_truncated_and_rotted_blobs():
    payload = b"x" * 256
    blob = encode_entry(payload)
    assert decode_entry(b"not ours at all") is None          # wrong magic
    assert decode_entry(blob[: len(blob) // 2]) is None      # truncated
    assert decode_entry(blob[:-1]) is None                   # short payload
    flipped = blob[:-10] + bytes([blob[-10] ^ 0xFF]) + blob[-9:]
    assert decode_entry(flipped) is None                     # bit rot
    assert decode_entry(b"repro-cache-v1 {\"len") is None    # torn header


def test_disk_cache_round_trip(tmp_path):
    cache = DiskCache(root=str(tmp_path))
    assert cache.get(KEY_A) is None
    cache.put(KEY_A, b'{"answer": 42}')
    assert cache.get(KEY_A) == b'{"answer": 42}'
    # namespace + fan-out layout: <root>/exact/aa/aaaa...entry
    assert os.path.exists(os.path.join(str(tmp_path), "exact", "aa",
                                       KEY_A + ".entry"))
    assert len(cache) == 1


def test_disk_cache_overwrite_is_atomic_no_tmp_left(tmp_path):
    cache = DiskCache(root=str(tmp_path))
    cache.put(KEY_A, b"first")
    cache.put(KEY_A, b"second")
    assert cache.get(KEY_A) == b"second"
    shard = os.path.join(str(tmp_path), "exact", "aa")
    assert all(not name.endswith(".tmp") for name in os.listdir(shard))


def test_disk_cache_truncated_entry_is_a_miss_and_unlinked(tmp_path):
    """Satellite regression: a torn write (e.g. the box lost power mid
    -flush) must surface as a cache *miss*, never as a half-payload served
    to a client — and the poisoned file must be dropped so the next
    full-fidelity write repopulates it."""
    metrics = MetricsRegistry()
    cache = DiskCache(root=str(tmp_path), metrics=metrics)
    cache.put(KEY_A, b'{"answer": 42, "padding": "' + b"p" * 256 + b'"}')
    path = os.path.join(str(tmp_path), "exact", "aa", KEY_A + ".entry")
    with open(path, "rb") as fh:
        blob = fh.read()
    with open(path, "wb") as fh:
        fh.write(blob[: len(blob) // 2])  # torn mid-payload

    assert cache.get(KEY_A) is None
    assert not os.path.exists(path)  # unlinked, not left to re-serve
    assert metrics.snapshot()["cache_disk_corrupt"]["value"] == 1

    cache.put(KEY_A, b'{"answer": 43}')  # repopulation works
    assert cache.get(KEY_A) == b'{"answer": 43}'


def test_disk_cache_bit_rotted_entry_is_a_miss(tmp_path):
    cache = DiskCache(root=str(tmp_path))
    cache.put(KEY_A, b"z" * 128)
    path = os.path.join(str(tmp_path), "exact", "aa", KEY_A + ".entry")
    with open(path, "rb") as fh:
        blob = bytearray(fh.read())
    blob[-1] ^= 0x01  # flip one payload bit; length still matches
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    assert cache.get(KEY_A) is None


def test_disk_cache_namespaces_exact_and_warm_separately(tmp_path):
    cache = DiskCache(root=str(tmp_path))
    cache.put(KEY_A, b"exact result")
    cache.put("warm_" + KEY_B, b"warm snapshot")
    assert cache.get(KEY_A) == b"exact result"
    assert cache.get("warm_" + KEY_B) == b"warm snapshot"
    assert os.path.exists(os.path.join(str(tmp_path), "exact", "aa",
                                       KEY_A + ".entry"))
    # warm keys shard by the *hash* after the prefix, not by "wa"
    assert os.path.exists(os.path.join(str(tmp_path), "warm", "bb",
                                       "warm_" + KEY_B + ".entry"))
    assert len(cache) == 2


def test_disk_cache_shared_root_across_instances(tmp_path):
    """Two DiskCache objects on one root model two server processes
    sharing the tier: a write by one is a byte-identical hit in the
    other, with no handshake between them."""
    writer = DiskCache(root=str(tmp_path))
    reader = DiskCache(root=str(tmp_path))
    writer.put(KEY_A, b"published once")
    assert reader.get(KEY_A) == b"published once"
    # racing same-key writers: last rename wins, both are full entries
    reader.put(KEY_A, b"second writer")
    assert writer.get(KEY_A) == b"second writer"


def test_disk_cache_sweep_evicts_oldest_first(tmp_path):
    metrics = MetricsRegistry()
    cache = DiskCache(root=str(tmp_path), metrics=metrics)
    for index, key in enumerate((KEY_A, "warm_" + KEY_B, KEY_C)):
        cache.put(key, bytes([65 + index]) * 100)
        # deterministic ages without sleeping: A oldest, C newest
        os.utime(cache._path(key), (1000.0 + index, 1000.0 + index))
    entry_size = os.path.getsize(cache._path(KEY_C))

    removed = cache.sweep(byte_budget=2 * entry_size)
    assert removed == 1
    assert cache.get(KEY_A) is None             # oldest went first
    assert cache.get("warm_" + KEY_B) is not None
    assert cache.get(KEY_C) is not None
    assert metrics.snapshot()["cache_disk_evictions"]["value"] == 1
    assert cache.sweep(byte_budget=2 * entry_size) == 0  # idempotent


def test_disk_cache_sweep_tolerates_racing_deleters(tmp_path):
    cache = DiskCache(root=str(tmp_path))
    cache.put(KEY_A, b"x" * 100)
    cache.put(KEY_B, b"y" * 100)
    os.utime(cache._path(KEY_A), (1000.0, 1000.0))
    os.unlink(cache._path(KEY_A))  # a concurrent sweeper won the race
    assert cache.sweep(byte_budget=1) >= 1  # does not raise, still sweeps
    assert len(cache) == 0


def test_disk_cache_put_triggers_opportunistic_sweep(tmp_path):
    cache = DiskCache(root=str(tmp_path), byte_budget=1, sweep_every=4)
    for index in range(4):
        cache.put(chr(ord("a") + index) * 64, b"x" * 50)
    # the 4th put crossed sweep_every and the 1-byte budget keeps nothing
    assert cache.total_bytes() == 0


def test_disk_cache_unwritable_root_degrades_to_cache_off(tmp_path):
    blocked = tmp_path / "blocked"
    blocked.write_text("a file, not a directory")
    cache = DiskCache(root=str(blocked))
    cache.put(KEY_A, b"payload")  # must not raise
    assert cache.get(KEY_A) is None


def test_tiered_promotes_disk_hits_into_memory(tmp_path):
    metrics = MetricsRegistry()
    disk = DiskCache(root=str(tmp_path))
    disk.put(KEY_A, b"cold")
    cache = TieredCache(MemoryLRUCache(1024), disk, metrics=metrics)
    assert cache.get(KEY_A) == b"cold"       # disk hit, promoted
    assert cache.memory.get(KEY_A) == b"cold"
    assert cache.get(KEY_B) is None
    snapshot = metrics.snapshot()
    assert snapshot["cache_hits"]["value"] == 1
    assert snapshot["cache_misses"]["value"] == 1


def test_tiered_write_through(tmp_path):
    cache = TieredCache(MemoryLRUCache(1024), DiskCache(root=str(tmp_path)))
    cache.put(KEY_A, b"both layers")
    assert cache.memory.get(KEY_A) == b"both layers"
    assert cache.disk.get(KEY_A) == b"both layers"
    assert cache.stats() == {"memory_entries": 1, "disk_entries": 1}


def test_standard_factory_honours_persistence_flag(tmp_path):
    persistent = TieredCache.standard(cache_dir=str(tmp_path))
    assert persistent.disk is not None
    ephemeral = TieredCache.standard(persistent=False)
    assert ephemeral.disk is None


def test_safe_key_namespacing_and_rejection():
    assert _safe_key("warm_" + KEY_A) == "warm_" + KEY_A
    with pytest.raises(ValueError):
        _safe_key("../escape")
    with pytest.raises(ValueError):
        _safe_key("")


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    assert default_cache_dir() == str(tmp_path / "custom")
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == str(tmp_path / "xdg" / "repro")
