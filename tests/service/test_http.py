"""End-to-end HTTP tests driving a real in-process server."""

from __future__ import annotations

import json

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServerThread

FAST_BODY = {"cdfg": {"bench": "ewf"}, "length": 17, "seed": 2,
             "improve": {"max_trials": 1, "moves_per_trial": 60}}


@pytest.fixture(scope="module")
def service_url():
    with ServerThread(workers=2, persistent_cache=False) as url:
        ServiceClient(url).wait_until_healthy()
        yield url


def test_healthz(service_url):
    health = ServiceClient(service_url).healthz()
    assert health["status"] == "ok"
    assert health["uptime_s"] >= 0
    assert "cache" in health


def test_uptime_survives_wall_clock_step(monkeypatch):
    """Regression: uptime_s was ``time.time() - started_at``, so an NTP
    step backwards reported a negative uptime.  It must come from
    monotonic stamps (the wall-clock ``started_at`` stays display-only)."""
    import time as time_mod

    from repro.service.server import AllocationService

    service = AllocationService(workers=1, persistent_cache=False)
    try:
        real_time = time_mod.time
        monkeypatch.setattr(time_mod, "time",
                            lambda: real_time() - 3600.0)
        _status, health = service.healthz()
        assert 0.0 <= health["uptime_s"] < 60.0
    finally:
        service.close()


def test_allocate_sync_then_cached(service_url):
    client = ServiceClient(service_url)
    first = client.allocate(dict(FAST_BODY))
    assert first["status"] == "done"
    assert first["cached"] is False
    assert first["degraded"] is False
    assert first["result"]["binding"]["type"] == "binding"

    second = client.allocate(dict(FAST_BODY))
    assert second["cached"] is True
    assert json.dumps(second["result"], sort_keys=True) == \
        json.dumps(first["result"], sort_keys=True)
    # the job is addressable afterwards, too
    status = client.job(first["job_id"])
    assert status["status"] == "done"


def test_allocate_async_then_poll(service_url):
    client = ServiceClient(service_url)
    body = dict(FAST_BODY, seed=77)
    envelope = client.submit(body)
    assert envelope["job_id"]
    assert envelope["status"] in ("queued", "running")
    final = client.wait(envelope["job_id"], timeout=120)
    assert final["status"] == "done"
    assert final["result"]["cost"]["total"] > 0


def test_deadline_degraded_over_http(service_url):
    client = ServiceClient(service_url)
    body = dict(FAST_BODY, seed=31, deadline_ms=1, restarts=3,
                improve={"max_trials": 50, "moves_per_trial": 5000})
    response = client.allocate(body)
    # degraded still means HTTP 200 + a usable best-so-far result
    assert response["status"] == "done"
    assert response["degraded"] is True
    assert response["result"]["binding"]["type"] == "binding"
    assert response["result"]["telemetry"]["runs"] >= 1


def test_metricsz_raw_and_condensed(service_url):
    client = ServiceClient(service_url)
    raw = client.metricsz()
    assert raw["jobs_submitted"]["kind"] == "counter"
    condensed = client.metricsz(condensed=True)
    assert set(condensed) == {"requests", "jobs", "cache", "latency"}
    assert condensed["jobs"]["completed"] >= 1
    assert condensed["cache"]["hit_rate"] is not None


def test_bad_request_is_400(service_url):
    client = ServiceClient(service_url)
    with pytest.raises(ServiceError) as excinfo:
        client.allocate({"cdfg": {"bench": "ewf"}, "bogus_field": 1})
    assert excinfo.value.status == 400
    assert "unknown request fields" in str(excinfo.value)


def test_unknown_job_is_404(service_url):
    with pytest.raises(ServiceError) as excinfo:
        ServiceClient(service_url).job("feedfacedeadbeef")
    assert excinfo.value.status == 404


def test_unknown_route_is_404(service_url):
    with pytest.raises(ServiceError) as excinfo:
        ServiceClient(service_url)._expect_2xx(
            *ServiceClient(service_url)._call("GET", "/nope"))
    assert excinfo.value.status == 404


def test_cancel_unknown_job_is_404(service_url):
    with pytest.raises(ServiceError) as excinfo:
        ServiceClient(service_url).cancel("feedfacedeadbeef")
    assert excinfo.value.status == 404


def test_cli_smoke_command_passes():
    from repro.service.__main__ import main
    assert main(["smoke"]) == 0
