"""Unit tests for table rendering and the figure/ablation drivers."""

import pytest

from repro.analysis import (ablation_anneal, ablation_features,
                            figure3_experiment, figure4_experiment,
                            passthrough_demo, render_table,
                            value_split_demo)


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["name", "n"], [["alpha", 1], ["b", 22]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]

    def test_handles_none(self):
        text = render_table(["a"], [[None]])
        assert text.split("\n")[-1] == ""  # None renders as empty cell

    def test_numeric_right_aligned(self):
        text = render_table(["col"], [["123"], ["4"]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("123")
        assert rows[1].endswith("  4")


class TestFigureDemos:
    def test_figure3_passthrough_saves_exactly_one_mux(self):
        demo = passthrough_demo()
        assert demo["direct_mux"] - demo["pt_mux"] == 1
        assert demo["pt_wires"] < demo["direct_wires"]

    def test_figure4_split_saves_exactly_one_mux(self):
        demo = value_split_demo()
        assert demo["single_mux"] - demo["split_mux"] == 1

    def test_experiment_tables_render(self):
        for table in (figure3_experiment(), figure4_experiment()):
            text = table.render()
            assert "equiv 2-1 mux" in text
            assert len(table.rows) == 2


class TestAblations:
    def test_anneal_ablation_runs(self):
        table = ablation_anneal(fast=True)
        assert len(table.rows) == 2
        names = [row[0] for row in table.rows]
        assert "iterative improvement" in names
        assert "simulated annealing" in names

    def test_feature_ablation_monotone_enough(self):
        """Adding model features must not lose more than noise allows —
        with the traditional warm start each variant starts at the same
        baseline, so mux counts must be non-increasing within 1."""
        table = ablation_features(fast=True)
        muxes = [row[1] for row in table.rows]
        assert muxes[-1] <= muxes[0] + 1
