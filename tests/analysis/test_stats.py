"""Unit tests for run-to-run statistics."""

import pytest

from repro.analysis.stats import SeedStudy, seed_study
from repro.bench import hal_diffeq
from repro.datapath.units import HardwareSpec
from repro.sched.explore import schedule_graph
from repro.core import ImproveConfig


class TestSeedStudyMath:
    def study(self):
        return SeedStudy(label="x", mux_counts=[5, 5, 6, 7, 9])

    def test_basic_stats(self):
        s = self.study()
        assert s.best == 5 and s.worst == 9
        assert s.mean == pytest.approx(6.4)
        assert s.spread == 4

    def test_expected_best_of_one_is_mean(self):
        s = self.study()
        assert s.expected_best_of(1) == pytest.approx(s.mean)

    def test_expected_best_of_decreases(self):
        s = self.study()
        values = [s.expected_best_of(k) for k in (1, 2, 4, 8)]
        assert values == sorted(values, reverse=True)
        assert values[-1] >= s.best

    def test_expected_best_of_large_k_approaches_best(self):
        s = self.study()
        assert s.expected_best_of(200) == pytest.approx(s.best, abs=0.01)

    def test_restarts_for_near_best(self):
        # 3/5 runs are within best+1 -> p=0.6; P(hit in k) = 1-0.4^k
        s = self.study()
        k = s.restarts_for_near_best(tolerance=1, confidence=0.9)
        assert k == 3  # 1-0.4^3 = 0.936 >= 0.9, 1-0.4^2 = 0.84 < 0.9

    def test_all_good_means_one_restart(self):
        s = SeedStudy(label="x", mux_counts=[4, 4, 4])
        assert s.restarts_for_near_best() == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            self.study().expected_best_of(0)

    def test_summary(self):
        assert "best 5" in self.study().summary()


class TestSeedStudyRun:
    def test_runs_on_diffeq(self):
        graph = hal_diffeq()
        schedule = schedule_graph(graph, HardwareSpec.non_pipelined(), 7)
        study = seed_study(
            graph, schedule, seeds=range(3),
            config=ImproveConfig(max_trials=2, moves_per_trial=100))
        assert len(study.mux_counts) == 3
        assert study.best <= study.worst
        assert "salsa" in study.label
