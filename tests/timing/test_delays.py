"""Unit tests for the per-unit delay library."""

import pytest

from repro.errors import DatapathError
from repro.io import delay_spec_from_json, delay_spec_to_json
from repro.timing.delays import (DEFAULT_DELAYS, DEFAULT_OP_DELAYS,
                                 DelaySpec, delay_spec_from_dict,
                                 delay_spec_to_dict)


class TestDelaySpec:
    def test_defaults_cover_every_semantic_kind(self):
        from repro.cdfg.interp import OP_SEMANTICS
        for kind in OP_SEMANTICS:
            assert kind in DEFAULT_OP_DELAYS

    def test_op_delay_falls_back_to_default(self):
        spec = DelaySpec(default_op_delay=2.5)
        assert spec.op_delay("add") == DEFAULT_OP_DELAYS["add"]
        assert spec.op_delay("no-such-kind") == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(DatapathError):
            DelaySpec(mux_level=-0.1)
        with pytest.raises(DatapathError):
            DelaySpec(op_delays={"add": -1.0})

    def test_non_finite_delay_rejected(self):
        with pytest.raises(DatapathError):
            DelaySpec(register_setup=float("nan"))
        with pytest.raises(DatapathError):
            DelaySpec(register_clk_q=float("inf"))

    def test_bool_is_not_a_delay(self):
        with pytest.raises(DatapathError):
            DelaySpec(mux_level=True)

    def test_default_instance_is_valid(self):
        assert DEFAULT_DELAYS.mux_level > 0
        assert DEFAULT_DELAYS.op_delay("mul") > DEFAULT_DELAYS.op_delay("add")


class TestCodec:
    def test_dict_round_trip(self):
        spec = DelaySpec(mux_level=0.3, op_delays={"add": 1.5},
                         default_op_delay=0.7)
        again = delay_spec_from_dict(delay_spec_to_dict(spec))
        assert again == spec

    def test_json_round_trip(self):
        spec = DelaySpec(register_clk_q=0.2, wire_fanout=0.05)
        text = delay_spec_to_json(spec)
        again = delay_spec_from_json(text)
        assert again == spec

    def test_json_is_canonical(self):
        a = delay_spec_to_json(DEFAULT_DELAYS)
        b = delay_spec_to_json(DelaySpec())
        assert a == b

    def test_unknown_field_rejected(self):
        data = delay_spec_to_dict(DEFAULT_DELAYS)
        data["turbo"] = 1.0
        with pytest.raises(DatapathError):
            delay_spec_from_dict(data)

    def test_wrong_payload_type_rejected(self):
        with pytest.raises(DatapathError):
            delay_spec_from_dict({"op_delays": "fast"})
