"""Equal-budget experiment: the latency weight shortens the clock.

The acceptance experiment of the timing subsystem — rerun the bench
pipeline for the mux-heavy zoo families twice with the *same* budget,
seed and schedule, once at ``latency=0`` (the committed weight-0
baseline) and once with the latency weight on, and require a strict
``clock_period_ns`` reduction on at least three families.

Families: by actual mux pressure the heavy ones are ``fft`` (26 muxes),
``lattice`` (21), ``iir`` (17) and ``loopy``; ``fanout`` and ``branchy``
despite the names carry only ~3 muxes whose depth is structurally forced,
so their clock has no slack for the weight to claim.
"""

import pytest

from repro.bench.runner import FAST_BUDGET
from repro.bench.zoo import Scenario
from repro.core import SalsaAllocator
from repro.datapath.cost import CostWeights
from repro.rng import SeedStream
from repro.sched.asap import asap_length
from repro.sched.explore import schedule_graph
from repro.timing.sta import analyze_binding

FAMILIES = ("fft", "iir", "lattice", "loopy")
LATENCY_WEIGHT = 10.0


def _allocate(family: str, latency: float):
    scenario = Scenario.make(family, seed=0)
    graph = scenario.build()
    spec = scenario.spec()
    definition = scenario.definition
    length = asap_length(graph, spec) + definition.length_slack
    schedule = schedule_graph(graph, spec, length=length, method="list",
                              label=scenario.name)
    registers = schedule.min_registers() + definition.extra_registers
    allocator = SalsaAllocator(
        seed=SeedStream(scenario.seed).child(definition.fid, 0xB),
        restarts=2, config=FAST_BUDGET,
        weights=CostWeights(latency=latency))
    return allocator.allocate(graph, schedule=schedule, spec=spec,
                              registers=registers)


class TestLatencyWeight:
    def test_equal_budget_search_shortens_the_clock(self):
        improved = []
        for family in FAMILIES:
            base = analyze_binding(_allocate(family, 0.0).binding)
            timed = analyze_binding(
                _allocate(family, LATENCY_WEIGHT).binding)
            if timed.clock_period_ns < base.clock_period_ns:
                improved.append(family)
        assert len(improved) >= 3, (
            f"latency weight {LATENCY_WEIGHT} only improved {improved}")

    def test_weight_zero_total_ignores_depth(self):
        result = _allocate("loopy", 0.0)
        weights = CostWeights()
        expected = (weights.fu * result.cost.fu_area +
                    weights.register * result.cost.register_count +
                    weights.mux * result.cost.mux_count +
                    weights.wire * result.cost.wire_count)
        assert result.cost.total == expected

    def test_weighted_total_charges_per_depth_level(self):
        result = _allocate("loopy", LATENCY_WEIGHT)
        depth = result.cost.mux_depth
        zero = CostWeights()
        base_total = (zero.fu * result.cost.fu_area +
                      zero.register * result.cost.register_count +
                      zero.mux * result.cost.mux_count +
                      zero.wire * result.cost.wire_count)
        assert result.cost.total == pytest.approx(
            base_total + LATENCY_WEIGHT * depth)
