"""RTL round-trip verifier tests."""

import pytest

from repro.errors import DatapathError
from repro.timing import rtlcheck
from repro.timing.rtlcheck import (RoundTripReport, roundtrip_binding,
                                   roundtrip_family, roundtrip_zoo)


def _small_binding():
    from repro.bench import elliptic_wave_filter
    from repro.core import SalsaAllocator
    from repro.core.improve import ImproveConfig

    graph = elliptic_wave_filter()
    result = SalsaAllocator(
        seed=0, restarts=1,
        config=ImproveConfig(max_trials=1,
                             moves_per_trial=100)).allocate(graph)
    return result.binding


class TestRoundTripBinding:
    def test_clean_binding_round_trips(self):
        report = roundtrip_binding(_small_binding(), name="ewf",
                                   iterations=3, seed=5)
        assert report.ok
        assert report.outputs_checked > 0
        assert report.max_abs_err <= 1e-9
        assert report.mismatches == []
        assert report.rtl_problems == []

    def test_report_serializes(self):
        report = roundtrip_binding(_small_binding(), name="ewf",
                                   iterations=1)
        data = report.to_dict()
        assert data["ok"] is True
        assert data["name"] == "ewf"
        assert data["cycles"] > 0

    def test_divergence_is_collected_not_raised(self, monkeypatch):
        binding = _small_binding()
        real = rtlcheck.run_iterations

        def corrupted(graph, streams, state, iterations):
            results = real(graph, streams, state, iterations)
            for outputs in results:
                for key in outputs:
                    outputs[key] += 1.0  # golden model deliberately wrong
            return results

        monkeypatch.setattr(rtlcheck, "run_iterations", corrupted)
        report = roundtrip_binding(binding, name="ewf", iterations=2)
        assert not report.ok
        # every sampled output of every iteration diverges, and all of
        # them are reported (unlike verify_binding's raise-on-first)
        assert len(report.mismatches) == report.outputs_checked
        assert "mismatches" in str(report)

    def test_rtl_lint_can_be_skipped(self):
        report = roundtrip_binding(_small_binding(), iterations=1,
                                   emit_rtl=False)
        assert report.rtl_problems == []


class TestZooRoundTrip:
    def test_one_family(self):
        report = roundtrip_family("fanout", iterations=2)
        assert isinstance(report, RoundTripReport)
        assert report.family == "fanout"
        assert report.ok

    def test_unknown_family_rejected(self):
        with pytest.raises(DatapathError):
            roundtrip_family("no-such-family")

    def test_family_filter(self):
        reports = roundtrip_zoo(iterations=1, families=["branchy"])
        assert [r.family for r in reports] == ["branchy"]
        assert all(r.ok for r in reports)
