"""Static timing analyzer tests on hand-computable netlists.

Every expected clock period here is worked out by hand from the default
:class:`~repro.timing.delays.DelaySpec`:

* register clk->Q 0.15 ns, setup 0.1 ns
* one mux-tree level 0.2 ns, fanout penalty 0.02 ns per extra reader
* add 1.0 ns, mul 3.2 ns (evenly pipelined across its span)
"""

import pytest

from repro.errors import DatapathError
from repro.datapath.netlist import (IssueEntry, Mux, Netlist, OutEntry,
                                    WriteEntry)
from repro.timing.delays import DEFAULT_DELAYS, DelaySpec
from repro.timing.sta import (analyze_netlist, ceil_log2, netlist_mux_depth)


def _issue(step, fu, op, kind, srcs, ports, end_step=None):
    return IssueEntry(step=step, fu=fu, op=op, kind=kind,
                      operand_srcs=tuple(srcs), ports=tuple(ports),
                      end_step=step if end_step is None else end_step)


def single_fu_chain() -> Netlist:
    """Ra, Rb -> add1 -> Rc in one control step; no muxes anywhere."""
    return Netlist(
        name="chain", length=1, cyclic=False,
        fus=["add1"], regs=["Ra", "Rb", "Rc"],
        muxes=[],
        connections=[(("reg_out", "Ra"), ("fu_in", "add1", 0)),
                     (("reg_out", "Rb"), ("fu_in", "add1", 1)),
                     (("fu_out", "add1"), ("reg_in", "Rc"))],
        issues=[_issue(0, "add1", "o1", "add",
                       [("reg", "Ra"), ("reg", "Rb")], [0, 1])],
        writes=[WriteEntry(step=0, reg="Rc",
                           source=("op_result", "o1"), value="v1")],
    )


def mux_tree_41() -> Netlist:
    """A balanced 4:1 mux on add1 port 0 -> two tree levels of delay."""
    sources = tuple(("reg_out", f"R{i}") for i in range(4))
    connections = [(src, ("fu_in", "add1", 0)) for src in sources]
    connections += [(("reg_out", "R4"), ("fu_in", "add1", 1)),
                    (("fu_out", "add1"), ("reg_in", "Rc"))]
    return Netlist(
        name="mux41", length=1, cyclic=False,
        fus=["add1"], regs=[f"R{i}" for i in range(5)] + ["Rc"],
        muxes=[Mux(sink=("fu_in", "add1", 0), sources=sources)],
        connections=connections,
        issues=[_issue(0, "add1", "o1", "add",
                       [("reg", "R0"), ("reg", "R4")], [0, 1])],
        writes=[WriteEntry(step=0, reg="Rc",
                           source=("op_result", "o1"), value="v1")],
    )


def pipelined_loop() -> Netlist:
    """A 2-step cyclic schedule with one multiply spanning both steps."""
    return Netlist(
        name="piped", length=2, cyclic=True,
        fus=["mult1"], regs=["Ra", "Rb", "Rc"],
        muxes=[],
        connections=[(("reg_out", "Ra"), ("fu_in", "mult1", 0)),
                     (("reg_out", "Rb"), ("fu_in", "mult1", 1)),
                     (("fu_out", "mult1"), ("reg_in", "Rc"))],
        issues=[_issue(0, "mult1", "m1", "mul",
                       [("reg", "Ra"), ("reg", "Rb")], [0, 1], end_step=1)],
        writes=[WriteEntry(step=1, reg="Rc",
                           source=("op_result", "m1"), value="v1")],
    )


class TestCeilLog2:
    def test_values(self):
        assert [ceil_log2(n) for n in range(9)] == \
            [0, 0, 1, 2, 2, 3, 3, 3, 3]


class TestSingleFuChain:
    def test_exact_clock_period(self):
        report = analyze_netlist(single_fu_chain())
        # clk->Q + add + setup = 0.15 + 1.0 + 0.1
        assert report.clock_period_ns == pytest.approx(1.25, abs=1e-12)
        assert report.critical_step == 0
        assert report.mux_depth_max == 0
        assert report.mux_depth_total == 0

    def test_path_names_the_pins(self):
        report = analyze_netlist(single_fu_chain())
        assert report.critical_path[0].endswith(".q")
        assert report.critical_path[-1] == "Rc.d"
        assert "add1.out" in report.critical_path


class TestMuxTree:
    def test_two_levels_of_mux_delay(self):
        report = analyze_netlist(mux_tree_41())
        # chain clock + 2 mux levels = 1.25 + 2 * 0.2
        assert report.clock_period_ns == pytest.approx(1.65, abs=1e-12)
        assert report.mux_depth_max == 2
        assert report.mux_depth_total == 2
        assert "mux2(add1.in0)" in report.critical_path

    def test_netlist_mux_depth_matches(self):
        assert netlist_mux_depth(mux_tree_41()) == 2


class TestPipelinedLoop:
    def test_stages_split_the_multiply(self):
        report = analyze_netlist(pipelined_loop())
        # stage = 3.2 / 2 = 1.6; both halves are register-bracketed:
        #   step 0: clk->Q + stage + setup = 0.15 + 1.6 + 0.1
        #   step 1: clk->Q + stage + setup = 0.15 + 1.6 + 0.1
        assert report.steps[0].delay_ns == pytest.approx(1.85, abs=1e-12)
        assert report.steps[1].delay_ns == pytest.approx(1.85, abs=1e-12)
        assert report.clock_period_ns == pytest.approx(1.85, abs=1e-12)
        assert "mult1.p1" in report.steps[0].path

    def test_single_cycle_multiply_is_slower(self):
        netlist = pipelined_loop()
        flat = Netlist(
            name="flat", length=2, cyclic=True,
            fus=netlist.fus, regs=netlist.regs,
            connections=netlist.connections,
            issues=[_issue(0, "mult1", "m1", "mul",
                           [("reg", "Ra"), ("reg", "Rb")], [0, 1])],
            writes=[WriteEntry(step=0, reg="Rc",
                               source=("op_result", "m1"), value="v1")],
        )
        piped = analyze_netlist(netlist)
        unpiped = analyze_netlist(flat)
        # 0.15 + 3.2 + 0.1 vs the 1.85 staged clock
        assert unpiped.clock_period_ns == pytest.approx(3.45, abs=1e-12)
        assert piped.clock_period_ns < unpiped.clock_period_ns


class TestAnalyzer:
    def test_deterministic(self):
        a = analyze_netlist(mux_tree_41())
        b = analyze_netlist(mux_tree_41())
        assert a == b

    def test_custom_delays_scale_the_answer(self):
        fast_mux = DelaySpec(mux_level=0.0)
        report = analyze_netlist(mux_tree_41(), fast_mux)
        assert report.clock_period_ns == pytest.approx(1.25, abs=1e-12)

    def test_empty_schedule_rejected(self):
        empty = Netlist(name="none", length=0, cyclic=False,
                        fus=[], regs=[])
        with pytest.raises(DatapathError):
            analyze_netlist(empty)

    def test_every_step_has_a_hold_floor(self):
        quiet = Netlist(name="quiet", length=3, cyclic=False,
                        fus=[], regs=["Ra"])
        report = analyze_netlist(quiet)
        floor = DEFAULT_DELAYS.register_clk_q + DEFAULT_DELAYS.register_setup
        assert all(s.delay_ns == pytest.approx(floor, abs=1e-12)
                   for s in report.steps)
        assert report.critical_path == ("hold",)

    def test_output_port_sampling_is_timed(self):
        netlist = single_fu_chain()
        netlist.outs.append(OutEntry(step=0, value="v1",
                                     source=("reg", "Rc"), at_end=False))
        report = analyze_netlist(netlist)
        # the out-port sample (0.15 + 0.1) never beats the FU cone
        assert report.clock_period_ns == pytest.approx(1.25, abs=1e-12)


class TestAgainstAllocator:
    def test_ewf_binding_report_is_stable(self):
        from repro.bench import elliptic_wave_filter
        from repro.core import SalsaAllocator
        from repro.core.improve import ImproveConfig
        from repro.timing.sta import analyze_binding

        graph = elliptic_wave_filter()
        result = SalsaAllocator(
            seed=7, restarts=1,
            config=ImproveConfig(max_trials=1,
                                 moves_per_trial=100)).allocate(graph)
        a = analyze_binding(result.binding)
        b = analyze_binding(result.binding)
        assert a == b
        assert a.clock_period_ns > 0
        assert a.mux_depth_total == result.binding.ledger.mux_depth
