"""Unit tests for the multiplexer-merging post-pass."""

from repro.bench import elliptic_wave_filter, hal_diffeq
from repro.datapath.muxmerge import MergedMux, _compatible, merge_muxes
from repro.datapath.netlist import build_netlist
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.core import ImproveConfig, SalsaAllocator
from repro.core.initial import initial_allocation

SPEC = HardwareSpec.non_pipelined()


class TestCompatibility:
    def test_disjoint_schedules_compatible(self):
        assert _compatible({0: "a"}, {1: "b"})

    def test_agreeing_schedules_compatible(self):
        assert _compatible({0: "a", 1: "b"}, {1: "b", 2: "c"})

    def test_conflicting_schedules_incompatible(self):
        assert not _compatible({1: "a"}, {1: "b"})

    def test_symmetric(self):
        a, b = {0: "x", 2: "y"}, {2: "y"}
        assert _compatible(a, b) == _compatible(b, a)


class TestMerge:
    def report(self, length=19):
        graph = elliptic_wave_filter()
        schedule = schedule_graph(graph, SPEC, length)
        result = SalsaAllocator(
            seed=1, restarts=1,
            config=ImproveConfig(max_trials=4, moves_per_trial=200)
        ).allocate(graph, schedule=schedule)
        return merge_muxes(build_netlist(result.binding))

    def test_never_increases_instances(self):
        report = self.report()
        assert report.after_instances <= report.before_instances

    def test_never_increases_eq21(self):
        report = self.report()
        assert report.after_eq21 <= report.before_eq21

    def test_merged_schedules_stay_consistent(self):
        report = self.report()
        for mux in report.merged:
            for step, src in mux.schedule.items():
                assert src in mux.sources

    def test_all_sinks_preserved(self):
        graph = hal_diffeq()
        schedule = schedule_graph(graph, SPEC, 6)
        binding = initial_allocation(
            schedule, SPEC.make_fus(schedule.min_fus()),
            make_registers(schedule.min_registers()))
        netlist = build_netlist(binding)
        report = merge_muxes(netlist)
        before = {m.sink for m in netlist.muxes}
        after = set()
        for mux in report.merged:
            after.update(mux.sinks)
        assert before == after

    def test_str(self):
        assert "mux merge" in str(self.report())
