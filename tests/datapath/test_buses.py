"""Unit tests for the bus-oriented interconnect extension."""

import pytest

from repro.bench import elliptic_wave_filter, hal_diffeq
from repro.datapath.buses import extract_buses
from repro.datapath.netlist import build_netlist
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.core import ImproveConfig, SalsaAllocator
from repro.core.initial import initial_allocation

SPEC = HardwareSpec.non_pipelined()


def report_for(graph, length, improved=False):
    schedule = schedule_graph(graph, SPEC, length)
    if improved:
        result = SalsaAllocator(
            seed=1, restarts=1,
            config=ImproveConfig(max_trials=3, moves_per_trial=200)
        ).allocate(graph, schedule=schedule)
        binding = result.binding
    else:
        binding = initial_allocation(
            schedule, SPEC.make_fus(schedule.min_fus()),
            make_registers(schedule.min_registers() + 1))
    return extract_buses(build_netlist(binding))


class TestBusExtraction:
    def test_buses_fewer_than_wires(self):
        report = report_for(hal_diffeq(), 6)
        assert 0 < report.bus_count < report.point_to_point_wires

    def test_every_connection_routed_exactly_once(self):
        report = report_for(hal_diffeq(), 6)
        routed = [c for bus in report.buses for c in bus.connections]
        assert len(routed) == report.point_to_point_wires
        assert len(set(routed)) == len(routed)

    def test_no_driver_conflicts(self):
        """At every step each bus is driven by at most one source."""
        report = report_for(elliptic_wave_filter(), 19, improved=True)
        for bus in report.buses:
            # the schedule dict enforces one source per step by
            # construction; re-derive from members to double-check
            per_step = {}
            for src, snk in bus.connections:
                for step, chosen in bus.schedule.items():
                    pass
            for step, src in bus.schedule.items():
                assert src in bus.drivers

    def test_report_counts_consistent(self):
        report = report_for(hal_diffeq(), 6)
        driver_sum = sum(b.driver_mux_eq21 for b in report.buses)
        assert report.bus_eq21 >= driver_sum
        assert "buses:" in str(report)

    def test_ewf_bus_structure(self):
        report = report_for(elliptic_wave_filter(), 19)
        # a 19-step EWF datapath has ~50 wires but far fewer buses
        assert report.bus_count <= report.point_to_point_wires // 2
