"""Unit tests for the cycle-accurate datapath simulator."""

import pytest

from repro.errors import DatapathError
from repro.bench import (ar_lattice, discrete_cosine_transform,
                         elliptic_wave_filter, figure1_cdfg, fir_filter,
                         hal_diffeq)
from repro.cdfg.interp import run_iterations
from repro.datapath.simulate import simulate_binding, verify_binding
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.core import ImproveConfig, SalsaAllocator
from repro.core.initial import initial_allocation

SPEC = HardwareSpec.non_pipelined()
FAST = ImproveConfig(max_trials=4, moves_per_trial=200)


def allocate(graph, length, spec=SPEC, seed=1, registers=None):
    schedule = schedule_graph(graph, spec, length)
    return SalsaAllocator(seed=seed, restarts=1, config=FAST).allocate(
        graph, schedule=schedule, registers=registers)


class TestInitialAllocationsSimulate:
    @pytest.mark.parametrize("factory,length", [
        (figure1_cdfg, 4), (hal_diffeq, 6), (fir_filter, 4),
        (ar_lattice, 11),
    ])
    def test_initial_binding_verifies(self, factory, length):
        graph = factory()
        schedule = schedule_graph(graph, SPEC, length)
        fus = SPEC.make_fus(schedule.min_fus())
        regs = make_registers(schedule.min_registers())
        binding = initial_allocation(schedule, fus, regs)
        verify_binding(binding, iterations=4)


class TestImprovedAllocationsSimulate:
    def test_ewf_nonpipelined(self):
        result = allocate(elliptic_wave_filter(), 17)
        verify_binding(result.binding, iterations=5)

    def test_ewf_pipelined(self):
        result = allocate(elliptic_wave_filter(), 17,
                          spec=HardwareSpec.pipelined())
        verify_binding(result.binding, iterations=5)

    def test_dct(self):
        result = allocate(discrete_cosine_transform(), 9)
        verify_binding(result.binding)

    def test_extra_registers(self):
        graph = hal_diffeq()
        schedule = schedule_graph(graph, SPEC, 7)
        result = SalsaAllocator(seed=2, restarts=1, config=FAST).allocate(
            graph, schedule=schedule,
            registers=schedule.min_registers() + 2)
        verify_binding(result.binding, iterations=4)


class TestSimulatorDetails:
    def test_matches_interpreter_streams(self):
        graph = hal_diffeq()
        result = allocate(graph, 6)
        streams = {"dx": [0.1, 0.2, 0.05]}
        state = {"x": 1.0, "y": 0.5, "u": -0.25}
        expected = run_iterations(graph, streams, state, 3)
        trace = simulate_binding(result.binding, streams, state, 3)
        for it in range(3):
            assert trace.outputs[it]["y"] == pytest.approx(
                expected[it]["y"])

    def test_short_stream_raises(self):
        graph = hal_diffeq()
        result = allocate(graph, 6)
        with pytest.raises(DatapathError, match="too short"):
            simulate_binding(result.binding, {"dx": [0.1]},
                             {"x": 0, "y": 0, "u": 0}, 3)

    def test_mismatch_detected(self):
        """Corrupting a read source must be caught by verification."""
        graph = figure1_cdfg()
        schedule = schedule_graph(graph, SPEC, 4)
        fus = SPEC.make_fus(schedule.min_fus())
        regs = make_registers(schedule.min_registers())
        binding = initial_allocation(schedule, fus, regs)
        verify_binding(binding)
        # swap one op's read source to a register holding a different value
        op = "o5"
        step = schedule.start[op]
        wrong = None
        read_value = graph.ops[op].operands[0].name
        for reg in binding.regs:
            occupant = binding.reg_occ.get((reg, step))
            if occupant is not None and occupant != read_value:
                wrong = reg
                break
        assert wrong is not None
        binding.set_read_src(op, 0, wrong)
        binding.flush()
        with pytest.raises(DatapathError, match="datapath produced"):
            verify_binding(binding)
