"""Unit tests for netlist construction."""

import pytest

from repro.errors import DatapathError
from repro.bench import hal_diffeq, elliptic_wave_filter
from repro.datapath.netlist import build_netlist
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.core.initial import initial_allocation

SPEC = HardwareSpec.non_pipelined()


@pytest.fixture
def diffeq_netlist(diffeq_binding):
    return build_netlist(diffeq_binding)


class TestBuild:
    def test_counts_match_binding(self, diffeq_binding, diffeq_netlist):
        assert diffeq_netlist.mux_eq21() == \
            diffeq_binding.cost().mux_count
        assert len(diffeq_netlist.connections) == \
            diffeq_binding.cost().wire_count

    def test_every_op_issued_once(self, diffeq_binding, diffeq_netlist):
        issued = [i.op for i in diffeq_netlist.issues]
        assert sorted(issued) == sorted(diffeq_binding.graph.ops)

    def test_issue_steps_match_schedule(self, diffeq_binding,
                                        diffeq_netlist):
        for issue in diffeq_netlist.issues:
            assert issue.step == diffeq_binding.schedule.start[issue.op]
            assert issue.end_step == diffeq_binding.schedule.end(issue.op)

    def test_loop_values_preloaded(self, diffeq_netlist):
        preloaded = {v for v, _ in diffeq_netlist.preloads}
        assert {"x", "y", "u"} <= preloaded

    def test_writes_reference_known_regs(self, diffeq_binding,
                                         diffeq_netlist):
        for write in diffeq_netlist.writes:
            assert write.reg in diffeq_binding.regs

    def test_selection_schedule_consistent(self, diffeq_netlist):
        sel = diffeq_netlist.selection_schedule()
        for mux in diffeq_netlist.muxes:
            schedule = sel.get(mux.sink, {})
            for src in schedule.values():
                assert src in mux.sources

    def test_unbound_op_rejected(self, diffeq_binding):
        diffeq_binding.set_op_fu("m1", None)
        with pytest.raises(DatapathError, match="unbound"):
            build_netlist(diffeq_binding)


class TestTransfers:
    def test_split_value_produces_transfer_write(self, ewf19,
                                                 nonpipe_spec):
        fus = nonpipe_spec.make_fus(ewf19.min_fus())
        regs = make_registers(ewf19.min_registers() + 1)
        binding = initial_allocation(ewf19, fus, regs)
        # force a segment hop on some multi-step value
        from repro.core.moves import fixup_segment
        target = None
        for vname in binding.graph.values:
            if binding.port_captured(vname):
                continue
            iv = binding.interval(vname)
            if iv.length >= 2:
                target = vname
                break
        assert target is not None
        iv = binding.interval(target)
        last = iv.steps[-1]
        free = next(r for r in sorted(binding.regs)
                    if binding.reg_free(r, last))
        binding.set_placements(target, last, (free,))
        for undo in fixup_segment(binding, target, last):
            pass
        binding.flush()
        netlist = build_netlist(binding)
        transfer_writes = [w for w in netlist.writes
                           if w.source[0] in ("reg", "pt")
                           and w.value == target]
        assert len(transfer_writes) == 1
