"""Unit tests for the hardware model."""

import pytest

from repro.errors import ConfigError
from repro.datapath.units import (ADDER, ALU, FU, FUType, HardwareSpec,
                                  MULTIPLIER, PIPELINED_MULTIPLIER,
                                  make_registers)


class TestFUType:
    def test_paper_hardware_assumptions(self):
        assert ADDER.delay == 1 and not ADDER.pipelined
        assert MULTIPLIER.delay == 2 and not MULTIPLIER.pipelined
        assert PIPELINED_MULTIPLIER.delay == 2
        assert PIPELINED_MULTIPLIER.pipelined

    def test_only_adders_pass_through(self):
        assert ADDER.can_passthrough
        assert not MULTIPLIER.can_passthrough
        assert not PIPELINED_MULTIPLIER.can_passthrough

    def test_supports_includes_pass(self):
        assert ADDER.supports("add")
        assert ADDER.supports("pass")
        assert not MULTIPLIER.supports("pass")
        assert not ADDER.supports("mul")

    def test_invalid_delay_rejected(self):
        with pytest.raises(ConfigError):
            FUType("bad", frozenset({"add"}), delay=0)

    def test_empty_ops_rejected(self):
        with pytest.raises(ConfigError):
            FUType("bad", frozenset(), delay=1)


class TestHardwareSpec:
    def test_non_pipelined_factory(self):
        spec = HardwareSpec.non_pipelined()
        assert spec.type_for_kind("add") is ADDER
        assert spec.type_for_kind("mul") is MULTIPLIER

    def test_pipelined_factory(self):
        spec = HardwareSpec.pipelined()
        assert spec.type_for_kind("mul") is PIPELINED_MULTIPLIER

    def test_delays_include_pass(self):
        delays = HardwareSpec.non_pipelined().delays()
        assert delays == {"add": 1, "sub": 1, "mul": 2, "pass": 1}

    def test_duplicate_kind_claim_rejected(self):
        with pytest.raises(ConfigError, match="claimed by both"):
            HardwareSpec([ADDER, ALU])

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigError, match="no FU type"):
            HardwareSpec.non_pipelined().type_for_kind("div")

    def test_make_fus_naming(self):
        spec = HardwareSpec.non_pipelined()
        fus = spec.make_fus({"adder": 2, "mult": 1})
        assert [f.name for f in fus] == ["adder0", "adder1", "mult0"]
        assert fus[0].fu_type is ADDER

    def test_make_fus_negative_rejected(self):
        with pytest.raises(ConfigError):
            HardwareSpec.non_pipelined().make_fus({"adder": -1})

    def test_passthrough_types(self):
        spec = HardwareSpec.non_pipelined()
        assert [t.name for t in spec.passthrough_types()] == ["adder"]


class TestRegisters:
    def test_make_registers(self):
        regs = make_registers(3)
        assert [r.name for r in regs] == ["R0", "R1", "R2"]

    def test_custom_prefix(self):
        assert make_registers(1, prefix="REG")[0].name == "REG0"

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            make_registers(-1)
