"""Unit tests for the allocation cost model."""

from repro.datapath.cost import CostBreakdown, CostWeights


class TestCost:
    def test_total_is_weighted_sum(self):
        weights = CostWeights(fu=10.0, register=5.0, mux=1.0, wire=0.0)
        cost = CostBreakdown(fu_count=2, fu_area=3.0, register_count=4,
                             mux_count=7, wire_count=20, weights=weights)
        assert cost.total == 10 * 3.0 + 5 * 4 + 7

    def test_default_weights_prioritize_structure(self):
        """One FU area unit must outweigh several muxes (schedule fixes the
        FU minimum; the search must not buy units to shave muxes)."""
        w = CostWeights()
        assert w.fu > 4 * w.mux
        assert w.register > 2 * w.mux
        assert w.wire < w.mux

    def test_str_mentions_all_terms(self):
        text = str(CostBreakdown(1, 1.0, 2, 3, 4))
        for token in ("fu=1", "regs=2", "mux=3", "wires=4"):
            assert token in text

    def test_mux_difference_dominates_wire_difference(self):
        w = CostWeights()
        better = CostBreakdown(1, 1.0, 2, 3, 25, weights=w)
        worse = CostBreakdown(1, 1.0, 2, 4, 10, weights=w)
        assert better.total < worse.total
