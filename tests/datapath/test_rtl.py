"""Unit tests for the Verilog emitter (structural sanity of the text)."""

import re

import pytest

from repro.bench import hal_diffeq, elliptic_wave_filter
from repro.datapath.netlist import build_netlist
from repro.datapath.rtl import netlist_to_verilog
from repro.datapath.units import HardwareSpec
from repro.sched.explore import schedule_graph
from repro.core import ImproveConfig, SalsaAllocator

SPEC = HardwareSpec.non_pipelined()
FAST = ImproveConfig(max_trials=4, moves_per_trial=200)


@pytest.fixture(scope="module")
def diffeq_rtl():
    graph = hal_diffeq()
    schedule = schedule_graph(graph, SPEC, 6)
    result = SalsaAllocator(seed=1, restarts=1, config=FAST).allocate(
        graph, schedule=schedule)
    netlist = build_netlist(result.binding)
    return netlist, netlist_to_verilog(netlist)


class TestVerilog:
    def test_module_header_and_footer(self, diffeq_rtl):
        _netlist, text = diffeq_rtl
        assert text.splitlines()[0].startswith("// generated")
        assert "module diffeq_datapath (" in text
        assert text.rstrip().endswith("endmodule")

    def test_all_registers_declared(self, diffeq_rtl):
        netlist, text = diffeq_rtl
        for reg in netlist.regs:
            assert f"reg signed [15:0] {reg}_q;" in text

    def test_all_fus_have_outputs(self, diffeq_rtl):
        netlist, text = diffeq_rtl
        for fu in netlist.fus:
            assert f"{fu}_out" in text

    def test_io_ports(self, diffeq_rtl):
        _netlist, text = diffeq_rtl
        assert "input  wire signed [15:0] in_dx" in text
        assert "output reg  signed [15:0] out_y" in text

    def test_counter_wraps_at_schedule_length(self, diffeq_rtl):
        _netlist, text = diffeq_rtl
        assert "(cstep == 5) ? 0 : cstep + 1" in text

    def test_multicycle_fu_has_pipeline_stage(self, diffeq_rtl):
        netlist, text = diffeq_rtl
        mults = [f for f in netlist.fus if f.startswith("mult")]
        assert mults
        assert any(f"{m}_p1" in text for m in mults)

    def test_balanced_case_endcase(self, diffeq_rtl):
        _netlist, text = diffeq_rtl
        assert text.count("case (") == text.count("endcase")

    def test_custom_width(self):
        graph = hal_diffeq()
        schedule = schedule_graph(graph, SPEC, 6)
        result = SalsaAllocator(seed=1, restarts=1, config=FAST).allocate(
            graph, schedule=schedule)
        text = netlist_to_verilog(build_netlist(result.binding), width=32)
        assert "[31:0]" in text

    def test_passthrough_annotated(self):
        graph = elliptic_wave_filter()
        schedule = schedule_graph(graph, SPEC, 21)
        result = SalsaAllocator(
            seed=7, restarts=3,
            config=ImproveConfig(max_trials=10, moves_per_trial=600)
        ).allocate(graph, schedule=schedule,
                   registers=schedule.min_registers() + 1)
        text = netlist_to_verilog(build_netlist(result.binding))
        if result.binding.pt_impl:
            assert "pass-through" in text
