"""Unit tests for the connection ledger (incremental mux counting)."""

import pytest

from repro.errors import DatapathError
from repro.datapath.interconnect import (ConnectionLedger, fu_in, fu_out,
                                         in_port, out_port, reg_in, reg_out)


class TestEndpoints:
    def test_constructors(self):
        assert fu_out("f") == ("fu_out", "f")
        assert reg_out("r") == ("reg_out", "r")
        assert in_port("v") == ("in_port", "v")
        assert fu_in("f", 1) == ("fu_in", "f", 1)
        assert reg_in("r") == ("reg_in", "r")
        assert out_port("v") == ("out_port", "v")


class TestLedger:
    def test_single_source_costs_nothing(self):
        ledger = ConnectionLedger()
        ledger.add(reg_out("R0"), fu_in("f", 0))
        assert ledger.mux_count == 0
        assert ledger.wire_count == 1

    def test_k_sources_cost_k_minus_one(self):
        ledger = ConnectionLedger()
        for i in range(4):
            ledger.add(reg_out(f"R{i}"), fu_in("f", 0))
        assert ledger.mux_count == 3

    def test_reference_counting(self):
        ledger = ConnectionLedger()
        ledger.add(reg_out("R0"), fu_in("f", 0))
        ledger.add(reg_out("R0"), fu_in("f", 0))  # second use, same wire
        ledger.add(reg_out("R1"), fu_in("f", 0))
        assert ledger.mux_count == 1
        ledger.remove(reg_out("R0"), fu_in("f", 0))
        assert ledger.mux_count == 1  # still one use left
        ledger.remove(reg_out("R0"), fu_in("f", 0))
        assert ledger.mux_count == 0

    def test_remove_nonexistent_raises(self):
        ledger = ConnectionLedger()
        with pytest.raises(DatapathError, match="non-existent"):
            ledger.remove(reg_out("R0"), fu_in("f", 0))

    def test_independent_sinks(self):
        ledger = ConnectionLedger()
        ledger.add(reg_out("R0"), fu_in("f", 0))
        ledger.add(reg_out("R0"), fu_in("f", 1))
        ledger.add(reg_out("R1"), fu_in("f", 1))
        assert ledger.mux_count == 1
        assert ledger.fanin(fu_in("f", 0)) == 1
        assert ledger.fanin(fu_in("f", 1)) == 2

    def test_sources_of_sorted(self):
        ledger = ConnectionLedger()
        ledger.add(reg_out("R1"), reg_in("X"))
        ledger.add(reg_out("R0"), reg_in("X"))
        assert ledger.sources_of(reg_in("X")) == [reg_out("R0"),
                                                  reg_out("R1")]

    def test_bulk_events(self):
        ledger = ConnectionLedger()
        events = [(reg_out("R0"), fu_in("f", 0)),
                  (reg_out("R1"), fu_in("f", 0))]
        ledger.add_events(events)
        assert ledger.mux_count == 1
        ledger.remove_events(events)
        assert ledger.mux_count == 0
        assert ledger.wire_count == 0

    def test_verify_detects_consistency(self):
        ledger = ConnectionLedger()
        ledger.add(reg_out("R0"), fu_in("f", 0))
        ledger.verify()
        ledger._mux_total = 99  # corrupt deliberately
        with pytest.raises(DatapathError, match="out of sync"):
            ledger.verify()

    def test_uses_and_connections(self):
        ledger = ConnectionLedger()
        ledger.add(reg_out("R0"), fu_in("f", 0))
        ledger.add(reg_out("R0"), fu_in("f", 0))
        assert ledger.uses(reg_out("R0"), fu_in("f", 0)) == 2
        assert ledger.connections() == [(reg_out("R0"), fu_in("f", 0))]

    def test_repr(self):
        assert "wires=0" in repr(ConnectionLedger())


class TestRandomizedConsistency:
    def test_adds_and_removes_stay_consistent(self):
        import random
        rng = random.Random(7)
        ledger = ConnectionLedger()
        live = []
        for _ in range(2000):
            if live and rng.random() < 0.45:
                src, snk = live.pop(rng.randrange(len(live)))
                ledger.remove(src, snk)
            else:
                src = reg_out(f"R{rng.randrange(6)}")
                snk = fu_in(f"f{rng.randrange(3)}", rng.randrange(2))
                ledger.add(src, snk)
                live.append((src, snk))
            ledger.verify()
        for src, snk in live:
            ledger.remove(src, snk)
        assert ledger.mux_count == 0 and ledger.wire_count == 0


class TestMuxDepth:
    """Incremental ceil(log2(fanin)) tree-depth accounting."""

    def test_depth_follows_ceil_log2(self):
        ledger = ConnectionLedger()
        expected = [0, 0, 1, 2, 2, 3, 3, 3, 3]  # depth after n sources
        for i in range(8):
            ledger.add(reg_out(f"R{i}"), fu_in("f", 0))
            assert ledger.mux_depth == expected[i + 1]

    def test_depth_sums_over_sinks(self):
        ledger = ConnectionLedger()
        for i in range(4):  # 4:1 tree -> depth 2
            ledger.add(reg_out(f"R{i}"), fu_in("f", 0))
        for i in range(2):  # 2:1 -> depth 1
            ledger.add(reg_out(f"R{i}"), reg_in("X"))
        assert ledger.mux_depth == 3

    def test_removal_unwinds_depth(self):
        ledger = ConnectionLedger()
        for i in range(5):
            ledger.add(reg_out(f"R{i}"), fu_in("f", 0))
        assert ledger.mux_depth == 3
        for i in reversed(range(5)):
            ledger.remove(reg_out(f"R{i}"), fu_in("f", 0))
        assert ledger.mux_depth == 0

    def test_reference_counting_does_not_deepen(self):
        ledger = ConnectionLedger()
        ledger.add(reg_out("R0"), fu_in("f", 0))
        ledger.add(reg_out("R0"), fu_in("f", 0))  # same wire again
        assert ledger.mux_depth == 0
        ledger.add(reg_out("R1"), fu_in("f", 0))
        assert ledger.mux_depth == 1

    def test_snapshot_round_trips_depth(self):
        ledger = ConnectionLedger()
        for i in range(4):
            ledger.add(reg_out(f"R{i}"), fu_in("f", 0))
        snap = ledger.snapshot()
        ledger.add(reg_out("R4"), fu_in("f", 0))
        assert ledger.mux_depth == 3
        ledger.restore(snap)
        assert ledger.mux_depth == 2
        ledger.verify()

    def test_verify_catches_depth_corruption(self):
        ledger = ConnectionLedger()
        ledger.add(reg_out("R0"), fu_in("f", 0))
        ledger.add(reg_out("R1"), fu_in("f", 0))
        ledger._depth_total = 7  # corrupt deliberately
        with pytest.raises(DatapathError, match="out of sync"):
            ledger.verify()
