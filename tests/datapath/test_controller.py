"""Unit tests for control-unit extraction."""

import pytest

from repro.analysis.figures import build_passthrough_binding
from repro.bench import hal_diffeq
from repro.datapath.controller import (ControlTable, controller_to_verilog,
                                       extract_control)
from repro.datapath.netlist import build_netlist
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.core.initial import initial_allocation

SPEC = HardwareSpec.non_pipelined()


@pytest.fixture(scope="module")
def diffeq_control():
    graph = hal_diffeq()
    schedule = schedule_graph(graph, SPEC, 6)
    binding = initial_allocation(
        schedule, SPEC.make_fus(schedule.min_fus()),
        make_registers(schedule.min_registers()))
    netlist = build_netlist(binding)
    return netlist, extract_control(netlist)


class TestExtraction:
    def test_field_lengths_match_schedule(self, diffeq_control):
        netlist, table = diffeq_control
        assert table.length == netlist.length
        for f in table.fields:
            assert len(f.values) == netlist.length

    def test_every_register_has_write_enable(self, diffeq_control):
        netlist, table = diffeq_control
        we = {f.name for f in table.fields if f.name.startswith("we_")}
        assert we == {f"we_{r}" for r in netlist.regs}

    def test_write_enables_match_writes(self, diffeq_control):
        netlist, table = diffeq_control
        for f in table.fields:
            if not f.name.startswith("we_"):
                continue
            reg = f.name[3:]
            expected = {w.step for w in netlist.writes if w.reg == reg}
            assert {s for s, v in enumerate(f.values) if v} == expected

    def test_fu_codes_cover_issues(self, diffeq_control):
        netlist, table = diffeq_control
        for fu in netlist.fus:
            f = next(f for f in table.fields if f.name == f"op_{fu}")
            issue_steps = {i.step for i in netlist.issues if i.fu == fu}
            active = {s for s, v in enumerate(f.values) if v}
            assert issue_steps <= active

    def test_mux_select_width(self, diffeq_control):
        _netlist, table = diffeq_control
        for f in table.fields:
            if f.name.startswith("sel_"):
                assert f.width >= 1
                assert max(f.values) < 2 ** f.width

    def test_word_packing(self, diffeq_control):
        _netlist, table = diffeq_control
        words = table.words()
        assert len(words) == table.length
        assert all(w < 2 ** table.word_width for w in words)
        assert table.distinct_words() <= table.length
        assert table.rom_bits() == table.length * table.word_width
        assert "controller:" in table.summary()


class TestVerilog:
    def test_emission(self, diffeq_control):
        _netlist, table = diffeq_control
        text = controller_to_verilog(table)
        assert text.startswith("// generated")
        assert text.rstrip().endswith("endmodule")
        for f in table.fields:
            assert f.name in text
        assert "one-hot" in text

    def test_passthrough_gets_own_code(self):
        # the Figure 3 binding carries a pass-through by construction, so
        # this never depends on what the randomized search produced
        binding = build_passthrough_binding()
        assert binding.pt_impl
        netlist = build_netlist(binding)
        table = extract_control(netlist)
        pt_fus = {impl[1] for impl in binding.pt_impl.values()}
        for fu in pt_fus:
            f = next(f for f in table.fields if f.name == f"op_{fu}")
            kinds = {i.kind for i in netlist.issues if i.fu == fu}
            # the pass code is one beyond the operation codes
            assert max(f.values) == len(kinds) + 1
