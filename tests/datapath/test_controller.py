"""Unit tests for control-unit extraction."""

import pytest

from repro.analysis.figures import build_passthrough_binding
from repro.bench import hal_diffeq
from repro.datapath.controller import (ControlTable, controller_to_verilog,
                                       extract_control)
from repro.datapath.netlist import build_netlist
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.core.initial import initial_allocation

SPEC = HardwareSpec.non_pipelined()


@pytest.fixture(scope="module")
def diffeq_control():
    graph = hal_diffeq()
    schedule = schedule_graph(graph, SPEC, 6)
    binding = initial_allocation(
        schedule, SPEC.make_fus(schedule.min_fus()),
        make_registers(schedule.min_registers()))
    netlist = build_netlist(binding)
    return netlist, extract_control(netlist)


class TestExtraction:
    def test_field_lengths_match_schedule(self, diffeq_control):
        netlist, table = diffeq_control
        assert table.length == netlist.length
        for f in table.fields:
            assert len(f.values) == netlist.length

    def test_every_register_has_write_enable(self, diffeq_control):
        netlist, table = diffeq_control
        we = {f.name for f in table.fields if f.name.startswith("we_")}
        assert we == {f"we_{r}" for r in netlist.regs}

    def test_write_enables_match_writes(self, diffeq_control):
        netlist, table = diffeq_control
        for f in table.fields:
            if not f.name.startswith("we_"):
                continue
            reg = f.name[3:]
            expected = {w.step for w in netlist.writes if w.reg == reg}
            assert {s for s, v in enumerate(f.values) if v} == expected

    def test_fu_codes_cover_issues(self, diffeq_control):
        netlist, table = diffeq_control
        for fu in netlist.fus:
            f = next(f for f in table.fields if f.name == f"op_{fu}")
            issue_steps = {i.step for i in netlist.issues if i.fu == fu}
            active = {s for s, v in enumerate(f.values) if v}
            assert issue_steps <= active

    def test_mux_select_width(self, diffeq_control):
        _netlist, table = diffeq_control
        for f in table.fields:
            if f.name.startswith("sel_"):
                assert f.width >= 1
                assert max(f.values) < 2 ** f.width

    def test_word_packing(self, diffeq_control):
        _netlist, table = diffeq_control
        words = table.words()
        assert len(words) == table.length
        assert all(w < 2 ** table.word_width for w in words)
        assert table.distinct_words() <= table.length
        assert table.rom_bits() == table.length * table.word_width
        assert "controller:" in table.summary()


class TestVerilog:
    def test_emission(self, diffeq_control):
        _netlist, table = diffeq_control
        text = controller_to_verilog(table)
        assert text.startswith("// generated")
        assert text.rstrip().endswith("endmodule")
        for f in table.fields:
            assert f.name in text
        assert "one-hot" in text

    def test_passthrough_gets_own_code(self):
        # the Figure 3 binding carries a pass-through by construction, so
        # this never depends on what the randomized search produced
        binding = build_passthrough_binding()
        assert binding.pt_impl
        netlist = build_netlist(binding)
        table = extract_control(netlist)
        pt_fus = {impl[1] for impl in binding.pt_impl.values()}
        for fu in pt_fus:
            f = next(f for f in table.fields if f.name == f"op_{fu}")
            kinds = {i.kind for i in netlist.issues if i.fu == fu}
            # the pass code is one beyond the operation codes
            assert max(f.values) == len(kinds) + 1


class TestWidthZeroFields:
    """Regression: single-source muxes / idle FUs pack zero control bits."""

    def _netlist(self):
        from repro.datapath.netlist import IssueEntry, Mux, Netlist, WriteEntry
        # one degenerate single-source mux, one working FU, one FU that
        # never issues anything
        return Netlist(
            name="degen", length=2, cyclic=False,
            fus=["add1", "idle1"], regs=["Ra", "Rb"],
            muxes=[Mux(sink=("fu_in", "add1", 0),
                       sources=(("reg_out", "Ra"),))],
            connections=[(("reg_out", "Ra"), ("fu_in", "add1", 0)),
                         (("fu_out", "add1"), ("reg_in", "Rb"))],
            issues=[IssueEntry(step=0, fu="add1", op="o1", kind="add",
                               operand_srcs=(("reg", "Ra"),), ports=(0,),
                               end_step=0)],
            writes=[WriteEntry(step=0, reg="Rb",
                               source=("op_result", "o1"), value="v1")],
        )

    def test_degenerate_fields_have_zero_width(self):
        table = extract_control(self._netlist())
        by_name = {f.name: f for f in table.fields}
        assert by_name["sel_add1_a0"].width == 0
        assert by_name["op_idle1"].width == 0
        # the working FU still gets a real select (idle + add = 2 codes)
        assert by_name["op_add1"].width == 1

    def test_words_pack_without_degenerate_bits(self):
        table = extract_control(self._netlist())
        zero_width = sum(1 for f in table.fields if f.width == 0)
        assert zero_width == 2
        assert table.word_width == sum(f.width for f in table.fields)
        words = table.words()
        assert len(words) == 2
        assert all(w < 2 ** table.word_width for w in words)

    def test_verilog_emits_no_degenerate_wires(self):
        from repro.datapath.rtl import netlist_to_verilog
        netlist = self._netlist()
        table = extract_control(netlist)
        controller = controller_to_verilog(table)
        assert "sel_add1_a0" not in controller
        assert "op_idle1" not in controller
        assert "[-1:0]" not in controller
        assert "op_add1" in controller
        # the datapath renders the single-source sink as a plain wire
        datapath = netlist_to_verilog(netlist)
        assert "wire signed [15:0] add1_a0 = Ra_q;" in datapath
        assert "[-1:0]" not in datapath

    def test_nonzero_value_in_zero_width_field_rejected(self):
        from repro.errors import DatapathError
        from repro.datapath.controller import ControlField
        with pytest.raises(DatapathError, match="does not fit"):
            ControlField(name="sel_x", width=0, values=(1,))

    def test_negative_width_rejected(self):
        from repro.errors import DatapathError
        from repro.datapath.controller import ControlField
        with pytest.raises(DatapathError, match="negative width"):
            ControlField(name="sel_x", width=-1, values=())
