"""Unit tests for seeded RNG helpers."""

import random

import pytest

from repro.rng import SeedStream, make_rng, weighted_choice


class TestSeedStream:
    def test_children_deterministic(self):
        assert SeedStream(7).child(3) == SeedStream(7).child(3)
        assert SeedStream(7).child(1, 2) == SeedStream(7).child(1, 2)

    def test_children_distinct(self):
        seeds = SeedStream(0).spawn(512)
        assert len(set(seeds)) == 512

    def test_no_adjacent_collisions_across_roots(self):
        # the failure mode of seed/seed+1 arithmetic: restart k's second
        # seed colliding with restart k+1's first
        seeds = [SeedStream(root).child(k, phase)
                 for root in range(8) for k in range(8)
                 for phase in (0, 1)]
        assert len(set(seeds)) == len(seeds)

    def test_paths_are_not_flattened(self):
        stream = SeedStream(1)
        assert stream.child(1, 2) != stream.child(12)
        assert stream.child(1, 2) != stream.child(2, 1)

    def test_split_matches_child_root(self):
        stream = SeedStream(3)
        assert stream.split(5).child(0) == \
            SeedStream(stream.child(5)).child(0)

    def test_non_int_roots(self):
        rng_a, rng_b = random.Random(9), random.Random(9)
        assert SeedStream(rng_a).child(0) == SeedStream(rng_b).child(0)
        assert isinstance(SeedStream(None).child(0), int)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            SeedStream(0).child()


class TestMakeRng:
    def test_seed_reproducible(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_none_allowed(self):
        assert isinstance(make_rng(None), random.Random)


class TestWeightedChoice:
    def test_respects_zero_weight(self):
        rng = make_rng(0)
        picks = {weighted_choice(rng, ["a", "b"], [0.0, 1.0])
                 for _ in range(50)}
        assert picks == {"b"}

    def test_distribution_roughly_proportional(self):
        rng = make_rng(1)
        counts = {"a": 0, "b": 0}
        for _ in range(4000):
            counts[weighted_choice(rng, ["a", "b"], [1.0, 3.0])] += 1
        assert 0.2 < counts["a"] / 4000 < 0.3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), [], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a"], [1.0, 2.0])

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a", "b"], [0.0, 0.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a", "b"], [2.0, -1.0])


class TestErrors:
    def test_hierarchy(self):
        from repro import errors
        for cls in (errors.CDFGError, errors.ScheduleError,
                    errors.BindingError, errors.AllocationError,
                    errors.DatapathError, errors.ConfigError):
            assert issubclass(cls, errors.ReproError)
