"""Unit tests for seeded RNG helpers."""

import random

import pytest

from repro.rng import make_rng, weighted_choice


class TestMakeRng:
    def test_seed_reproducible(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_none_allowed(self):
        assert isinstance(make_rng(None), random.Random)


class TestWeightedChoice:
    def test_respects_zero_weight(self):
        rng = make_rng(0)
        picks = {weighted_choice(rng, ["a", "b"], [0.0, 1.0])
                 for _ in range(50)}
        assert picks == {"b"}

    def test_distribution_roughly_proportional(self):
        rng = make_rng(1)
        counts = {"a": 0, "b": 0}
        for _ in range(4000):
            counts[weighted_choice(rng, ["a", "b"], [1.0, 3.0])] += 1
        assert 0.2 < counts["a"] / 4000 < 0.3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), [], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a"], [1.0, 2.0])

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a", "b"], [0.0, 0.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a", "b"], [2.0, -1.0])


class TestErrors:
    def test_hierarchy(self):
        from repro import errors
        for cls in (errors.CDFGError, errors.ScheduleError,
                    errors.BindingError, errors.AllocationError,
                    errors.DatapathError, errors.ConfigError):
            assert issubclass(cls, errors.ReproError)
