"""Unit tests for structural CDFG validation."""

import pytest

from repro.errors import CDFGError
from repro.cdfg.graph import CDFG
from repro.cdfg.nodes import Operation, Value
from repro.cdfg.validate import validate_cdfg, validation_report


def make(ops, vals, cyclic=False):
    return CDFG("g", ops, vals, cyclic=cyclic)


class TestValidation:
    def test_valid_graph_has_empty_report(self):
        g = make([Operation("a", "add", ("x", "x"), "y")],
                 [Value("x", is_input=True), Value("y", is_output=True)])
        assert validation_report(g) == []
        validate_cdfg(g)

    def test_unproduced_value_reported(self):
        g = make([Operation("a", "add", ("x", "ghost"), "y")],
                 [Value("x", is_input=True), Value("ghost"),
                  Value("y", is_output=True)])
        report = validation_report(g)
        assert any("never produced" in p for p in report)

    def test_unconsumed_value_reported(self):
        g = make([Operation("a", "add", ("x", "x"), "y")],
                 [Value("x", is_input=True), Value("y")])
        assert any("never consumed" in p for p in validation_report(g))

    def test_loop_value_in_acyclic_graph_reported(self):
        g = make([Operation("a", "add", ("x", "sv"), "sv")],
                 [Value("x", is_input=True),
                  Value("sv", loop_carried=True, is_output=True)])
        assert any("non-cyclic" in p for p in validation_report(g))

    def test_input_and_loop_carried_reported(self):
        g = make([Operation("a", "add", ("x", "x"), "y")],
                 [Value("x", is_input=True, loop_carried=True),
                  Value("y", is_output=True)], cyclic=True)
        assert any("both a primary input and loop-carried" in p
                   for p in validation_report(g))

    def test_validate_raises_with_all_problems(self):
        g = make([Operation("a", "add", ("x", "x"), "y")],
                 [Value("x", is_input=True), Value("y")])
        with pytest.raises(CDFGError, match="failed validation"):
            validate_cdfg(g)

    def test_benchmarks_validate(self):
        from repro import bench
        for graph in (bench.elliptic_wave_filter(),
                      bench.discrete_cosine_transform(),
                      bench.hal_diffeq(), bench.fir_filter(),
                      bench.ar_lattice(), bench.figure1_cdfg()):
            validate_cdfg(graph)
