"""Unit tests for CDFG node types and operand coercion."""

import pytest

from repro.errors import CDFGError
from repro.cdfg.nodes import (Const, OpKind, Operation, Value, ValueRef,
                              OP_KINDS, as_operand, op_kind,
                              register_op_kind)


class TestOpKinds:
    def test_builtin_add_is_commutative(self):
        assert op_kind("add").commutative

    def test_builtin_sub_is_not_commutative(self):
        assert not op_kind("sub").commutative

    def test_pass_kind_is_unary(self):
        assert op_kind("pass").arity == 1

    def test_unknown_kind_raises(self):
        with pytest.raises(CDFGError, match="unknown operator kind"):
            op_kind("frobnicate")

    def test_register_custom_kind(self):
        kind = OpKind("mac3", 2, False)
        register_op_kind(kind)
        assert op_kind("mac3") is kind
        register_op_kind(kind)  # idempotent
        del OP_KINDS["mac3"]

    def test_register_conflicting_kind_raises(self):
        with pytest.raises(CDFGError, match="already registered"):
            register_op_kind(OpKind("add", 2, False))


class TestOperands:
    def test_string_becomes_value_ref(self):
        assert as_operand("v") == ValueRef("v")

    def test_number_becomes_const(self):
        operand = as_operand(3)
        assert isinstance(operand, Const)
        assert operand.value == 3.0

    def test_float_becomes_const(self):
        assert as_operand(0.5) == Const(0.5)

    def test_operand_passthrough(self):
        ref = ValueRef("x")
        assert as_operand(ref) is ref

    def test_bool_rejected(self):
        with pytest.raises(CDFGError):
            as_operand(True)

    def test_garbage_rejected(self):
        with pytest.raises(CDFGError):
            as_operand(object())

    def test_const_str_uses_label(self):
        assert str(Const(1.0, label="k1")) == "k1"
        assert str(Const(2.0)) == "#2"


class TestOperation:
    def test_operands_coerced(self):
        op = Operation("m", "mul", ("x", 2.0), "y")
        assert op.operands == (ValueRef("x"), Const(2.0))

    def test_arity_mismatch_raises(self):
        with pytest.raises(CDFGError, match="expects 2 operands"):
            Operation("m", "mul", ("x",), "y")

    def test_value_operands_skips_consts(self):
        op = Operation("m", "mul", ("x", 2.0), "y")
        assert op.value_operands() == ((0, ValueRef("x")),)

    def test_reads(self):
        op = Operation("a", "add", ("x", "y"), "z")
        assert op.reads("x") and op.reads("y") and not op.reads("z")

    def test_commutative_property(self):
        assert Operation("a", "add", ("x", "y"), "z").commutative
        assert not Operation("s", "sub", ("x", "y"), "z").commutative

    def test_str_shows_result_and_kind(self):
        text = str(Operation("a", "add", ("x", "y"), "z"))
        assert "z = add(x, y)" in text


class TestValue:
    def test_input_with_producer_rejected(self):
        with pytest.raises(CDFGError):
            Value("v", producer="op", is_input=True)

    def test_tags_in_str(self):
        v = Value("v", is_input=True)
        assert "<in>" in str(v)
        w = Value("w", producer="p", is_output=True, loop_carried=True)
        assert "out" in str(w) and "loop" in str(w)
