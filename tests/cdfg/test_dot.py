"""Unit tests for DOT export."""

from repro.bench import figure1_cdfg, hal_diffeq
from repro.cdfg.dot import cdfg_to_dot


class TestDot:
    def test_all_ops_and_values_present(self):
        g = figure1_cdfg()
        dot = cdfg_to_dot(g)
        for op in g.ops:
            assert f'"{op}"' in dot
        for val in g.values:
            assert f'"v_{val}"' in dot

    def test_digraph_wrapper(self):
        dot = cdfg_to_dot(figure1_cdfg())
        assert dot.startswith('digraph "fig1"')
        assert dot.rstrip().endswith("}")

    def test_schedule_ranks(self):
        g = figure1_cdfg()
        dot = cdfg_to_dot(g, schedule={"o1": 0, "o2": 0, "o3": 1,
                                       "o4": 1, "o5": 2})
        assert "rank=same" in dot

    def test_without_values_uses_op_edges(self):
        g = hal_diffeq()
        dot = cdfg_to_dot(g, show_values=False)
        assert "v_" not in dot
        assert "->" in dot

    def test_input_values_styled(self):
        dot = cdfg_to_dot(figure1_cdfg())
        assert "lightblue" in dot    # inputs
        assert "lightyellow" in dot  # outputs

    def test_loop_values_styled(self):
        dot = cdfg_to_dot(hal_diffeq())
        assert "lightgrey" in dot
