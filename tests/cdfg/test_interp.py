"""Unit tests for the CDFG reference interpreter."""

import math

import pytest

from repro.errors import CDFGError
from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.interp import OP_SEMANTICS, evaluate_once, run_iterations


class TestSemantics:
    @pytest.mark.parametrize("kind,args,expected", [
        ("add", (2, 3), 5), ("sub", (2, 3), -1), ("mul", (2, 3), 6),
        ("div", (6, 3), 2), ("and", (6, 3), 2), ("or", (6, 3), 7),
        ("xor", (6, 3), 5), ("shl", (1, 3), 8), ("shr", (8, 2), 2),
        ("cmp", (2, 3), -1), ("cmp", (3, 2), 1), ("cmp", (3, 3), 0),
        ("neg", (4,), -4), ("pass", (7,), 7),
    ])
    def test_builtin(self, kind, args, expected):
        assert OP_SEMANTICS[kind](*args) == expected


class TestEvaluateOnce:
    def graph(self):
        b = CDFGBuilder("g")
        b.input("x").input("y")
        b.add("a", "x", "y", "s")
        b.mul("m", "s", 0.5, "p")
        b.sub("d", "s", "p", "q")
        b.output("q")
        return b.build()

    def test_values_computed(self):
        out = evaluate_once(self.graph(), {"x": 2, "y": 4})
        assert out["s"] == 6 and out["p"] == 3 and out["q"] == 3

    def test_missing_input_raises(self):
        with pytest.raises(CDFGError, match="missing input"):
            evaluate_once(self.graph(), {"x": 2})

    def test_missing_loop_state_raises(self):
        b = CDFGBuilder("l", cyclic=True)
        b.input("i")
        b.add("a", "i", "sv", "sv")
        b.loop_value("sv").output("sv")
        g = b.build()
        with pytest.raises(CDFGError, match="previous-iteration"):
            evaluate_once(g, {"i": 1})

    def test_unknown_kind_raises(self):
        from repro.cdfg.nodes import OP_KINDS, OpKind, register_op_kind
        from repro.cdfg.graph import CDFG
        from repro.cdfg.nodes import Operation, Value
        register_op_kind(OpKind("weird", 1, False))
        try:
            g = CDFG("w", [Operation("o", "weird", ("x",), "y")],
                     [Value("x", is_input=True), Value("y", is_output=True)])
            with pytest.raises(CDFGError, match="no semantics"):
                evaluate_once(g, {"x": 1})
        finally:
            del OP_KINDS["weird"]


class TestRunIterations:
    def accumulator(self):
        b = CDFGBuilder("acc", cyclic=True)
        b.input("i")
        b.add("a", "i", "sv", "sv")
        b.loop_value("sv").output("sv")
        return b.build()

    def test_state_threads_through(self):
        trace = run_iterations(self.accumulator(), {"i": [1, 2, 3]},
                               {"sv": 0}, 3)
        assert [t["sv"] for t in trace] == [1, 3, 6]

    def test_default_state_zero(self):
        trace = run_iterations(self.accumulator(), {"i": [5]}, {}, 1)
        assert trace[0]["sv"] == 5

    def test_short_stream_raises(self):
        with pytest.raises(CDFGError, match="too short"):
            run_iterations(self.accumulator(), {"i": [1]}, {"sv": 0}, 2)

    def test_diffeq_euler_step(self):
        from repro.bench import hal_diffeq
        g = hal_diffeq()
        trace = run_iterations(g, {"dx": [0.1]}, {"x": 1.0, "y": 2.0,
                                                  "u": 3.0}, 1)
        out = trace[0]
        assert math.isclose(out["x"], 1.1)
        u1 = 3.0 - 3 * 1.0 * 3.0 * 0.1 - 3 * 2.0 * 0.1
        assert math.isclose(out["u"], u1)
        assert math.isclose(out["y"], 2.0 + 3.0 * 0.1)
