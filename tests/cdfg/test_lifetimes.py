"""Unit tests for value lifetime analysis (linear and cyclic)."""

import pytest

from repro.errors import ScheduleError
from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.lifetimes import LifetimeTable, LiveInterval

DELAYS = {"add": 1, "mul": 2, "pass": 1}


def toy():
    b = CDFGBuilder("toy")
    b.input("x").input("y")
    b.op("a1", "add", ["x", "y"], "s")
    b.op("m1", "mul", ["s", 0.5], "p")
    b.op("a2", "add", ["s", "p"], "q")
    b.output("q")
    return b.build()


def loop():
    b = CDFGBuilder("loop", cyclic=True)
    b.input("inp")
    b.op("a1", "add", ["inp", "sv"], "t")
    b.op("a2", "add", ["t", "t"], "sv")
    b.loop_value("sv").output("t")
    return b.build()


class TestLinearLifetimes:
    def test_birth_after_producer(self):
        lt = LifetimeTable(toy(), {"a1": 0, "m1": 1, "a2": 3}, DELAYS, 4)
        assert lt.interval("s").steps == (1, 2, 3)
        assert lt.interval("p").steps == (3,)

    def test_input_lives_from_arrival(self):
        lt = LifetimeTable(toy(), {"a1": 0, "m1": 1, "a2": 3}, DELAYS, 4)
        assert lt.interval("x").steps == (0,)

    def test_port_captured_output(self):
        lt = LifetimeTable(toy(), {"a1": 0, "m1": 1, "a2": 3}, DELAYS, 4)
        # q is born at step 4 == length: captured straight off the FU
        assert lt.interval("q").steps == (4,)

    def test_output_with_slack_occupies_register(self):
        # with a longer schedule the output is born inside it and gets a
        # real register step instead of being port-captured
        lt = LifetimeTable(toy(), {"a1": 0, "m1": 1, "a2": 3}, DELAYS, 5)
        assert lt.interval("q").steps == (4,)
        assert lt.interval("q").birth < 5

    def test_read_before_birth_rejected(self):
        with pytest.raises(ScheduleError, match="before its birth"):
            LifetimeTable(toy(), {"a1": 0, "m1": 0, "a2": 3}, DELAYS, 4)

    def test_unscheduled_op_rejected(self):
        with pytest.raises(ScheduleError, match="unscheduled"):
            LifetimeTable(toy(), {"a1": 0, "m1": 1}, DELAYS, 4)

    def test_born_past_length_with_consumers_rejected(self):
        with pytest.raises(ScheduleError):
            LifetimeTable(toy(), {"a1": 3, "m1": 4, "a2": 6}, DELAYS, 4)


class TestCyclicLifetimes:
    def test_loop_value_wraps(self):
        lt = LifetimeTable(loop(), {"a1": 0, "a2": 1}, DELAYS, 3)
        assert lt.interval("sv").steps == (2, 0)
        assert lt.interval("sv").wraps

    def test_loop_value_born_at_boundary(self):
        lt = LifetimeTable(loop(), {"a1": 0, "a2": 2}, DELAYS, 3)
        # producer ends at last step: birth wraps to step 0, read at 0
        assert lt.interval("sv").steps == (0,)
        assert not lt.interval("sv").wraps

    def test_loop_read_overlapping_rebirth_rejected(self):
        b = CDFGBuilder("bad", cyclic=True)
        b.input("i")
        b.op("p", "add", ["i", "i"], "sv")   # early producer
        b.op("c", "add", ["sv", "sv"], "o")  # late consumer
        b.loop_value("sv").output("o")
        g = b.build()
        with pytest.raises(ScheduleError, match="two iterations"):
            LifetimeTable(g, {"p": 0, "c": 2}, DELAYS, 4)

    def test_register_demand_counts_wrapped_steps(self):
        lt = LifetimeTable(loop(), {"a1": 0, "a2": 1}, DELAYS, 3)
        demand = lt.register_demand()
        assert len(demand) == 3
        # sv live at 2 and 0; inp at 0; t at 1
        assert demand == [2, 1, 1]

    def test_min_registers(self):
        lt = LifetimeTable(loop(), {"a1": 0, "a2": 1}, DELAYS, 3)
        assert lt.min_registers() == 2


class TestLiveInterval:
    def test_navigation(self):
        iv = LiveInterval("v", (5, 6, 0, 1), wraps=True)
        assert iv.birth == 5 and iv.death == 1 and iv.length == 4
        assert iv.successor_step(6) == 0
        assert iv.predecessor_step(0) == 6
        assert iv.successor_step(1) is None
        assert iv.predecessor_step(5) is None
        assert iv.covers(0) and not iv.covers(3)

    def test_live_at_and_transfers(self):
        lt = LifetimeTable(toy(), {"a1": 0, "m1": 1, "a2": 3}, DELAYS, 4)
        assert lt.live_at(1) == ["s"]
        assert lt.live_at(3) == ["p", "s"]
        # s spans 3 steps -> 2 boundaries; others have none within schedule
        assert lt.transfers_possible() == 2
