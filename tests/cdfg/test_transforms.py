"""Unit tests for explicit slack-node insertion (paper Fig. 2)."""

import pytest

from repro.errors import CDFGError
from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.interp import evaluate_once, run_iterations
from repro.cdfg.lifetimes import LifetimeTable
from repro.cdfg.transforms import insert_slack_nodes, segment_name
from repro.cdfg.validate import validate_cdfg

DELAYS = {"add": 1, "mul": 2, "pass": 1}


def toy():
    b = CDFGBuilder("toy")
    b.input("x").input("y")
    b.op("a1", "add", ["x", "y"], "s")
    b.op("m1", "mul", ["s", 0.5], "p")
    b.op("a2", "add", ["s", "p"], "q")
    b.output("q")
    return b.build()


def expand(graph, starts, length):
    lt = LifetimeTable(graph, starts, DELAYS, length)
    return insert_slack_nodes(graph, lt, starts)


class TestSlackInsertion:
    def test_slack_count_equals_segment_boundaries(self):
        exp = expand(toy(), {"a1": 0, "m1": 1, "a2": 3}, 4)
        # only 's' spans multiple steps: (1,2,3) -> 2 slack ops
        assert exp.slack_count == 2

    def test_expanded_graph_is_valid(self):
        exp = expand(toy(), {"a1": 0, "m1": 1, "a2": 3}, 4)
        validate_cdfg(exp.graph)

    def test_slack_ops_are_pass_kind(self):
        exp = expand(toy(), {"a1": 0, "m1": 1, "a2": 3}, 4)
        slacks = [o for o in exp.graph.ops.values() if o.kind == "pass"]
        assert len(slacks) == 2

    def test_consumers_rewired_to_live_segment(self):
        exp = expand(toy(), {"a1": 0, "m1": 1, "a2": 3}, 4)
        a2 = exp.graph.ops["a2"]
        # a2 runs at step 3 and must read the step-3 segment of s
        assert a2.operands[0].name == segment_name("s", 3)

    def test_segment_names_recorded(self):
        exp = expand(toy(), {"a1": 0, "m1": 1, "a2": 3}, 4)
        assert exp.segment_of[("s", 1)] == "s"
        assert exp.segment_of[("s", 2)] == segment_name("s", 2)

    def test_slack_ops_scheduled_at_boundary(self):
        exp = expand(toy(), {"a1": 0, "m1": 1, "a2": 3}, 4)
        slack = f"S_s_2"
        assert exp.start_steps[slack] == 1

    def test_semantics_preserved(self):
        g = toy()
        exp = expand(g, {"a1": 0, "m1": 1, "a2": 3}, 4)
        env = {"x": 2.0, "y": 4.0}
        assert evaluate_once(exp.graph, env)["q"] == \
            evaluate_once(g, env)["q"]


class TestCyclicSlackInsertion:
    def loop(self):
        b = CDFGBuilder("loop", cyclic=True)
        b.input("inp")
        b.op("a1", "add", ["inp", "sv"], "t")
        b.op("a2", "add", ["t", "t"], "sv")
        b.loop_value("sv").output("t")
        return b.build()

    def test_wrap_boundary_segment_is_loop_carried(self):
        g = self.loop()
        lt = LifetimeTable(g, {"a1": 0, "a2": 1}, DELAYS, 3)
        exp = insert_slack_nodes(g, lt, {"a1": 0, "a2": 1})
        validate_cdfg(exp.graph)
        # sv lives (2, 0): the step-0 segment crosses the iteration boundary
        seg = exp.segment_of[("sv", 0)]
        assert exp.graph.values[seg].loop_carried

    def test_boundary_birth_keeps_value_loop_carried(self):
        g = self.loop()
        lt = LifetimeTable(g, {"a1": 0, "a2": 2}, DELAYS, 3)
        exp = insert_slack_nodes(g, lt, {"a1": 0, "a2": 2})
        # sv born exactly at the boundary: the birth segment itself wraps
        assert exp.graph.values["sv"].loop_carried
        # sv is a single segment: no slack chain for it (t needs one)
        assert not any(op.startswith("S_sv") for op in exp.graph.ops)

    def test_cyclic_semantics_preserved(self):
        g = self.loop()
        lt = LifetimeTable(g, {"a1": 0, "a2": 1}, DELAYS, 3)
        exp = insert_slack_nodes(g, lt, {"a1": 0, "a2": 1})
        ins = {"inp": [1.0, 2.0, 3.0]}
        ref = run_iterations(g, ins, {"sv": 0.5}, 3)
        # map expanded state names back: sv's carried segment is sv@0
        seg = exp.segment_of[("sv", 0)]
        got = run_iterations(exp.graph, ins, {seg: 0.5}, 3)
        for r, o in zip(ref, got):
            assert o["t"] == r["t"]
