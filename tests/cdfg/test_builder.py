"""Unit tests for the CDFG builder."""

import pytest

from repro.errors import CDFGError
from repro.cdfg.builder import CDFGBuilder


class TestBuilder:
    def test_convenience_wrappers(self):
        b = CDFGBuilder("g")
        b.input("x")
        b.add("a", "x", 1.0, "y").sub("s", "y", "x", "z") \
         .mul("m", "z", 2.0, "w")
        b.output("w")
        g = b.build()
        assert g.op_count_by_kind() == {"add": 1, "sub": 1, "mul": 1}

    def test_duplicate_input_rejected(self):
        b = CDFGBuilder("g")
        b.input("x")
        with pytest.raises(CDFGError, match="declared twice"):
            b.input("x")

    def test_duplicate_output_rejected(self):
        b = CDFGBuilder("g")
        b.output("x")
        with pytest.raises(CDFGError, match="declared twice"):
            b.output("x")

    def test_duplicate_op_rejected(self):
        b = CDFGBuilder("g")
        b.input("x")
        b.add("a", "x", "x", "y")
        with pytest.raises(CDFGError, match="declared twice"):
            b.add("a", "x", "x", "z")

    def test_duplicate_loop_value_rejected(self):
        b = CDFGBuilder("g", cyclic=True)
        b.loop_value("sv")
        with pytest.raises(CDFGError, match="declared twice"):
            b.loop_value("sv")

    def test_output_must_exist(self):
        b = CDFGBuilder("g")
        b.input("x")
        b.add("a", "x", "x", "y")
        b.output("ghost")
        with pytest.raises(CDFGError, match="never produced"):
            b.build()

    def test_loop_value_requires_cyclic(self):
        b = CDFGBuilder("g", cyclic=False)
        b.input("x")
        b.add("a", "x", "sv", "sv")
        b.loop_value("sv")
        with pytest.raises(CDFGError, match="not.*marked cyclic"):
            b.build()

    def test_values_declared_implicitly(self):
        b = CDFGBuilder("g")
        b.input("x")
        b.add("a", "x", "x", "mid")
        b.add("b", "mid", "mid", "out")
        b.output("out")
        g = b.build()
        assert set(g.values) == {"x", "mid", "out"}

    def test_arrival_step_recorded(self):
        b = CDFGBuilder("g")
        b.input("x", arrival_step=2)
        b.add("a", "x", "x", "y")
        b.output("y")
        g = b.build()
        assert g.value("x").arrival_step == 2

    def test_fluent_chaining(self):
        b = CDFGBuilder("g")
        assert b.input("x") is b
        assert b.add("a", "x", "x", "y") is b
        assert b.output("y") is b
