"""Unit tests for the CDFG container."""

import pytest

from repro.errors import CDFGError
from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG
from repro.cdfg.nodes import Operation, Value


def build_toy():
    b = CDFGBuilder("toy")
    b.input("x").input("y")
    b.op("a1", "add", ["x", "y"], "s")
    b.op("m1", "mul", ["s", 0.5], "p")
    b.op("a2", "add", ["s", "p"], "q")
    b.output("q")
    return b.build()


class TestWiring:
    def test_producer_links(self):
        g = build_toy()
        assert g.value("s").producer == "a1"
        assert g.value("q").producer == "a2"
        assert g.producer_of("x") is None

    def test_consumer_links(self):
        g = build_toy()
        assert set(g.consumers_of("s")) == {("m1", 0), ("a2", 0)}
        assert g.consumers_of("q") == ()

    def test_duplicate_op_rejected(self):
        ops = [Operation("a", "add", ("x", "y"), "z"),
               Operation("a", "add", ("x", "y"), "w")]
        vals = [Value("x", is_input=True), Value("y", is_input=True),
                Value("z"), Value("w")]
        with pytest.raises(CDFGError, match="duplicate operation"):
            CDFG("bad", ops, vals)

    def test_two_producers_rejected(self):
        ops = [Operation("a", "add", ("x", "y"), "z"),
               Operation("b", "add", ("x", "y"), "z")]
        vals = [Value("x", is_input=True), Value("y", is_input=True),
                Value("z")]
        with pytest.raises(CDFGError, match="produced by both"):
            CDFG("bad", ops, vals)

    def test_writing_input_rejected(self):
        ops = [Operation("a", "add", ("x", "x"), "x")]
        with pytest.raises(CDFGError):
            CDFG("bad", ops, [Value("x", is_input=True)])

    def test_undeclared_operand_rejected(self):
        ops = [Operation("a", "add", ("x", "ghost"), "z")]
        vals = [Value("x", is_input=True), Value("z")]
        with pytest.raises(CDFGError, match="undeclared"):
            CDFG("bad", ops, vals)


class TestQueries:
    def test_inputs_outputs_sorted(self):
        g = build_toy()
        assert g.inputs == ["x", "y"]
        assert g.outputs == ["q"]

    def test_op_predecessors(self):
        g = build_toy()
        assert g.op_predecessors("a2") == ["a1", "m1"]
        assert g.op_predecessors("a1") == []

    def test_op_successors(self):
        g = build_toy()
        assert sorted(g.op_successors("a1")) == ["a2", "m1"]

    def test_loop_carried_edges_skipped(self):
        b = CDFGBuilder("loop", cyclic=True)
        b.input("i")
        b.op("a1", "add", ["i", "sv"], "t")
        b.op("a2", "add", ["t", "t"], "sv")
        b.loop_value("sv").output("t")
        g = b.build()
        # a1 reads sv from the previous iteration: no intra-iteration edge
        assert g.op_predecessors("a1") == []
        assert g.op_predecessors("a2") == ["a1", "a1"]
        assert g.op_successors("a2") == []

    def test_op_count_by_kind(self):
        assert build_toy().op_count_by_kind() == {"add": 2, "mul": 1}

    def test_unknown_names_raise(self):
        g = build_toy()
        with pytest.raises(CDFGError):
            g.op("nope")
        with pytest.raises(CDFGError):
            g.value("nope")


class TestTopoAndCriticalPath:
    def test_topo_order_respects_edges(self):
        g = build_toy()
        order = g.topo_order()
        assert order.index("a1") < order.index("m1") < order.index("a2")

    def test_topo_detects_cycle(self):
        ops = [Operation("a", "add", ("x", "w"), "z"),
               Operation("b", "add", ("z", "z"), "w")]
        vals = [Value("x", is_input=True), Value("z"), Value("w")]
        g = CDFG("cyc", ops, vals)
        with pytest.raises(CDFGError, match="cycle"):
            g.topo_order()

    def test_duplicate_operand_edge_counted(self):
        # a2 reads s twice (via s and p->s chain); x*x style duplicates
        b = CDFGBuilder("sq")
        b.input("x")
        b.op("m", "mul", ["x", "x"], "y")
        b.op("m2", "mul", ["y", "y"], "z")
        b.output("z")
        g = b.build()
        assert g.topo_order() == ["m", "m2"]

    def test_critical_path(self):
        g = build_toy()
        assert g.critical_path({"add": 1, "mul": 2}) == 4

    def test_critical_path_needs_delays(self):
        g = build_toy()
        with pytest.raises(CDFGError, match="no delay"):
            g.critical_path({"add": 1})

    def test_critical_path_rejects_zero_delay(self):
        g = build_toy()
        with pytest.raises(CDFGError, match="must be >= 1"):
            g.critical_path({"add": 0, "mul": 2})


class TestCopyAndRepr:
    def test_copy_is_equivalent(self):
        g = build_toy()
        h = g.copy()
        assert set(h.ops) == set(g.ops)
        assert set(h.values) == set(g.values)
        assert h.value("s").producer == "a1"
        assert h.inputs == g.inputs and h.outputs == g.outputs

    def test_copy_is_independent(self):
        g = build_toy()
        h = g.copy("other")
        assert h.name == "other"
        assert h.ops["a1"] is not g.ops["a1"]

    def test_len_iter_repr_summary(self):
        g = build_toy()
        assert len(g) == 3
        assert {op.name for op in g} == {"a1", "m1", "a2"}
        assert "toy" in repr(g)
        assert "inputs : x, y" in g.summary()
