"""Unit tests for the constructive initial allocation (paper Sec. 4)."""

import pytest

from repro.errors import AllocationError
from repro.bench import (discrete_cosine_transform, elliptic_wave_filter,
                         hal_diffeq, random_cdfg)
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.core.initial import (bind_ops_first_available,
                                initial_allocation, place_values)
from repro.core.binding import Binding
from repro.alloc.checker import check_binding

SPEC = HardwareSpec.non_pipelined()


class TestFirstAvailable:
    def test_all_ops_bound(self, ewf19, nonpipe_spec):
        binding = Binding(ewf19, nonpipe_spec.make_fus(ewf19.min_fus()),
                          make_registers(ewf19.min_registers()))
        bind_ops_first_available(binding)
        assert set(binding.op_fu) == set(ewf19.graph.ops)

    def test_insufficient_fus_rejected(self, ewf19, nonpipe_spec):
        binding = Binding(ewf19, nonpipe_spec.make_fus({"adder": 1,
                                                        "mult": 1}),
                          make_registers(ewf19.min_registers()))
        with pytest.raises(AllocationError, match="no free"):
            bind_ops_first_available(binding)

    def test_deterministic(self, ewf19, nonpipe_spec):
        fus = nonpipe_spec.make_fus(ewf19.min_fus())
        regs = make_registers(ewf19.min_registers())
        a = Binding(ewf19, fus, regs)
        bind_ops_first_available(a)
        b = Binding(ewf19, fus, regs)
        bind_ops_first_available(b)
        assert a.op_fu == b.op_fu


class TestPlacement:
    def test_min_registers_suffice_with_splits(self, ewf19, nonpipe_spec):
        binding = initial_allocation(
            ewf19, nonpipe_spec.make_fus(ewf19.min_fus()),
            make_registers(ewf19.min_registers()))
        assert check_binding(binding) == []

    def test_too_few_registers_rejected(self, ewf19, nonpipe_spec):
        with pytest.raises(AllocationError, match="no register free"):
            initial_allocation(
                ewf19, nonpipe_spec.make_fus(ewf19.min_fus()),
                make_registers(ewf19.min_registers() - 1))

    def test_loop_values_placed_first_contiguously(self, nonpipe_spec):
        graph = hal_diffeq()
        schedule = schedule_graph(graph, nonpipe_spec, 7)
        binding = initial_allocation(
            schedule, nonpipe_spec.make_fus(schedule.min_fus()),
            make_registers(schedule.min_registers() + 2))
        for name in graph.loop_values:
            regs = {binding.segment_regs(name, s)[0]
                    for s in binding.interval(name).steps}
            assert len(regs) == 1

    def test_strict_mode_may_reject_tight_cyclic_budgets(self, ewf19,
                                                         nonpipe_spec):
        """allow_split=False can fail where the segment model succeeds."""
        fus = nonpipe_spec.make_fus(ewf19.min_fus())
        n = ewf19.min_registers()
        split_ok = initial_allocation(ewf19, fus, make_registers(n),
                                      allow_split=True)
        assert check_binding(split_ok) == []
        try:
            initial_allocation(ewf19, fus, make_registers(n),
                               allow_split=False)
        except AllocationError as exc:
            assert "contiguously" in str(exc)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_allocate_legally(self, seed, nonpipe_spec):
        graph = random_cdfg(22, seed=seed, loop_fraction=0.1)
        schedule = schedule_graph(graph, nonpipe_spec)
        binding = initial_allocation(
            schedule, nonpipe_spec.make_fus(schedule.min_fus()),
            make_registers(schedule.min_registers() + 1))
        assert check_binding(binding) == []

    def test_dct_allocates(self, nonpipe_spec):
        graph = discrete_cosine_transform()
        schedule = schedule_graph(graph, nonpipe_spec, 10)
        binding = initial_allocation(
            schedule, nonpipe_spec.make_fus(schedule.min_fus()),
            make_registers(schedule.min_registers()))
        assert check_binding(binding) == []
        assert binding.cost().mux_count > 0
