"""Tests for the parallel multi-restart engine and its determinism.

The engine's contract: a restart outcome is a pure function of its job, so
the best cost and winning binding state are bit-identical for any worker
count — serial fallback, 2 workers, or 4 workers on a single core.
"""

import os

import pytest

from repro.bench import elliptic_wave_filter
from repro.bench.random_cdfg import random_cdfg
from repro.datapath.units import HardwareSpec
from repro.sched.explore import schedule_graph
from repro.core import (ImproveConfig, RestartOutcome, SalsaAllocator,
                        TraditionalAllocator, best_outcome, run_restarts)
from repro.core.moves import MoveSet
from repro.core.parallel import _fork_context
from repro.datapath.cost import CostBreakdown

SPEC = HardwareSpec.non_pipelined()
FAST = ImproveConfig(max_trials=2, moves_per_trial=120)

#: CI smoke-jobs export REPRO_TEST_WORKERS to force extra worker counts
WORKER_COUNTS = sorted({1, 2, 4,
                        int(os.environ.get("REPRO_TEST_WORKERS", "1"))})


def _cost(total: float) -> CostBreakdown:
    return CostBreakdown(fu_count=0, fu_area=total, register_count=0,
                         mux_count=0, wire_count=0)


class TestEngine:
    def test_outcomes_in_job_order(self, ewf19):
        alloc = SalsaAllocator(seed=3, restarts=3, config=FAST)
        _schedule, jobs = alloc.prepare_jobs(ewf19.graph, schedule=ewf19)
        outcomes = run_restarts(jobs, workers=2)
        assert [o.index for o in outcomes] == [0, 1, 2]

    def test_best_outcome_tie_breaks_on_index(self):
        outcomes = [RestartOutcome(index=2, state={}, cost=_cost(1.0)),
                    RestartOutcome(index=0, state={}, cost=_cost(1.0)),
                    RestartOutcome(index=1, state={}, cost=_cost(2.0))]
        assert best_outcome(outcomes).index == 0

    def test_best_outcome_rejects_empty(self):
        from repro.errors import AllocationError
        with pytest.raises(AllocationError):
            best_outcome([])

    def test_restart_seconds_recorded(self, ewf19):
        alloc = TraditionalAllocator(seed=1, restarts=2, config=FAST)
        result = alloc.allocate(ewf19.graph, schedule=ewf19)
        assert len(result.outcomes) == 2
        assert all(o.seconds > 0 for o in result.outcomes)
        assert result.seconds == pytest.approx(
            sum(o.seconds for o in result.outcomes))


class TestSeedDerivation:
    def test_all_derived_seeds_distinct(self, ewf19):
        """Regression for the old ``seed``/``seed + 1`` derivation, where
        restart k's second seed could equal restart k+1's first."""
        alloc = SalsaAllocator(seed=0, restarts=8, config=FAST)
        _schedule, jobs = alloc.prepare_jobs(ewf19.graph, schedule=ewf19)
        seeds = [cfg.seed for job in jobs for cfg in job.configs]
        assert len(seeds) == 16  # warm-start + full search per restart
        assert len(set(seeds)) == len(seeds)

    def test_traditional_seeds_distinct(self, ewf19):
        alloc = TraditionalAllocator(seed=0, restarts=8, config=FAST)
        _schedule, jobs = alloc.prepare_jobs(ewf19.graph, schedule=ewf19)
        seeds = [cfg.seed for job in jobs for cfg in job.configs]
        assert len(set(seeds)) == len(seeds)

    def test_restart_prefix_stable(self, ewf19):
        """Restart k's seeds do not depend on how many restarts run —
        best-of-n can only improve on best-of-(n-1)."""
        short = SalsaAllocator(seed=5, restarts=1, config=FAST)
        long = SalsaAllocator(seed=5, restarts=4, config=FAST)
        _s, short_jobs = short.prepare_jobs(ewf19.graph, schedule=ewf19)
        _s, long_jobs = long.prepare_jobs(ewf19.graph, schedule=ewf19)
        assert short_jobs[0].configs == long_jobs[0].configs


class TestWorkerDeterminism:
    @pytest.mark.parametrize("traditional", [False, True])
    def test_ewf_identical_across_worker_counts(self, ewf19, traditional):
        cls = TraditionalAllocator if traditional else SalsaAllocator
        results = [cls(seed=11, restarts=4, config=FAST).allocate(
            ewf19.graph, schedule=ewf19, workers=workers)
            for workers in WORKER_COUNTS]
        reference = results[0]
        for result in results[1:]:
            assert result.cost == reference.cost
            assert result.best_restart == reference.best_restart
            assert result.binding.clone_state() == \
                reference.binding.clone_state()

    def test_random_cdfg_identical_across_worker_counts(self):
        graph = random_cdfg(n_ops=14, n_inputs=3, seed=23)
        results = [SalsaAllocator(seed=7, restarts=3,
                                  config=FAST).allocate(
            graph, spec=SPEC, workers=workers)
            for workers in WORKER_COUNTS]
        reference = results[0]
        for result in results[1:]:
            assert result.cost == reference.cost
            assert result.binding.clone_state() == \
                reference.binding.clone_state()

    def test_seed_study_identical_across_worker_counts(self, ewf19):
        from repro.analysis.stats import seed_study
        studies = [seed_study(ewf19.graph, ewf19, seeds=range(4),
                              config=FAST, workers=workers)
                   for workers in (1, 2)]
        assert studies[0].mux_counts == studies[1].mux_counts


class TestTelemetry:
    @pytest.fixture(scope="class")
    def result(self, request):
        graph = elliptic_wave_filter()
        schedule = schedule_graph(graph, SPEC, 19)
        return SalsaAllocator(seed=2, restarts=2,
                              config=FAST).allocate(graph,
                                                    schedule=schedule)

    def test_counters_partition_applied_moves(self, result):
        for stats in result.stats:
            accepts = sum(c.accepts for c in stats.per_move.values())
            rollbacks = sum(c.rollbacks for c in stats.per_move.values())
            assert accepts + rollbacks == stats.moves_applied
            assert accepts == stats.moves_accepted
            attempts = sum(c.attempts for c in stats.per_move.values())
            assert attempts == stats.moves_attempted

    def test_per_trial_telemetry_lengths(self, result):
        for stats in result.stats:
            assert len(stats.trial_seconds) == stats.trials_run
            assert len(stats.uphill_used) == stats.trials_run
            assert sum(stats.uphill_used) == stats.uphill_accepted
            assert stats.seconds >= sum(stats.trial_seconds) - 1e-6

    def test_best_trace_monotone(self, result):
        for stats in result.stats:
            totals = [total for _move, total in stats.best_trace]
            assert totals == sorted(totals, reverse=True)
            moves = [move for move, _total in stats.best_trace]
            assert moves == sorted(moves)

    def test_stats_json_round_trip(self, result):
        from repro.core import ImproveStats
        for stats in result.stats:
            again = ImproveStats.from_json(stats.to_json())
            assert again.to_dict() == stats.to_dict()
            assert again.final_cost == stats.final_cost

    def test_stats_list_round_trip_via_io(self, result):
        from repro.io import stats_from_json, stats_to_json
        text = stats_to_json(result.stats)
        again = stats_from_json(text)
        assert [s.to_dict() for s in again] == \
            [s.to_dict() for s in result.stats]

    def test_telemetry_report_aggregates(self, result):
        from repro.analysis.stats import telemetry_report
        report = telemetry_report(result.stats)
        assert report["runs"] == len(result.stats)
        assert report["moves_applied"] == \
            sum(s.moves_applied for s in result.stats)
        for counters in report["per_move"].values():
            assert counters["accepts"] + counters["rollbacks"] == \
                counters["applies"]

    def test_render_cost_trace(self, result):
        from repro.analysis.figures import render_cost_trace
        art = render_cost_trace(result.stats[0])
        assert "#" in art and "moves" in art


# ------------------------------------------- worker exceptions must surface

class ExplodingMoveSet(MoveSet):
    """Module-level (hence picklable) move set that dies on first use."""

    def enabled_moves(self):
        raise RuntimeError("injected worker bug")


def _exploding_jobs(ewf19):
    from dataclasses import replace
    alloc = SalsaAllocator(seed=1, restarts=2, config=FAST,
                           warm_start_traditional=False)
    _schedule, jobs = alloc.prepare_jobs(ewf19.graph, schedule=ewf19)
    return [replace(job, configs=tuple(
        replace(config, move_set=ExplodingMoveSet())
        for config in job.configs)) for job in jobs]


class TestWorkerExceptionsSurface:
    """Regression for the silent-swallow audit: an unexpected exception
    inside a restart is a bug in the search, not a pool-infrastructure
    failure, and must propagate to the caller — it must NOT be caught by
    the serial-fallback path (which used to catch RuntimeError wholesale
    and re-run the buggy search a second time)."""

    def test_serial_path_propagates(self, ewf19):
        with pytest.raises(RuntimeError, match="injected worker bug"):
            run_restarts(_exploding_jobs(ewf19), workers=1)

    @pytest.mark.skipif(_fork_context() is None,
                        reason="fork start method unavailable")
    def test_pool_path_propagates_with_worker_traceback(self, ewf19):
        with pytest.raises(RuntimeError,
                           match="injected worker bug") as excinfo:
            run_restarts(_exploding_jobs(ewf19), workers=2)
        # concurrent.futures chains the worker-side traceback as __cause__
        # so the failure is debuggable from the parent process
        cause = excinfo.value.__cause__
        assert cause is not None
        assert "injected worker bug" in str(cause)

    def test_fork_context_probe_narrowed(self, monkeypatch):
        """Only the expected probe failures degrade to the serial path."""
        import multiprocessing

        def boom():
            raise ValueError("no such start method")

        monkeypatch.setattr(multiprocessing, "get_all_start_methods", boom)
        assert _fork_context() is None

        def bug():
            raise ZeroDivisionError("a genuine bug")

        monkeypatch.setattr(multiprocessing, "get_all_start_methods", bug)
        with pytest.raises(ZeroDivisionError):
            _fork_context()
