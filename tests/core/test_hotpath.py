"""Hot-path invariants: the O(1) cost fast path and diff-based restore.

Property-style coverage that reuses the ``repro.verify.fuzz`` CDFG
generator: across random problems and random move sequences the
incremental ``Binding.total_cost()`` must equal the structured
``cost().total`` *exactly* (same floats, not approximately), diff-based
``restore_state()`` must land on a state bit-identical to a from-scratch
rebuild, and the accept-test knob ``fast_cost`` must not change what the
search engines compute.
"""

import pytest

from repro.bench import elliptic_wave_filter
from repro.core import (AnnealConfig, ImproveConfig, MoveSet, anneal,
                        improve, initial_allocation)
from repro.core.binding import Binding
from repro.datapath.units import HardwareSpec, make_registers
from repro.rng import SeedStream, make_rng
from repro.sched.explore import schedule_graph
from repro.verify.fuzz import FuzzConfig, build_problem, sample_case
from repro.verify.sanitizer import SanitizerError, ShadowSanitizer

SPEC = HardwareSpec.non_pipelined()

#: fuzz-case indices exercised by the property tests (deterministic:
#: SeedStream children depend only on the root and the index)
CASE_INDICES = [0, 1, 2, 3, 5, 8]


def _fuzz_binding(index: int):
    """A random-but-reproducible allocation problem from the fuzz corpus."""
    case = sample_case(SeedStream(20260806), index, FuzzConfig())
    _graph, schedule = build_problem(case)
    fus = SPEC.make_fus(schedule.min_fus())
    regs = make_registers(schedule.min_registers()
                          + max(0, case.extra_registers))
    return initial_allocation(schedule, fus, regs), case


def _ewf_binding():
    graph = elliptic_wave_filter()
    schedule = schedule_graph(graph, SPEC, 19)
    return initial_allocation(
        schedule, SPEC.make_fus(schedule.min_fus()),
        make_registers(schedule.min_registers() + 1))


@pytest.mark.parametrize("index", CASE_INDICES)
def test_total_cost_tracks_cost_exactly(index):
    """total_cost() == cost().total bit-for-bit across random move walks."""
    binding, case = _fuzz_binding(index)
    rng = make_rng(case.seed)
    moves = MoveSet().enabled_moves()
    assert binding.total_cost() == binding.cost().total
    for _ in range(150):
        _name, fn, _weight = moves[rng.randrange(len(moves))]
        binding.begin_move()
        undos = fn(binding, rng)
        if undos is None or rng.random() < 0.5:
            binding.commit_move()
        else:
            binding.abort_move()
        assert binding.total_cost() == binding.cost().total
        assert binding.cost() == binding.cost_from_scratch()


@pytest.mark.parametrize("index", CASE_INDICES)
def test_diff_restore_bit_identical_to_fresh_rebuild(index):
    """Diff-based restore from a *mutated* live state must equal a fresh
    binding restored from the same snapshot."""
    binding, case = _fuzz_binding(index)
    snapshot = binding.clone_state()
    rng = make_rng(case.seed + 1)
    moves = MoveSet().enabled_moves()
    for _ in range(120):
        _name, fn, _weight = moves[rng.randrange(len(moves))]
        binding.begin_move()
        fn(binding, rng)
        binding.commit_move()
    binding.restore_state(snapshot)

    fresh = Binding(binding.schedule, list(binding.fus.values()),
                    list(binding.regs.values()), weights=binding.weights)
    fresh.restore_state(snapshot)
    assert binding.derived_snapshot() == fresh.derived_snapshot()
    assert binding.cost() == fresh.cost()
    assert binding.total_cost() == fresh.total_cost()


def test_skewed_incremental_counter_caught_by_sanitizer():
    """A drifted running counter must trip the from-scratch cross-check."""
    binding = _ewf_binding()
    sanitizer = ShadowSanitizer(binding, every=1)
    sanitizer.check()  # clean state passes
    binding._fu_used_count += 1
    with pytest.raises(SanitizerError, match="diverged"):
        sanitizer.check()


def test_skewed_register_counter_caught_by_sanitizer():
    binding = _ewf_binding()
    sanitizer = ShadowSanitizer(binding, every=1)
    binding._reg_used_count -= 1
    with pytest.raises(SanitizerError, match="diverged"):
        sanitizer.check()


class TestFastCostKnob:
    """The accept test must be bit-identical with the fast path on or off."""

    def test_improve_bit_identical_across_fast_cost(self):
        results = []
        for fast in (True, False):
            binding = _ewf_binding()
            stats = improve(binding, ImproveConfig(
                max_trials=3, moves_per_trial=250, seed=7, fast_cost=fast))
            results.append((stats.final_cost, binding.cost(),
                            binding.derived_snapshot()))
        assert results[0] == results[1]

    def test_anneal_bit_identical_across_fast_cost(self):
        results = []
        for fast in (True, False):
            binding = _ewf_binding()
            stats = anneal(binding, AnnealConfig(
                temperature_levels=4, moves_per_level=150, seed=7,
                fast_cost=fast))
            results.append((stats.final_cost, binding.cost(),
                            binding.derived_snapshot()))
        assert results[0] == results[1]
