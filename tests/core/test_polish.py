"""Per-sweep tests for the deterministic polishing passes."""

import pytest

from repro.bench import elliptic_wave_filter
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.core import polish
from repro.core.initial import initial_allocation
from repro.core.moves import MoveSet
from repro.core import polish as polish_mod
from repro.core.polish import (sweep_fu_moves, sweep_operand_swaps,
                               sweep_passthroughs, sweep_read_sources,
                               sweep_segment_hops, sweep_value_exchanges,
                               sweep_value_moves)
from repro.alloc.checker import check_binding

SPEC = HardwareSpec.non_pipelined()


@pytest.fixture
def binding():
    graph = elliptic_wave_filter()
    schedule = schedule_graph(graph, SPEC, 19)
    return initial_allocation(
        schedule, SPEC.make_fus(schedule.min_fus()),
        make_registers(schedule.min_registers() + 1))


SWEEPS = [sweep_fu_moves, sweep_operand_swaps, sweep_read_sources,
          sweep_value_moves, sweep_value_exchanges, sweep_segment_hops,
          sweep_passthroughs]


@pytest.mark.parametrize("sweep", SWEEPS, ids=lambda f: f.__name__)
def test_each_sweep_monotone_and_legal(sweep, binding):
    start = binding.cost().total
    result = sweep(binding, start)
    assert result <= start + 1e-9
    assert binding.cost().total == pytest.approx(result)
    assert check_binding(binding) == []


def test_sweeps_report_accurate_cost(binding):
    """The running `current` passed between sweeps must track reality."""
    current = binding.cost().total
    for sweep in SWEEPS:
        current = sweep(binding, current)
        assert binding.cost().total == pytest.approx(current)


def test_polish_independent_of_process_history(binding):
    """Regression: polish() once drew from a module-level RNG whose state
    persisted across calls, so a binding's polish result depended on how
    many polishes ran earlier in the process (breaking the bit-identical
    guarantee of the parallel engine's serial fallback).  Polishing equal
    bindings must give equal results no matter what ran in between."""
    first = binding.duplicate()
    second = binding.duplicate()
    cost_first = polish(first)
    # burn extra polishes in between; they must not perturb the next one
    polish(binding.duplicate())
    polish(binding.duplicate())
    cost_second = polish(second)
    assert cost_second == cost_first
    assert second.cost() == first.cost()
    assert second.derived_snapshot() == first.derived_snapshot()


def test_polish_reaches_fixed_point(binding):
    final = polish(binding)
    # a second full polish finds nothing more
    assert polish(binding) == pytest.approx(final)


def test_polish_improves_initial_allocation(binding):
    start = binding.cost().total
    final = polish(binding)
    assert final < start  # the constructive start is never locally optimal
